//! Offline vendored subset of the `proptest` API.
//!
//! The build container has no network access to crates.io, so this crate
//! provides a small property-testing framework with the API surface the
//! workspace's test suites use: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), [`Strategy`] with `prop_map`, integer and
//! float range strategies, tuple strategies, `collection::vec`,
//! `bool::ANY`, `sample::subsequence`, and the `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Differences from real proptest: no shrinking (a failing case reports its
//! case index; cases are deterministic per test name, so failures
//! reproduce), and the default case count is 64.

/// Deterministic generator driving test-case generation (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the named test — deterministic across runs.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: hash ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[0, bound)` (`bound` must be positive).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift reduction; bias is irrelevant for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-proptest configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<R, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> R,
    {
        MapStrategy { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The `prop_map` adaptor.
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, R, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> R,
{
    type Value = R;

    fn generate(&self, rng: &mut TestRng) -> R {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end as i128 - start as i128) as u64 + 1;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*
    };
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.f64() as f32) * (self.end - self.start)
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Size specifications accepted by [`collection::vec`] and
/// [`sample::subsequence`].
pub trait SizeRange {
    /// Pick a concrete size.
    fn pick(&self, rng: &mut TestRng) -> usize;
    /// Clamp the specification to a maximum (for subsequences).
    fn clamped_pick(&self, rng: &mut TestRng, max: usize) -> usize {
        self.pick(rng).min(max)
    }
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for std::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty size range");
        start + rng.below((end - start + 1) as u64) as usize
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec`s of values from `element` with a size drawn from
    /// `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy yielding order-preserving random subsequences of `values`
    /// whose length is drawn from `size` (clamped to the input length).
    pub fn subsequence<T: Clone, Z: SizeRange>(values: Vec<T>, size: Z) -> Subsequence<T, Z> {
        Subsequence { values, size }
    }

    /// See [`subsequence`].
    pub struct Subsequence<T, Z> {
        values: Vec<T>,
        size: Z,
    }

    impl<T: Clone, Z: SizeRange> Strategy for Subsequence<T, Z> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let want = self.size.clamped_pick(rng, self.values.len());
            // Classic selection sampling: include each element with
            // probability (needed / remaining); preserves order.
            let mut out = Vec::with_capacity(want);
            let mut needed = want;
            for (i, v) in self.values.iter().enumerate() {
                if needed == 0 {
                    break;
                }
                let remaining = (self.values.len() - i) as u64;
                if rng.below(remaining) < needed as u64 {
                    out.push(v.clone());
                    needed -= 1;
                }
            }
            out
        }
    }
}

/// The `prop` facade module (`prelude` re-export).
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a proptest file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                left,
                right
            ));
        }
    }};
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)` runs
/// `cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut proptest_rng);
                    )+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(message) = outcome {
                        ::std::panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            case,
                            message
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let x = crate::Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&x));
            let y = crate::Strategy::generate(&(-5i32..5), &mut rng);
            assert!((-5..5).contains(&y));
            let f = crate::Strategy::generate(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_sizes_respect_range() {
        let mut rng = crate::TestRng::for_case("vec", 1);
        for _ in 0..200 {
            let v = crate::Strategy::generate(&prop::collection::vec(0u8..3, 2..7), &mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 3));
        }
    }

    #[test]
    fn subsequence_preserves_order() {
        let mut rng = crate::TestRng::for_case("subseq", 2);
        let base = vec![1, 2, 3, 4, 5];
        for _ in 0..200 {
            let sub = crate::Strategy::generate(
                &prop::sample::subsequence(base.clone(), 0..=3),
                &mut rng,
            );
            assert!(sub.len() <= 3);
            assert!(sub.windows(2).all(|w| w[0] < w[1]), "order broken: {sub:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts(x in 0u64..100, pair in (0u8..4, 0.0f64..1.0)) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 4, "pair.0 out of range: {}", pair.0);
            prop_assert!(pair.1.partial_cmp(&1.0) == Some(std::cmp::Ordering::Less));
        }

        #[test]
        fn prop_map_applies(doubled in (0u32..50).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled < 100);
        }
    }
}
