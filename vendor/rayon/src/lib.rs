//! Offline vendored subset of the `rayon` API.
//!
//! The build container has no network access to crates.io, so this crate
//! reimplements the slice of rayon the workspace actually uses:
//!
//! - [`ThreadPoolBuilder`] / [`ThreadPool::install`],
//! - `par_iter()` on slices and `Vec`s, `into_par_iter()` on integer ranges,
//! - the `enumerate` / `map` adaptors and ordered `collect` into a `Vec`.
//!
//! Parallelism is real: the terminal `collect` splits the items into one
//! contiguous batch per worker and runs the batches on scoped OS threads
//! (`std::thread::scope`), so order is preserved and worker panics
//! propagate, exactly as with rayon. The executing thread count is taken
//! from the innermost enclosing [`ThreadPool::install`] (default: 1, i.e.
//! sequential outside any pool). Unlike rayon there is no work stealing and
//! threads are spawned per `collect` call — acceptable for the chunk-sweep
//! granularity this workspace uses.

use std::cell::Cell;
use std::fmt;

thread_local! {
    /// Worker count of the innermost `install` on this thread (0 = none).
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Error building a thread pool (never produced by this implementation).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A logical thread pool: a worker count scoped over `install` calls.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Number of worker threads.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Run `f` with parallel iterators inside using this pool's thread
    /// count; restores the previous count afterwards.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        CURRENT_THREADS.with(|c| {
            let prev = c.get();
            c.set(self.threads);
            let result = f();
            c.set(prev);
            result
        })
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Set the worker count (0 or unset = available parallelism).
    pub fn num_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = match self.threads {
            Some(n) if n > 0 => n,
            _ => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        };
        Ok(ThreadPool { threads })
    }
}

/// Apply `f` to every item, in parallel, preserving order.
fn par_apply<I, R, F>(items: Vec<I>, f: &F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let threads = CURRENT_THREADS.with(|c| c.get()).max(1);
    if threads == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let batch_len = items.len().div_ceil(threads);
    let mut batches: Vec<Vec<I>> = Vec::with_capacity(threads);
    let mut iter = items.into_iter();
    loop {
        let batch: Vec<I> = iter.by_ref().take(batch_len).collect();
        if batch.is_empty() {
            break;
        }
        batches.push(batch);
    }
    let mut results: Vec<Vec<R>> = Vec::with_capacity(batches.len());
    std::thread::scope(|scope| {
        // Run the first batch on the calling thread (like rayon, which uses
        // the installing thread as a worker) and the rest on scoped threads.
        let mut rest = batches.drain(..);
        let first = rest.next();
        let handles: Vec<_> = rest
            .map(|batch| scope.spawn(move || batch.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        if let Some(batch) = first {
            results.push(batch.into_iter().map(f).collect());
        }
        for handle in handles {
            match handle.join() {
                Ok(r) => results.push(r),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    results.into_iter().flatten().collect()
}

/// A (materialisable) parallel iterator.
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item: Send;

    /// Materialise all items in order (parallelising the outermost `map`).
    fn exec(self) -> Vec<Self::Item>;

    /// Map every item through `f` (applied in parallel at `collect` time).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { inner: self, f }
    }

    /// Pair every item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }

    /// Collect into a container, preserving item order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_ordered_vec(self.exec())
    }
}

/// Containers constructible from an ordered item vector.
pub trait FromParallelIterator<T> {
    /// Build the container from items already in order.
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn exec(self) -> Vec<&'a T> {
        self.slice.iter().collect()
    }
}

/// The `map` adaptor.
pub struct Map<I, F> {
    inner: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;

    fn exec(self) -> Vec<R> {
        par_apply(self.inner.exec(), &self.f)
    }
}

/// The `enumerate` adaptor.
pub struct Enumerate<I> {
    inner: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn exec(self) -> Vec<(usize, I::Item)> {
        self.inner.exec().into_iter().enumerate().collect()
    }
}

/// Types with a by-reference parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// The iterator type.
    type Iter: ParallelIterator;

    /// Iterate shared references in parallel.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SliceIter<'a, T>;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = SliceIter<'a, T>;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for RangeIter<T> {
    type Item = T;

    fn exec(self) -> Vec<T> {
        self.items
    }
}

/// Types convertible into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

macro_rules! impl_range_into_par_iter {
    ($($t:ty),*) => {
        $(
            impl IntoParallelIterator for std::ops::Range<$t> {
                type Item = $t;
                type Iter = RangeIter<$t>;

                fn into_par_iter(self) -> RangeIter<$t> {
                    RangeIter {
                        items: self.collect(),
                    }
                }
            }
        )*
    };
}

impl_range_into_par_iter!(u32, u64, usize, i32, i64);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = RangeIter<T>;

    fn into_par_iter(self) -> RangeIter<T> {
        RangeIter { items: self }
    }
}

/// The rayon prelude: the traits needed for `par_iter` / `into_par_iter`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ordered_collect_matches_sequential() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let input: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = input.iter().map(|x| x * x).collect();
        let actual: Vec<u64> = pool.install(|| input.par_iter().map(|&x| x * x).collect());
        assert_eq!(actual, expected);
    }

    #[test]
    fn enumerate_preserves_indices() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let items = vec!["a", "b", "c", "d", "e"];
        let out: Vec<(usize, &str)> =
            pool.install(|| items.par_iter().enumerate().map(|(i, &s)| (i, s)).collect());
        assert_eq!(out, vec![(0, "a"), (1, "b"), (2, "c"), (3, "d"), (4, "e")]);
    }

    #[test]
    fn range_into_par_iter() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let out: Vec<u64> = pool.install(|| (0u64..10).into_par_iter().map(|x| x + 1).collect());
        assert_eq!(out, (1..=10).collect::<Vec<u64>>());
    }

    #[test]
    fn really_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        pool.install(|| {
            (0usize..64)
                .into_par_iter()
                .map(|_| {
                    seen.lock().unwrap().insert(std::thread::current().id());
                    std::thread::sleep(std::time::Duration::from_millis(1));
                })
                .collect::<Vec<()>>()
        });
        assert!(seen.lock().unwrap().len() > 1, "work never left one thread");
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        assert_eq!(pool.current_num_threads(), 7);
        pool.install(|| {
            CURRENT_THREADS.with(|c| assert_eq!(c.get(), 7));
        });
        CURRENT_THREADS.with(|c| assert_eq!(c.get(), 0));
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = std::panic::catch_unwind(|| {
            pool.install(|| {
                (0usize..8)
                    .into_par_iter()
                    .map(|i| {
                        if i == 6 {
                            panic!("boom");
                        }
                        i
                    })
                    .collect::<Vec<usize>>()
            })
        });
        assert!(result.is_err());
    }
}
