//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build container has no network access to crates.io, so this crate
//! provides exactly the trait surface the workspace uses: [`RngCore`],
//! [`SeedableRng`], [`Error`], and the [`Rng`] extension trait with
//! `gen::<T>()` for the primitive types the tests draw. The workspace's own
//! PCG generator (`psr-rng`) implements these traits; no generator is
//! provided here.

use std::fmt;

/// Error type for fallible RNG operations (never produced by the
/// deterministic generators in this workspace).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Create an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: the `rand` 0.8 `RngCore` trait.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fill `dest` with random bytes, reporting failure (infallible here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Build a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build a generator from a `u64` (splat into the seed bytes).
    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 expansion, matching rand's default behavior of
        // deriving the seed bytes from the u64.
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

mod sealed {
    /// Primitive types `Rng::gen` can produce.
    pub trait Sample {
        fn sample<R: crate::RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Sample for u32 {
        fn sample<R: crate::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    impl Sample for u64 {
        fn sample<R: crate::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl Sample for u8 {
        fn sample<R: crate::RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u32() >> 24) as u8
        }
    }

    impl Sample for u16 {
        fn sample<R: crate::RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u32() >> 16) as u16
        }
    }

    impl Sample for bool {
        fn sample<R: crate::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() & 1 == 1
        }
    }

    impl Sample for f64 {
        fn sample<R: crate::RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 random mantissa bits in [0, 1), rand's Standard convention.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Sample for f32 {
        fn sample<R: crate::RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

/// Convenience extension trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a uniformly random value of a supported primitive type.
    fn gen<T: sealed::Sample>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            self.0
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    #[test]
    fn gen_produces_unit_interval_floats() {
        let mut rng = Counter(7);
        for _ in 0..100 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn try_fill_is_infallible() {
        let mut rng = Counter(1);
        let mut buf = [0u8; 13];
        rng.try_fill_bytes(&mut buf).unwrap();
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        struct S([u8; 16]);
        impl SeedableRng for S {
            type Seed = [u8; 16];
            fn from_seed(seed: [u8; 16]) -> Self {
                S(seed)
            }
        }
        assert_eq!(S::seed_from_u64(5).0, S::seed_from_u64(5).0);
        assert_ne!(S::seed_from_u64(5).0, S::seed_from_u64(6).0);
    }
}
