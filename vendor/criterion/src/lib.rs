//! Offline vendored subset of the `criterion` API.
//!
//! The build container has no network access to crates.io, so this crate
//! provides a minimal statistics-light benchmark harness with the API the
//! workspace's benches use: [`Criterion`], `benchmark_group`,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`],
//! `Bencher::iter` / `iter_batched`, [`BatchSize`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros (both forms).
//!
//! Measurement model: after a short warm-up, each benchmark runs
//! `sample_size` samples; each sample times a batch of iterations sized so
//! one sample takes at least ~2 ms. The median per-iteration time is
//! printed. No plotting, no statistical regression tests — numbers only.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// How much a batched setup product costs to hold in memory; only affects
/// batch sizing in real criterion, ignored here (batch size is always 1 for
/// `iter_batched`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup product.
    SmallInput,
    /// Large setup product.
    LargeInput,
    /// Setup product per iteration.
    PerIteration,
}

/// Identifier for a parameterised benchmark: `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id with both a function name and a parameter value.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Median per-iteration time of the last measurement.
    last_median: Option<Duration>,
}

const MIN_SAMPLE_TIME: Duration = Duration::from_millis(2);
const WARM_UP_TIME: Duration = Duration::from_millis(50);

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm up and calibrate how many iterations one sample needs.
        let warm_start = Instant::now();
        let mut iters_per_sample = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= MIN_SAMPLE_TIME {
                break;
            }
            if warm_start.elapsed() >= WARM_UP_TIME {
                // Too slow to double further; scale up directly.
                let scale = (MIN_SAMPLE_TIME.as_nanos() / elapsed.as_nanos().max(1)) + 1;
                iters_per_sample = iters_per_sample.saturating_mul(scale as u64).max(1);
                break;
            }
            iters_per_sample = iters_per_sample.saturating_mul(2);
        }

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(t.elapsed() / iters_per_sample as u32);
        }
        samples.sort_unstable();
        self.last_median = Some(samples[samples.len() / 2]);
    }

    /// Measure `routine` on fresh values from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let mut samples = Vec::with_capacity(self.sample_size);
        // One warm-up run, then one timed routine call per sample.
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            samples.push(t.elapsed());
        }
        samples.sort_unstable();
        self.last_median = Some(samples[samples.len() / 2]);
    }
}

fn print_result(group: &str, name: &str, median: Option<Duration>) {
    match median {
        Some(m) => println!("{group}/{name}: median {m:?} per iteration"),
        None => println!("{group}/{name}: no measurement recorded"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.criterion.sample_size,
            last_median: None,
        };
        f(&mut bencher);
        print_result(&self.name, &id.to_string(), bencher.last_median);
        self
    }

    /// Run one benchmark closure with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: self.criterion.sample_size,
            last_median: None,
        };
        f(&mut bencher, input);
        print_result(&self.name, &id.to_string(), bencher.last_median);
        self
    }

    /// Finish the group (printing happens per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// The benchmark manager.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Run one stand-alone benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Define a benchmark group: plain `criterion_group!(name, target, ...)` or
/// the config form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.bench_function("iter", |b| b.iter(|| black_box(21u64) * 2));
        group.bench_with_input(BenchmarkId::new("with_input", 5), &5u64, |b, &x| {
            b.iter_batched(
                || vec![x; 4],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = target
    }

    #[test]
    fn harness_runs_groups() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }
}
