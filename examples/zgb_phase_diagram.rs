//! The classic ZGB phase diagram: steady-state coverages and CO₂ turnover
//! frequency against the CO gas fraction `y`.
//!
//! The ZGB model (the paper's running example, §2) has two kinetic phase
//! transitions: below `y₁` the surface poisons with O, above `y₂` it
//! poisons with CO, and in between a reactive steady state produces CO₂.
//! The turnover frequency (CO₂ events per site per time) vanishes in both
//! poisoned phases and peaks inside the reactive window. (With a finite
//! surface reaction rate the transition points shift slightly from the
//! classic instantaneous-reaction values y₁ ≈ 0.39, y₂ ≈ 0.525.)
//!
//! ```text
//! cargo run --release --example zgb_phase_diagram
//! ```

use surface_reactions::prelude::*;

fn main() {
    let side = 60u32;
    let t_end = 60.0;
    println!("ZGB phase diagram on a {side}x{side} lattice, t = {t_end}\n");
    println!("  y     vacant     CO        O       CO2 rate   phase");
    println!("-----------------------------------------------------------");
    for i in 0..=20 {
        let y = 0.20 + 0.025 * i as f64;
        let model = zgb_ziff(y, 10.0);
        let dims = Dims::square(side);

        // Drive VSSM directly so the RateMeter hook can watch CO2 events.
        let co2_group: Vec<usize> = (0..model.num_reactions())
            .filter(|&ri| model.reaction(ri).name().starts_with("RtCO+O"))
            .collect();
        let mut meter = RateMeter::new(
            model.num_reactions(),
            dims.sites() as usize,
            5.0,
            &[&co2_group],
        );
        let mut state = SimState::new(Lattice::filled(dims, 0), &model);
        let mut vssm = Vssm::new(&model, &state.lattice);
        let mut rng = rng_from_seed(42);
        vssm.run_until(&mut state, &mut rng, t_end, None, &mut meter);

        let vacant = state.coverage.fraction(ZGB_SPECIES.vacant.id());
        let co = state.coverage.fraction(ZGB_SPECIES.co.id());
        let o = state.coverage.fraction(ZGB_SPECIES.o.id());
        // Steady-state TOF: average over the second half of the run.
        let rate_series = meter.rate_series(0);
        let tof = rate_series.after(t_end / 2.0).mean().unwrap_or(0.0);
        let phase = if o > 0.95 {
            "O-poisoned"
        } else if co > 0.95 {
            "CO-poisoned"
        } else {
            "reactive"
        };
        let bar_len = (tof * 200.0).round() as usize;
        println!(
            "{y:.3}  {vacant:.4}   {co:.4}   {o:.4}   {tof:.4}     {phase:<12} {}",
            "#".repeat(bar_len.min(40))
        );
    }
    println!(
        "\nThe reactive window between the O- and CO-poisoned phases is where\n\
         CO2 production peaks — the regime the paper's simulations target."
    );
}
