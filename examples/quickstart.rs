//! Quickstart: simulate ZGB CO oxidation with the paper's RSM and print the
//! coverage kinetics plus a surface snapshot.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use surface_reactions::prelude::*;

fn main() {
    // The ZGB model (paper §2, Table I): CO adsorption with probability
    // y, dissociative O2 adsorption with 1−y, fast CO+O → CO2.
    let y = 0.45;
    let model = zgb_ziff(y, 10.0);
    println!(
        "ZGB model: {} species, {} reaction types, K = {:.3}",
        model.species().len(),
        model.num_reactions(),
        model.total_rate()
    );

    let out = Simulator::new(model.clone())
        .dims(Dims::square(100))
        .seed(2003)
        .algorithm(Algorithm::Rsm)
        .sample_dt(0.25)
        .run_until(25.0);

    let vacant = out.series(ZGB_SPECIES.vacant.id());
    let co = out.series(ZGB_SPECIES.co.id());
    let o = out.series(ZGB_SPECIES.o.id());

    println!("\nCoverage vs time  (C = CO, O = O, * = vacant):\n");
    print!(
        "{}",
        psr_stats::ascii_plot::plot(&[(vacant, '*'), (co, 'C'), (o, 'O')], 72, 18)
    );

    println!(
        "\nfinal coverages: vacant {:.3}, CO {:.3}, O {:.3}  ({} trials, {} reactions)",
        out.final_fraction(ZGB_SPECIES.vacant.id()),
        out.final_fraction(ZGB_SPECIES.co.id()),
        out.final_fraction(ZGB_SPECIES.o.id()),
        out.stats().trials,
        out.stats().executed,
    );

    println!("\nSurface snapshot (every 2nd site):");
    let glyphs = model.species().glyphs();
    print!(
        "{}",
        psr_lattice::render::render_downsampled(&out.state().lattice, &glyphs, 2)
    );

    // Island statistics: the O and CO phases form growing islands near the
    // poisoning transitions.
    let clusters = psr_lattice::Clusters::find(&out.state().lattice);
    let co_stats = clusters.stats_for(ZGB_SPECIES.co.id());
    let o_stats = clusters.stats_for(ZGB_SPECIES.o.id());
    println!(
        "\nislands: CO {} (largest {}), O {} (largest {})",
        co_stats.count, co_stats.largest, o_stats.count, o_stats.largest
    );
}
