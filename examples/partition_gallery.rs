//! A gallery of partitions: the Fig 4 five-coloring, the Fig 6
//! checkerboard, greedy colorings for other models, and what goes wrong
//! without the non-overlap restriction (the Fig 2 conflict).
//!
//! ```text
//! cargo run --example partition_gallery
//! ```

use surface_reactions::crates::ca::conflict::ConflictDetector;
use surface_reactions::crates::model::library::diffusion::diffusion_model;
use surface_reactions::prelude::*;

fn print_partition(title: &str, partition: &Partition, dims: Dims) {
    println!("{title}");
    for y in 0..dims.height() {
        print!("  ");
        for x in 0..dims.width() {
            let c = partition.chunk_of(dims.site_at(x as i64, y as i64));
            print!("{c} ");
        }
        println!();
    }
    println!();
}

fn main() {
    // Fig 4: the optimal five-chunk partition for von Neumann neighborhoods.
    let d5 = Dims::square(5);
    let p5 = five_coloring(d5);
    print_partition(
        "Fig 4 — five chunks, (x + 2y) mod 5, von Neumann-safe:",
        &p5,
        d5,
    );
    let zgb = zgb_ziff(0.5, 1.0);
    println!(
        "  valid for ZGB: {} (minimum possible: 5 chunks)\n",
        p5.is_valid_for(&zgb)
    );

    // Fig 6: two chunks suffice once the reaction types are partitioned.
    let d6 = Dims::new(6, 4);
    let board = checkerboard(d6);
    print_partition(
        "Fig 6 — checkerboard, valid per single axis-pair type:",
        &board,
        d6,
    );
    let tp = axis_type_partition(&zgb, d6);
    println!(
        "  type subsets: T0 = {:?}\n                T1 = {:?}\n",
        tp.subsets[0]
            .iter()
            .map(|&i| zgb.reaction(i).name())
            .collect::<Vec<_>>(),
        tp.subsets[1]
            .iter()
            .map(|&i| zgb.reaction(i).name())
            .collect::<Vec<_>>(),
    );

    // Greedy coloring adapts to any model — here a diffusion model on an
    // awkward 7×9 lattice where the perfect coloring doesn't tile.
    let diff = diffusion_model(1.0);
    let d7 = Dims::new(7, 9);
    let greedy = greedy_coloring(d7, &diff);
    print_partition(
        &format!(
            "Greedy coloring, diffusion model on 7x9 ({} chunks):",
            greedy.num_chunks()
        ),
        &greedy,
        d7,
    );
    println!("  valid: {}\n", greedy.is_valid_for(&diff));

    // Fig 2: the conflict that forces all of this. Two particles adjacent
    // to the same vacancy both try to hop into it.
    let d2 = Dims::new(5, 1);
    let mut det = ConflictDetector::new(d2);
    let hop_right = diff.reaction_index("hop[0]").expect("exists");
    let hop_left = diff.reaction_index("hop[2]").expect("exists");
    let batch = [(d2.site_at(1, 0), hop_right), (d2.site_at(3, 0), hop_left)];
    println!("Fig 2 — simultaneous hops into the same vacancy:");
    println!("  lattice: . A _ A .   (A at 1 and 3, vacancy at 2)");
    match det.check_batch(&diff, &batch) {
        Some((a, b)) => println!("  conflict detected between batch entries {a} and {b} ✔"),
        None => println!("  no conflict (unexpected!)"),
    }
}
