//! All simulation algorithms side by side on the same ZGB workload:
//! kinetic agreement and cost per simulated time unit.
//!
//! RSM, VSSM and FRM simulate the Master Equation exactly and must agree
//! within noise; the CA family trades accuracy for parallel structure
//! (paper §4–5) and shows visible bias where its assumptions bite.
//!
//! ```text
//! cargo run --release --example algorithm_comparison
//! ```

use surface_reactions::prelude::*;

fn main() {
    let model = zgb_ziff(0.45, 10.0);
    let dims = Dims::square(50);
    let t_end = 10.0;

    let algorithms: Vec<(&str, Algorithm)> = vec![
        ("RSM (reference)", Algorithm::Rsm),
        ("VSSM (rejection-free)", Algorithm::Vssm),
        ("FRM (event queue)", Algorithm::Frm),
        ("NDCA (row-major)", Algorithm::Ndca { shuffled: false }),
        (
            "PNDCA (5 chunks, random order)",
            Algorithm::Pndca {
                partition: PartitionSpec::FiveColoring,
                selection: ChunkSelection::RandomOrder,
            },
        ),
        (
            "L-PNDCA (L = 1)",
            Algorithm::LPndca {
                partition: PartitionSpec::FiveColoring,
                l: 1,
                visit: ChunkVisit::SizeWeighted,
            },
        ),
        (
            "L-PNDCA (L = 500)",
            Algorithm::LPndca {
                partition: PartitionSpec::FiveColoring,
                l: 500,
                visit: ChunkVisit::SizeWeighted,
            },
        ),
        ("T-PNDCA (2 chunks)", Algorithm::TPndca),
        (
            "Parallel PNDCA (2 threads)",
            Algorithm::Parallel {
                partition: PartitionSpec::FiveColoring,
                threads: 2,
            },
        ),
    ];

    // Reference curve for deviation measurement.
    let reference = Simulator::new(model.clone())
        .dims(dims)
        .seed(999)
        .algorithm(Algorithm::Rsm)
        .sample_dt(0.2)
        .run_until(t_end);
    let ref_co = reference.series(ZGB_SPECIES.co.id());

    println!(
        "ZGB y = 0.45, {0}x{0}, t = {t_end}; deviations vs an independent RSM run\n",
        50
    );
    println!(
        "{:<32} {:>9} {:>9} {:>9} {:>11} {:>9}",
        "algorithm", "CO", "O", "rms dev", "trials", "ms"
    );
    for (name, algorithm) in algorithms {
        let start = std::time::Instant::now();
        let out = Simulator::new(model.clone())
            .dims(dims)
            .seed(5)
            .algorithm(algorithm)
            .sample_dt(0.2)
            .run_until(t_end);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        let dev = rms_deviation(ref_co, out.series(ZGB_SPECIES.co.id()), 50).unwrap_or(f64::NAN);
        println!(
            "{name:<32} {:>9.4} {:>9.4} {:>9.4} {:>11} {:>9.1}",
            out.final_fraction(ZGB_SPECIES.co.id()),
            out.final_fraction(ZGB_SPECIES.o.id()),
            dev,
            out.stats().trials,
            elapsed
        );
    }
    println!(
        "\nRSM/VSSM/FRM agree within stochastic noise (and the rejection-free\n\
         methods finish in a fraction of RSM's time); the CA rows show the\n\
         accuracy-for-parallelism trade the paper studies — T-PNDCA's\n\
         whole-chunk bursts deviate the most."
    );
}
