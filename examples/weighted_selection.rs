//! Rate-weighted chunk selection (§5 strategy 4) end to end: sequential
//! PNDCA served by the incremental propensity cache, the same strategy on
//! the threaded executor, and the Ω×T weighted chunk draw.
//!
//! ```text
//! cargo run --release --example weighted_selection
//! ```

use surface_reactions::crates::ca::pndca::ChunkSelection;
use surface_reactions::crates::ca::tpndca::{axis_type_partition, TPndca};
use surface_reactions::crates::dmc::events::NoHook;
use surface_reactions::prelude::*;

fn main() {
    let model = zgb_ziff(0.45, 10.0);
    let dims = Dims::square(60);
    let partition = five_coloring(dims);

    // Sequential weighted PNDCA: cache vs per-draw rescan must agree
    // trajectory-for-trajectory (the cache is a speed switch only).
    let run = |scan: bool| {
        let mut pndca = Pndca::new(&model, &partition)
            .with_selection(ChunkSelection::WeightedByRates)
            .with_scanned_weights(scan);
        let mut state = SimState::new(Lattice::filled(dims, 0), &model);
        let mut rng = rng_from_seed(7);
        pndca.run_steps(&mut state, &mut rng, 20, None, &mut NoHook);
        state
    };
    let cached = run(false);
    let scanned = run(true);
    assert_eq!(cached.lattice, scanned.lattice);
    println!(
        "sequential weighted PNDCA, 20 steps: CO {:.3}, O {:.3} (cache == rescan: {})",
        cached.coverage.fraction(1),
        cached.coverage.fraction(2),
        cached.lattice == scanned.lattice,
    );

    // Threaded executor with the same strategy: pure function of
    // (seed, partition, threads); thread count changes the slice streams
    // but never safety or the per-step trial count.
    for threads in [1usize, 4] {
        let mut exec = ParallelPndca::new(&model, &partition, threads, 11)
            .with_selection(ChunkSelection::WeightedByRates);
        let mut state = SimState::new(Lattice::filled(dims, 0), &model);
        let stats = exec.run_steps(&mut state, 20, None);
        println!(
            "parallel weighted, {threads} thread(s): {} trials, {} executed — CO {:.3}, O {:.3}",
            stats.trials,
            stats.executed,
            state.coverage.fraction(1),
            state.coverage.fraction(2),
        );
    }

    // Ω×T: weight the chunk draw by the swept type's enabled propensity.
    // Note the weighting only steers *which chunk* a selected type sweeps;
    // the type draw itself is rate-proportional as in the paper, so with
    // k_react = 10 most sweeps still pick a (rarely enabled) CO+O type —
    // hence the longer run.
    let tp = axis_type_partition(&model, dims);
    let mut sim = TPndca::new(&model, tp).with_weighted_chunks(true);
    let mut state = SimState::new(Lattice::filled(dims, 0), &model);
    let mut rng = rng_from_seed(5);
    let stats = sim.run_steps(&mut state, &mut rng, 400, None, &mut NoHook);
    println!(
        "TPNDCA weighted chunks, 400 steps: {} executed — CO {:.3}, O {:.3}",
        stats.executed,
        state.coverage.fraction(1),
        state.coverage.fraction(2),
    );
}
