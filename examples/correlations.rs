//! Spatial pair correlations `g_ab(r)`: ZGB island clustering versus A+B
//! segregation anti-correlation — the structure behind the coverage numbers.
//!
//! ```text
//! cargo run --release --example correlations
//! ```

use surface_reactions::crates::lattice::{correlation_profile, pair_correlation};
use surface_reactions::crates::model::library::annihilation::{
    ab_annihilation, random_mixture, A, B,
};
use surface_reactions::prelude::*;

fn print_profile(label: &str, profile: &[Option<f64>]) {
    print!("{label:<24}");
    for g in profile {
        match g {
            Some(v) => print!(" {v:>6.3}"),
            None => print!("      -"),
        }
    }
    println!();
}

fn main() {
    println!("pair correlations g_ab(r), r = 1..8  (1 = uncorrelated)\n");
    print!("{:<24}", "");
    for r in 1..=8 {
        print!(" {r:>6}");
    }
    println!("\n{}", "-".repeat(24 + 7 * 8));

    // ZGB in the reactive window: O forms large islands.
    let zgb = Simulator::new(zgb_ziff(0.5, 10.0))
        .dims(Dims::square(100))
        .seed(3)
        .algorithm(Algorithm::Vssm)
        .sample_dt(5.0)
        .run_until(40.0);
    let zl = &zgb.state().lattice;
    print_profile(
        "ZGB O–O (islands)",
        &correlation_profile(zl, ZGB_SPECIES.o.id(), ZGB_SPECIES.o.id(), 8),
    );
    print_profile(
        "ZGB O–vacant",
        &correlation_profile(zl, ZGB_SPECIES.o.id(), ZGB_SPECIES.vacant.id(), 8),
    );

    // A+B annihilation: segregation → strong same-species clustering and
    // cross-species avoidance.
    let mut lattice = Lattice::filled(Dims::square(100), 0);
    let mut rng = rng_from_seed(7);
    random_mixture(&mut lattice, 0.8, &mut rng);
    let ab = Simulator::new(ab_annihilation(1.0, 20.0))
        .dims(Dims::square(100))
        .seed(11)
        .initial_lattice(lattice)
        .algorithm(Algorithm::Vssm)
        .sample_dt(1.0)
        .run_until(6.0); // early enough that domains are populated
    let al = &ab.state().lattice;
    println!(
        "(A+B sampled at t = 6: {} A and {} B particles remain)",
        al.count(A),
        al.count(B)
    );
    print_profile("A+B A–A (domains)", &correlation_profile(al, A, A, 8));
    print_profile("A+B A–B (avoidance)", &correlation_profile(al, A, B, 8));

    let g1_aa = pair_correlation(al, A, A, 1).unwrap_or(f64::NAN);
    let g1_ab = pair_correlation(al, A, B, 1).unwrap_or(f64::NAN);
    println!(
        "\nsegregation signature: g_AA(1) = {g1_aa:.2} (> 1: domains) vs\n\
         g_AB(1) = {g1_ab:.2} (< 1: species avoid each other) — the spatial\n\
         fluctuation structure mean-field kinetics misses."
    );
}
