//! The paper's "third way" of parallelism (§1): instead of parallelising
//! one big simulation, run many small independent replicas concurrently
//! and average — embarrassingly parallel and kinetically exact.
//!
//! ```text
//! cargo run --release --example ensemble_averaging
//! ```

use surface_reactions::crates::parallel::run_ensemble;
use surface_reactions::prelude::*;

fn main() {
    let y = 0.5;
    let t_end = 10.0;
    let replicas = 24;
    println!(
        "ZGB y = {y}: {replicas} independent 30x30 replicas, averaged\n\
         (replica-level parallelism — the paper's \"third way\")\n"
    );

    let run_replica = |seed: u64| {
        let out = Simulator::new(zgb_ziff(y, 10.0))
            .dims(Dims::square(30))
            .seed(7000 + seed)
            .algorithm(Algorithm::Rsm)
            .sample_dt(0.25)
            .run_until(t_end);
        out.series(ZGB_SPECIES.o.id()).clone()
    };

    let start = std::time::Instant::now();
    let ensemble = run_ensemble(replicas, 4, run_replica);
    let elapsed = start.elapsed();

    let mean = ensemble.mean();
    let stderr = ensemble.std_error();
    println!("O coverage, ensemble mean (m) with ±2·SE band (.):\n");
    let mut upper = TimeSeries::new();
    let mut lower = TimeSeries::new();
    for i in 0..mean.len() {
        let t = mean.times()[i];
        upper.push(t, mean.values()[i] + 2.0 * stderr.values()[i]);
        lower.push(t, (mean.values()[i] - 2.0 * stderr.values()[i]).max(0.0));
    }
    print!(
        "{}",
        psr_stats::ascii_plot::plot(&[(&upper, '.'), (&lower, '.'), (&mean, 'm')], 72, 16)
    );

    // Compare against one big lattice of the same total site count.
    let big = Simulator::new(zgb_ziff(y, 10.0))
        .dims(Dims::square(150)) // 22500 ≈ 24 × 900 sites
        .seed(99)
        .algorithm(Algorithm::Rsm)
        .sample_dt(0.25)
        .run_until(t_end);
    let dev = rms_deviation(&mean, big.series(ZGB_SPECIES.o.id()), 40).expect("overlap");
    println!(
        "\n{replicas} replicas in {elapsed:.2?}; ensemble mean vs one 150x150 run: RMS {dev:.4}"
    );
    println!(
        "small-lattice ensembles match the large lattice away from phase\n\
         transitions — and every replica is trivially parallel."
    );
}
