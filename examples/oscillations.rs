//! Coverage oscillations on reconstructing Pt(100) — the Kuzovkov model
//! the paper uses for its accuracy experiments (§6, Figs 8–10).
//!
//! CO lifts the hex reconstruction; O₂ only adsorbs on the square phase;
//! reacted-off regions relax back to hex. The feedback loop drives global
//! coverage oscillations.
//!
//! ```text
//! cargo run --release --example oscillations [side] [t_end]
//! ```

use surface_reactions::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let side: u32 = args.get(1).map(|s| s.parse().expect("side")).unwrap_or(60);
    let t_end: f64 = args
        .get(2)
        .map(|s| s.parse().expect("t_end"))
        .unwrap_or(250.0);

    let params = KuzovkovParams::default();
    let model = kuzovkov_model(params);
    println!(
        "Kuzovkov Pt(100) model: {} reaction types, K = {:.2}; lattice {side}x{side}, t = {t_end}",
        model.num_reactions(),
        model.total_rate()
    );

    let out = Simulator::new(model)
        .dims(Dims::square(side))
        .seed(7)
        .algorithm(Algorithm::Rsm)
        .sample_dt(0.5)
        .run_until(t_end);

    let co = out.combined_series(&[KUZOVKOV_SPECIES.hex_co.id(), KUZOVKOV_SPECIES.sq_co.id()]);
    let o = out.series(KUZOVKOV_SPECIES.sq_o.id()).clone();
    let sq = out.combined_series(&[
        KUZOVKOV_SPECIES.sq_vacant.id(),
        KUZOVKOV_SPECIES.sq_co.id(),
        KUZOVKOV_SPECIES.sq_o.id(),
    ]);

    println!("\nCoverages (C = CO total, O = O, s = square-phase fraction):\n");
    print!(
        "{}",
        psr_stats::ascii_plot::plot(&[(&co, 'C'), (&o, 'O'), (&sq, 's')], 76, 20)
    );

    let tail = co.after(t_end * 0.3);
    let osc = detect_peaks(&tail, 5, 0.05);
    match (osc.period, osc.amplitude) {
        (Some(period), Some(amplitude)) => println!(
            "\nCO oscillation: {} peaks, period ≈ {period:.1}, amplitude ≈ {amplitude:.3}",
            osc.peak_times.len()
        ),
        _ => println!("\nno sustained oscillation detected — try other parameters"),
    }
}
