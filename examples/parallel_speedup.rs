//! Parallel PNDCA in action: threaded chunk sweeps plus the calibrated
//! machine model behind the Fig 7 speedup surface.
//!
//! ```text
//! cargo run --release --example parallel_speedup
//! ```

use surface_reactions::prelude::*;

fn main() {
    let model = zgb_ziff(0.45, 10.0);
    let dims = Dims::square(100);
    let partition = five_coloring(dims);
    println!(
        "partition: {} chunks of {} sites each (the Fig 4 five-coloring)",
        partition.num_chunks(),
        partition.chunk(0).len()
    );

    // Real threaded execution: data-race freedom comes from the partition
    // property (validated at construction); the run is deterministic in
    // (seed, threads).
    for threads in [1usize, 2, 4] {
        let mut exec = ParallelPndca::new(&model, &partition, threads, 2003);
        let mut state = SimState::new(Lattice::filled(dims, 0), &model);
        let start = std::time::Instant::now();
        let stats = exec.run_steps(&mut state, 50, None);
        let elapsed = start.elapsed();
        println!(
            "{threads} thread(s): {} trials in {elapsed:?} — CO {:.3}, O {:.3}",
            stats.trials,
            state.coverage.fraction(ZGB_SPECIES.co.id()),
            state.coverage.fraction(ZGB_SPECIES.o.id()),
        );
    }

    // The machine model, calibrated against the real sequential executor,
    // extrapolates the Fig 7 surface to processor counts this host lacks.
    let params = MachineParams::calibrate(&model, Dims::square(50), 20, 1);
    println!(
        "\ncalibrated cost: {:.1} ns per site trial; sync {:.0}+{:.0}·p µs",
        params.t_site * 1e9,
        params.sync_alpha * 1e6,
        params.sync_beta * 1e6
    );
    let machine = SimulatedMachine::new(params);
    println!("\nmodelled speedup T(1,N)/T(p,N)  (rows: lattice side; cols: processors)");
    print!("  N \\ p |");
    let procs = [2usize, 4, 6, 8, 10];
    for p in procs {
        print!("  {p:>5}");
    }
    println!();
    for side in [200u32, 400, 600, 800, 1000] {
        print!("  {side:>5} |");
        for p in procs {
            let s = machine.speedup(p, side as u64 * side as u64, 5);
            print!("  {s:>5.2}");
        }
        println!();
    }
    println!("\nspeedup grows with N (work amortises the chunk barriers) and\nsaturates with p on small lattices — the Fig 7 shape.");
}
