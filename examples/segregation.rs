//! A + B → 0 annihilation with diffusion (Chopard & Droz, the paper's refs
//! [25–27]): starting from a random mixture, opposite species annihilate
//! and the survivors segregate into growing single-species domains — the
//! fluctuation-driven slowdown that mean-field kinetics misses.
//!
//! ```text
//! cargo run --release --example segregation
//! ```

use surface_reactions::crates::model::library::annihilation::{
    ab_annihilation, random_mixture, A, B,
};
use surface_reactions::prelude::*;

fn main() {
    let model = ab_annihilation(1.0, 20.0);
    let dims = Dims::square(100);
    let mut lattice = Lattice::filled(dims, 0);
    let mut seed_rng = rng_from_seed(11);
    random_mixture(&mut lattice, 0.8, &mut seed_rng);
    let initial_diff = lattice.count(A) as i64 - lattice.count(B) as i64;

    println!(
        "A+B -> 0 on {}x{}: initial densities A = {:.3}, B = {:.3}\n",
        dims.width(),
        dims.height(),
        lattice.fraction(A),
        lattice.fraction(B)
    );

    let out = Simulator::new(model.clone())
        .dims(dims)
        .seed(42)
        .initial_lattice(lattice)
        .algorithm(Algorithm::Vssm) // rejection-free: ideal as density falls
        .sample_dt(0.5)
        .run_until(60.0);

    let a = out.series(A);
    let b = out.series(B);
    println!("densities over time (A = a-curve, B = b-curve):\n");
    print!(
        "{}",
        psr_stats::ascii_plot::plot(&[(a, 'a'), (b, 'b')], 72, 14)
    );

    // Mean-field would predict ρ(t) ≈ ρ0/(1 + c·t); segregation slows the
    // decay. Report the decay and the domain structure.
    println!("\n   t     density   mean-field 1/(1+t) shape");
    for &t in &[5.0, 15.0, 30.0, 60.0] {
        let rho = a.interpolate(t) + b.interpolate(t);
        println!("{t:>5.0}    {rho:.4}");
    }

    let clusters = psr_lattice::Clusters::find(&out.state().lattice);
    let sa = clusters.stats_for(A);
    let sb = clusters.stats_for(B);
    println!(
        "\nfinal domains: A {} islands (largest {}), B {} islands (largest {})",
        sa.count, sa.largest, sb.count, sb.largest
    );
    println!("\nsurface (every 2nd site):");
    print!(
        "{}",
        psr_lattice::render::render_downsampled(&out.state().lattice, &model.species().glyphs(), 2)
    );
    let final_diff = out.state().coverage.count(A) as i64 - out.state().coverage.count(B) as i64;
    println!(
        "\n(N_A - N_B) is conserved by every reaction: {final_diff} vs initial {initial_diff}"
    );
    assert_eq!(final_diff, initial_diff);
}
