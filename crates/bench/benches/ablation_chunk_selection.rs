//! Ablation: cost of the four PNDCA chunk-selection strategies (§5).
//! In-order, random-order and with-replacement differ only by a shuffle or
//! chunk draw per step; rate-weighted selection rescans the lattice every
//! draw (O(N·|T|)) — this bench quantifies that price.

use criterion::{criterion_group, criterion_main, Criterion};
use psr_ca::partition_builder::five_coloring;
use psr_ca::pndca::{ChunkSelection, Pndca};
use psr_core::prelude::*;
use psr_dmc::events::NoHook;

fn bench_selection(c: &mut Criterion) {
    let model = zgb_ziff(0.45, 10.0);
    let dims = Dims::square(50);
    let partition = five_coloring(dims);
    let mut group = c.benchmark_group("chunk_selection_step");
    let strategies = [
        ("in_order", ChunkSelection::InOrder),
        ("random_order", ChunkSelection::RandomOrder),
        ("with_replacement", ChunkSelection::RandomWithReplacement),
        ("weighted_by_rates", ChunkSelection::WeightedByRates),
    ];
    for (name, selection) in strategies {
        group.bench_function(name, |b| {
            let mut pndca = Pndca::new(&model, &partition).with_selection(selection);
            let mut state = SimState::new(Lattice::filled(dims, 0), &model);
            let mut rng = rng_from_seed(7);
            pndca.run_steps(&mut state, &mut rng, 2, None, &mut NoHook); // thermalise
            b.iter(|| pndca.run_steps(&mut state, &mut rng, 1, None, &mut NoHook));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_selection
}
criterion_main!(benches);
