//! The measurement behind Fig 7: wall-clock time of one parallel PNDCA
//! step as a function of lattice size and thread count. On this host the
//! thread counts beyond the core count measure scheduling overhead — the
//! calibrated machine model (`repro_fig7`) extrapolates the paper's grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psr_ca::partition_builder::five_coloring;
use psr_core::prelude::*;
use psr_parallel::ParallelPndca;

fn bench_parallel_step(c: &mut Criterion) {
    let model = zgb_ziff(0.45, 10.0);
    let mut group = c.benchmark_group("fig7_parallel_step");
    for side in [50u32, 100, 200] {
        let dims = Dims::square(side);
        let partition = five_coloring(dims);
        for threads in [1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("side{side}"), threads),
                &threads,
                |b, &threads| {
                    let mut exec = ParallelPndca::new(&model, &partition, threads, 1);
                    let mut state = SimState::new(Lattice::filled(dims, 0), &model);
                    exec.run_steps(&mut state, 2, None); // warm-up
                    b.iter(|| exec.run_steps(&mut state, 1, None));
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_parallel_step
}
criterion_main!(benches);
