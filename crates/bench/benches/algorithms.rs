//! Throughput of every simulation algorithm on the same ZGB workload:
//! cost per MC step (N = 50×50 trials) for the trial-based methods, and
//! cost per 1000 events for the rejection-free DMC methods.
//!
//! This is the performance half of the paper's accuracy/performance trade:
//! the partitioned CA methods must not be slower than RSM per trial
//! (they are the same inner loop minus the site draw), and VSSM/FRM pay
//! bookkeeping per event instead of wasted trials.

use criterion::{criterion_group, criterion_main, Criterion};
use psr_ca::lpndca::{ChunkVisit, LPndca};
use psr_ca::ndca::Ndca;
use psr_ca::partition_builder::five_coloring;
use psr_ca::pndca::Pndca;
use psr_ca::tpndca::{axis_type_partition, TPndca};
use psr_core::prelude::*;
use psr_dmc::events::NoHook;

const SIDE: u32 = 50;

fn prepared_state(model: &Model) -> SimState {
    // Pre-thermalise so enabled-reaction structure is realistic.
    let mut state = SimState::new(Lattice::filled(Dims::square(SIDE), 0), model);
    let mut rng = rng_from_seed(1);
    Rsm::new(model).run_mc_steps(&mut state, &mut rng, 5, None, &mut NoHook);
    state
}

fn bench_trial_methods(c: &mut Criterion) {
    let model = zgb_ziff(0.45, 10.0);
    let partition = five_coloring(Dims::square(SIDE));
    let mut group = c.benchmark_group("mc_step");

    group.bench_function("rsm", |b| {
        let mut state = prepared_state(&model);
        let mut rng = rng_from_seed(2);
        let mut rsm = Rsm::new(&model);
        b.iter(|| rsm.run_mc_steps(&mut state, &mut rng, 1, None, &mut NoHook));
    });
    group.bench_function("ndca", |b| {
        let mut state = prepared_state(&model);
        let mut rng = rng_from_seed(3);
        let mut ndca = Ndca::new(&model);
        b.iter(|| ndca.run_steps(&mut state, &mut rng, 1, None, &mut NoHook));
    });
    group.bench_function("pndca_5chunks", |b| {
        let mut state = prepared_state(&model);
        let mut rng = rng_from_seed(4);
        let mut pndca = Pndca::new(&model, &partition);
        b.iter(|| pndca.run_steps(&mut state, &mut rng, 1, None, &mut NoHook));
    });
    group.bench_function("lpndca_l1", |b| {
        let mut state = prepared_state(&model);
        let mut rng = rng_from_seed(5);
        let mut lp = LPndca::new(&model, &partition, 1);
        b.iter(|| lp.run_steps(&mut state, &mut rng, 1, None, &mut NoHook));
    });
    group.bench_function("lpndca_l500", |b| {
        let mut state = prepared_state(&model);
        let mut rng = rng_from_seed(6);
        let mut lp = LPndca::new(&model, &partition, 500).with_visit(ChunkVisit::RandomOnce);
        b.iter(|| lp.run_steps(&mut state, &mut rng, 1, None, &mut NoHook));
    });
    group.bench_function("tpndca", |b| {
        let mut state = prepared_state(&model);
        let mut rng = rng_from_seed(7);
        let mut tp = TPndca::new(&model, axis_type_partition(&model, Dims::square(SIDE)));
        b.iter(|| tp.run_steps(&mut state, &mut rng, 1, None, &mut NoHook));
    });
    group.finish();
}

fn bench_event_methods(c: &mut Criterion) {
    let model = zgb_ziff(0.45, 10.0);
    let mut group = c.benchmark_group("events_1000");

    group.bench_function("vssm", |b| {
        b.iter_batched(
            || {
                let state = prepared_state(&model);
                let vssm = Vssm::new(&model, &state.lattice);
                (state, vssm, rng_from_seed(8))
            },
            |(mut state, mut vssm, mut rng)| {
                let mut changes = Vec::new();
                for _ in 0..1000 {
                    if vssm.step(&mut state, &mut rng, &mut changes).is_none() {
                        break;
                    }
                }
                state
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("vssm_tree", |b| {
        b.iter_batched(
            || {
                let state = prepared_state(&model);
                let vssm = VssmTree::new(&model, &state.lattice);
                (state, vssm, rng_from_seed(8))
            },
            |(mut state, mut vssm, mut rng)| {
                let mut changes = Vec::new();
                for _ in 0..1000 {
                    if vssm
                        .step_until(&mut state, &mut rng, &mut changes, f64::INFINITY)
                        .is_none()
                    {
                        break;
                    }
                }
                state
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("frm", |b| {
        b.iter_batched(
            || {
                let state = prepared_state(&model);
                let mut rng = rng_from_seed(9);
                let frm = psr_dmc::Frm::new(&model, &state.lattice, state.time, &mut rng);
                (state, frm, rng)
            },
            |(mut state, mut frm, mut rng)| {
                let mut changes = Vec::new();
                for _ in 0..1000 {
                    if frm
                        .step_until(&mut state, &mut rng, &mut changes, f64::INFINITY)
                        .is_none()
                    {
                        break;
                    }
                }
                state
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_trial_methods, bench_event_methods
}
criterion_main!(benches);
