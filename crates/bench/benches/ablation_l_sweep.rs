//! Ablation: L-PNDCA step cost across the trial budget `L`.
//! Larger `L` amortises chunk selection over longer bursts (better cache
//! locality within one chunk), which is the *performance* side of the
//! accuracy-vs-L trade of Fig 9; the accuracy side is measured by the
//! `ablation_l_accuracy` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psr_ca::lpndca::LPndca;
use psr_ca::partition_builder::five_coloring;
use psr_core::prelude::*;
use psr_dmc::events::NoHook;

fn bench_l_sweep(c: &mut Criterion) {
    let model = zgb_ziff(0.45, 10.0);
    let dims = Dims::square(50);
    let partition = five_coloring(dims);
    let mut group = c.benchmark_group("lpndca_step_by_l");
    for l in [1usize, 10, 100, 500, 2500] {
        group.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, &l| {
            let mut lp = LPndca::new(&model, &partition, l);
            let mut state = SimState::new(Lattice::filled(dims, 0), &model);
            let mut rng = rng_from_seed(3);
            lp.run_steps(&mut state, &mut rng, 2, None, &mut NoHook);
            b.iter(|| lp.run_steps(&mut state, &mut rng, 1, None, &mut NoHook));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_l_sweep
}
criterion_main!(benches);
