//! Ablation: reaction-type sampling with the O(1) alias table versus the
//! binary-search cumulative table, for small (ZGB: 7 types) and large
//! (Kuzovkov: 32 types, Ising: 32) rate vectors. Justifies the alias table
//! in the inner loop of every trial-based algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psr_core::prelude::*;
use psr_rng::{AliasTable, CumulativeTable};

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("type_sampling");
    let cases: Vec<(&str, Vec<f64>)> = vec![
        ("zgb7", zgb_ziff(0.45, 10.0).rate_weights()),
        (
            "kuzovkov32",
            kuzovkov_model(KuzovkovParams::default()).rate_weights(),
        ),
        (
            "uniform128",
            (1..=128).map(|i| i as f64).collect::<Vec<f64>>(),
        ),
    ];
    for (name, weights) in cases {
        group.bench_with_input(BenchmarkId::new("alias", name), &weights, |b, w| {
            let table = AliasTable::new(w);
            let mut rng = rng_from_seed(1);
            b.iter(|| {
                let mut acc = 0usize;
                for _ in 0..1000 {
                    acc += table.sample(&mut rng);
                }
                acc
            });
        });
        group.bench_with_input(BenchmarkId::new("cumulative", name), &weights, |b, w| {
            let table = CumulativeTable::new(w);
            let mut rng = rng_from_seed(1);
            b.iter(|| {
                let mut acc = 0usize;
                for _ in 0..1000 {
                    acc += table.sample(&mut rng);
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_sampling
}
criterion_main!(benches);
