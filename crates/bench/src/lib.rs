//! Shared harness utilities for the `repro_*` binaries and Criterion
//! benches that regenerate the paper's tables and figures.
//!
//! Binaries (one per table/figure — see DESIGN.md's experiment index):
//!
//! | binary | regenerates |
//! |--------|-------------|
//! | `repro_table1` | Table I — the ZGB reaction types |
//! | `repro_table2` | Table II — the Ω×T type subsets |
//! | `repro_fig2`   | Fig 2 — the synchronous-update conflict |
//! | `repro_fig3`   | Fig 3 — the 1-D BCA trace |
//! | `repro_fig4`   | Fig 4 — the 5-chunk partition tile |
//! | `repro_fig6`   | Fig 6 — the checkerboard type-partitions |
//! | `repro_fig7`   | Fig 7 — the speedup surface T(1,N)/T(p,N) |
//! | `repro_fig8`   | Fig 8 — RSM vs L-PNDCA at the limit parameters |
//! | `repro_fig9`   | Fig 9 — five chunks, L = 1 vs L = 100 |
//! | `repro_fig10`  | Fig 10 — five chunks, random-once, L = N/m |
//! | `ablation_l_accuracy` | oscillation robustness across the L budget |
//! | `ablation_segers` | domain-decomposition vs partitioned-CA cost models |
//! | `calibrate_kuzovkov` | parameter search behind `KuzovkovParams::default()` |
//!
//! Each binary prints its table/series to stdout and writes a CSV next to
//! the workspace root under `results/`.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use psr_core::prelude::*;
use psr_stats::TimeSeries;

/// The Kuzovkov coverage curves `(CO_total, O)` for one algorithm — the
/// workload behind Figs 8–10.
pub fn kuzovkov_curves(
    algorithm: Algorithm,
    side: u32,
    t_end: f64,
    seed: u64,
    sample_dt: f64,
) -> (TimeSeries, TimeSeries) {
    let out = Simulator::new(kuzovkov_model(KuzovkovParams::default()))
        .dims(Dims::square(side))
        .seed(seed)
        .algorithm(algorithm)
        .sample_dt(sample_dt)
        .run_until(t_end);
    let co = out.combined_series(&[KUZOVKOV_SPECIES.hex_co.id(), KUZOVKOV_SPECIES.sq_co.id()]);
    let o = out.series(KUZOVKOV_SPECIES.sq_o.id()).clone();
    (co, o)
}

/// Parse `side` / `t_end` from argv with defaults (every Fig 8–10 binary
/// accepts `[side] [t_end]`).
pub fn fig_args(default_side: u32, default_t: f64) -> (u32, f64) {
    let args: Vec<String> = std::env::args().collect();
    let side = args
        .get(1)
        .map(|s| s.parse().expect("side must be an integer"))
        .unwrap_or(default_side);
    let t_end = args
        .get(2)
        .map(|s| s.parse().expect("t_end must be a number"))
        .unwrap_or(default_t);
    (side, t_end)
}

/// Directory where the repro binaries drop their CSVs.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("PSR_RESULTS_DIR").unwrap_or_else(|_| "results".to_owned());
    let path = PathBuf::from(dir);
    std::fs::create_dir_all(&path).expect("cannot create results directory");
    path
}

/// Write aligned-column CSV (`header` then rows) to `path`.
///
/// # Panics
///
/// Panics if the file cannot be written or a row length mismatches the
/// header.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), header.len(), "row/header length mismatch");
        out.push_str(&row.join(","));
        out.push('\n');
    }
    std::fs::write(path, out).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
}

/// Serialise several equally-sampled series as CSV columns
/// `t, name1, name2, …` (rows truncated to the shortest series).
pub fn series_csv(path: &Path, named: &[(&str, &TimeSeries)]) {
    assert!(!named.is_empty(), "need at least one series");
    let len = named.iter().map(|(_, s)| s.len()).min().unwrap_or(0);
    let mut header = vec!["t".to_owned()];
    header.extend(named.iter().map(|(n, _)| (*n).to_owned()));
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for i in 0..len {
        let t = named[0].1.times()[i];
        let _ = write!(out, "{t}");
        for (_, s) in named {
            let _ = write!(out, ",{}", s.values()[i]);
        }
        out.push('\n');
    }
    std::fs::write(path, out).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
}

/// Render a fixed-width text table.
pub fn text_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (cell, w) in cells.iter().zip(widths) {
            let _ = write!(line, "{cell:<w$}  ");
        }
        line.trim_end().to_owned()
    };
    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_aligns() {
        let t = text_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2".into()],
            ],
        );
        assert!(t.contains("long-name"));
        assert!(t.lines().count() == 4);
    }

    #[test]
    fn series_csv_writes_columns() {
        let dir = std::env::temp_dir().join("psr_test_csv");
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("s.csv");
        let a = TimeSeries::from_points(vec![0.0, 1.0], vec![0.5, 0.6]);
        let b = TimeSeries::from_points(vec![0.0, 1.0], vec![0.1, 0.2]);
        series_csv(&path, &[("co", &a), ("o", &b)]);
        let content = std::fs::read_to_string(&path).expect("read back");
        assert!(content.starts_with("t,co,o\n"));
        assert!(content.contains("1,0.6,0.2"));
    }

    #[test]
    fn write_csv_roundtrip() {
        let dir = std::env::temp_dir().join("psr_test_csv2");
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("t.csv");
        write_csv(&path, &["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(
            std::fs::read_to_string(&path).expect("read back"),
            "a,b\n1,2\n"
        );
    }
}
