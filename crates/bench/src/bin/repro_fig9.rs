//! Regenerates **Fig 9**: L-PNDCA on the five-chunk partition with
//! (a) `L = 1` — kinetics indistinguishable from RSM, and (b) `L = 100` —
//! visible deviations (time-shifted oscillations) from the postponement
//! of other chunks during long bursts.
//!
//! Usage: `repro_fig9 [side] [t_end]` (defaults 100, 300).

use psr_bench::{fig_args, kuzovkov_curves, results_dir, series_csv};
use psr_core::prelude::*;

fn lpndca(l: usize) -> Algorithm {
    Algorithm::LPndca {
        partition: PartitionSpec::FiveColoring,
        l,
        visit: ChunkVisit::SizeWeighted,
    }
}

fn main() {
    let (side, t_end) = fig_args(100, 300.0);
    println!("Fig 9 — Kuzovkov model, {side}x{side}, five chunks, t = {t_end}\n");
    let sample_dt = 0.5;

    println!("running RSM …");
    let (rsm_co, _) = kuzovkov_curves(Algorithm::Rsm, side, t_end, 1, sample_dt);
    println!("running L-PNDCA L = 1 …");
    let (l1_co, _) = kuzovkov_curves(lpndca(1), side, t_end, 2, sample_dt);
    println!("running L-PNDCA L = 100 …");
    let (l100_co, _) = kuzovkov_curves(lpndca(100), side, t_end, 3, sample_dt);

    println!("\n(a) CO coverage, L = 1 (R = RSM, a = L-PNDCA):\n");
    print!(
        "{}",
        psr_stats::ascii_plot::plot(&[(&rsm_co, 'R'), (&l1_co, 'a')], 76, 14)
    );
    println!("\n(b) CO coverage, L = 100 (R = RSM, b = L-PNDCA):\n");
    print!(
        "{}",
        psr_stats::ascii_plot::plot(&[(&rsm_co, 'R'), (&l100_co, 'b')], 76, 14)
    );

    let dev1 = rms_deviation(&rsm_co, &l1_co, 300).expect("overlap");
    let dev100 = rms_deviation(&rsm_co, &l100_co, 300).expect("overlap");
    println!("\nRMS deviation of CO coverage from RSM:");
    println!("  L = 1  : {dev1:.4}   (pure noise — L=1 with size-weighted chunks IS RSM)");
    println!("  L = 100: {dev100:.4}");

    // Oscillation preservation / shift analysis.
    for (name, series) in [("RSM", &rsm_co), ("L=1", &l1_co), ("L=100", &l100_co)] {
        let osc = detect_peaks(&series.after(t_end * 0.25), 5, 0.04);
        println!(
            "  {name:<6}: {} peaks, period {:?}, amplitude {:?}",
            osc.peak_times.len(),
            osc.period.map(|p| format!("{p:.1}")),
            osc.amplitude.map(|a| format!("{a:.3}")),
        );
    }
    println!(
        "\nincreasing L introduces the bias the paper reports: bursts inside\n\
         one chunk postpone the others, shifting the oscillation clock."
    );

    series_csv(
        &results_dir().join("fig9.csv"),
        &[
            ("rsm_co", &rsm_co),
            ("l1_co", &l1_co),
            ("l100_co", &l100_co),
        ],
    );
    println!("wrote {}", results_dir().join("fig9.csv").display());
}
