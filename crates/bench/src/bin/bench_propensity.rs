//! Benchmark: incremental propensity cache vs per-draw chunk rescans for
//! weighted PNDCA chunk selection (§5 strategy 4).
//!
//! Both paths compute each chunk weight as `Σ_Rt count·k_Rt` in reaction
//! order, so they draw identical chunk sequences from identical seeds — the
//! bench first asserts that, then times steps/sec on the ZGB model at
//! L ∈ {64, 128, 256} and writes `BENCH_propensity.json` at the repo root.
//!
//! Usage: `bench_propensity [min_sample_secs]` (default 0.3).

use psr_ca::partition_builder::greedy_coloring;
use psr_ca::pndca::{ChunkSelection, Pndca};
use psr_core::prelude::*;
use psr_dmc::events::NoHook;
use std::path::PathBuf;
use std::time::Instant;

const SIDES: [u32; 3] = [64, 128, 256];

/// Thermalised ZGB state: a few in-order PNDCA steps from the empty
/// surface so the enabled-reaction structure is realistic.
fn prepared_state(model: &Model, dims: Dims) -> SimState {
    let partition = greedy_coloring(dims, model);
    let mut state = SimState::new(Lattice::filled(dims, 0), model);
    let mut rng = rng_from_seed(11);
    let mut pndca = Pndca::new(model, &partition);
    pndca.run_steps(&mut state, &mut rng, 5, None, &mut NoHook);
    state
}

/// Weighted steps/sec: run whole steps until `min_secs` of wall clock.
fn steps_per_sec(pndca: &mut Pndca, state: &SimState, seed: u64, min_secs: f64) -> (f64, u64) {
    let mut state = state.clone();
    let mut rng = rng_from_seed(seed);
    // Warm-up absorbs the one-off cache build (or first scan).
    pndca.run_steps(&mut state, &mut rng, 1, None, &mut NoHook);
    let start = Instant::now();
    let mut steps = 0u64;
    loop {
        pndca.run_steps(&mut state, &mut rng, 1, None, &mut NoHook);
        steps += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= min_secs {
            return (steps as f64 / elapsed, steps);
        }
    }
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() {
    let min_secs: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("min_sample_secs must be a number"))
        .unwrap_or(0.3);
    let model = zgb_ziff(0.45, 10.0);
    println!("Weighted PNDCA chunk selection: per-draw rescan vs incremental cache");
    println!("ZGB y_CO = 0.45, diluted 10x; min sample {min_secs} s per timing\n");
    println!("  side  chunks   scan steps/s   cache steps/s   speedup   identical");

    let mut entries = Vec::new();
    for side in SIDES {
        let dims = Dims::square(side);
        let partition = greedy_coloring(dims, &model);
        let state = prepared_state(&model, dims);

        // The cache-vs-scan switch must not change trajectories: same seed,
        // same steps, bit-identical lattices.
        let trajectory = |scan: bool| {
            let mut p = Pndca::new(&model, &partition)
                .with_selection(ChunkSelection::WeightedByRates)
                .with_scanned_weights(scan);
            let mut s = state.clone();
            let mut rng = rng_from_seed(23);
            p.run_steps(&mut s, &mut rng, 3, None, &mut NoHook);
            s.lattice
        };
        let identical = trajectory(true) == trajectory(false);
        assert!(
            identical,
            "scan and cache weighted selection diverged at side {side}"
        );

        let mut scan_pndca = Pndca::new(&model, &partition)
            .with_selection(ChunkSelection::WeightedByRates)
            .with_scanned_weights(true);
        let (scan_sps, scan_steps) = steps_per_sec(&mut scan_pndca, &state, 42, min_secs);
        let mut cache_pndca =
            Pndca::new(&model, &partition).with_selection(ChunkSelection::WeightedByRates);
        let (cache_sps, cache_steps) = steps_per_sec(&mut cache_pndca, &state, 42, min_secs);
        let speedup = cache_sps / scan_sps;
        println!(
            "  {side:>4}  {:>6}   {scan_sps:>12.2}   {cache_sps:>13.2}   {speedup:>6.1}x   {identical}",
            partition.num_chunks()
        );
        entries.push(format!(
            "    {{\"side\": {side}, \"chunks\": {}, \"scan_steps_per_sec\": {scan_sps:.3}, \
             \"scan_steps_timed\": {scan_steps}, \"cache_steps_per_sec\": {cache_sps:.3}, \
             \"cache_steps_timed\": {cache_steps}, \"speedup\": {speedup:.2}, \
             \"trajectories_identical\": {identical}}}",
            partition.num_chunks()
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"weighted PNDCA chunk selection: scan vs incremental propensity cache\",\n  \
         \"model\": \"zgb_ziff(0.45, 10.0)\",\n  \"selection\": \"WeightedByRates\",\n  \
         \"min_sample_secs\": {min_secs},\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = repo_root().join("BENCH_propensity.json");
    std::fs::write(&path, json).expect("cannot write BENCH_propensity.json");
    println!("\nwrote {}", path.display());
}
