//! Parameter search for the Kuzovkov Pt(100) model: find rate sets whose
//! 100×100 (or smaller, for speed) lattice shows sustained global coverage
//! oscillations. Used to pick `KuzovkovParams::default()`; see DESIGN.md
//! substitution 2.
//!
//! Usage: `calibrate_kuzovkov [side] [t_end]` (defaults 60, 300).

use psr_core::prelude::*;
use psr_model::library::kuzovkov::{co_coverage, o_coverage};

fn run_case(p: KuzovkovParams, side: u32, t_end: f64, seed: u64) -> (f64, usize, f64, f64, f64) {
    let model = kuzovkov_model(p);
    let out = Simulator::new(model)
        .dims(Dims::square(side))
        .seed(seed)
        .algorithm(Algorithm::Rsm)
        .sample_dt(0.5)
        .run_until(t_end);
    let co = out.combined_series(&[KUZOVKOV_SPECIES.hex_co.id(), KUZOVKOV_SPECIES.sq_co.id()]);
    // Drop the transient before measuring oscillations.
    let tail = co.after(t_end * 0.3);
    let osc = detect_peaks(&tail, 5, 0.05);
    let fractions = out.state().coverage.fractions();
    (
        osc.amplitude.unwrap_or(0.0),
        osc.peak_times.len(),
        osc.period.unwrap_or(0.0),
        co_coverage(&fractions),
        o_coverage(&fractions),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let side: u32 = args.get(1).map(|s| s.parse().expect("side")).unwrap_or(60);
    let t_end: f64 = args
        .get(2)
        .map(|s| s.parse().expect("t_end"))
        .unwrap_or(300.0);

    println!("side={side} t_end={t_end}");
    println!("y_co  k_o2  k_des k_react k_lift k_relax k_diff |  amp   peaks period  co_f   o_f");
    for &y in &[0.42, 0.48] {
        for &(k_lift, k_lift_front, k_relax, k_relax_front) in &[
            (0.2, 1.0, 0.05, 0.5), // best front candidate from prior scan
            (1.0, 0.0, 0.12, 0.0), // local baseline (current default)
        ] {
            for &k_diff in &[4.0, 12.0] {
                let p = KuzovkovParams {
                    y_co: y,
                    k_o2: (1.0 - y) / 2.0,
                    k_des: 0.1,
                    k_react: 10.0,
                    k_lift,
                    k_relax,
                    k_diff,
                    k_lift_front,
                    k_relax_front,
                };
                let (amp, peaks, period, co_f, o_f) = run_case(p, side, t_end, 7);
                println!(
                    "y={:.2} lift={:.2}/{:.2} relax={:.3}/{:.2} diff={:.1} | amp={:.3} peaks={:>2} period={:>6.1} co={:.3} o={:.3}",
                    p.y_co, p.k_lift, p.k_lift_front, p.k_relax, p.k_relax_front, p.k_diff,
                    amp, peaks, period, co_f, o_f
                );
            }
        }
    }
}
