//! Benchmark: batched lockstep replicas vs looping the single-replica
//! kernel.
//!
//! The validate statistical tier estimates ZGB observables from replica
//! ensembles; before `psr-batch`, each replica looped the compiled
//! single-replica NDCA kernel through a session with a `RateMeter` hook
//! and per-block coverage sampling ([`zgb_replica`]). The batch engine
//! steps 32–64 replicas of that exact job in SoA lockstep instead
//! ([`zgb_replicas_batch`]), sharing one compiled model and running the
//! per-trial chain eight replicas per instruction stream on AVX-512.
//!
//! Two things are measured:
//!
//! * **Bit-identity** — the batched runner's per-replica observables are
//!   compared `==` against `zgb_replica` for every slot (same seeds).
//!   Downstream this is what lets validate route its ensembles through
//!   the batch engine without changing a single verdict.
//! * **Replica throughput** — replicas/second of the serial loop vs the
//!   batch engine at widths 32 and 64, measured interleaved best-of-N
//!   like `bench_kernel` (alternating short windows, best window kept),
//!   because this host's wall clock is shared and noisy.
//!
//! Writes `BENCH_replica.json` at the repo root (`--smoke` writes
//! `BENCH_replica_smoke.json` on the smoke-sized job instead).
//!
//! Usage: `bench_replica [min_sample_secs]` or `bench_replica --smoke`.

use psr_batch::{BatchAlgorithm, BatchSim};
use psr_core::Algorithm;
use psr_lattice::Dims;
use psr_model::library::zgb::zgb_ziff;
use psr_validate::observables::{zgb_replica, zgb_replicas_batch, ZgbJob};
use std::path::PathBuf;
use std::time::Instant;

/// One timed arm: a closure running `k` quanta of `quantum` replicas
/// each. The serial arm's quantum is one replica; a batch arm's quantum
/// is its whole width (the engine always steps the full batch).
struct Timed<'a> {
    run: Box<dyn FnMut(u64) + 'a>,
    quantum: u64,
    best: f64,
    replicas: u64,
    elapsed: f64,
}

impl<'a> Timed<'a> {
    fn new(quantum: u64, mut run: Box<dyn FnMut(u64) + 'a>) -> Self {
        // Warm-up quantum absorbs one-off table builds and page faults.
        run(1);
        Timed {
            run,
            quantum,
            best: 0.0,
            replicas: 0,
            elapsed: 0.0,
        }
    }

    fn window(&mut self, quanta: u64) {
        let start = Instant::now();
        (self.run)(quanta);
        let dt = start.elapsed().as_secs_f64();
        let reps = quanta * self.quantum;
        self.best = self.best.max(reps as f64 / dt);
        self.replicas += reps;
        self.elapsed += dt;
    }
}

/// Replicas/sec for every arm: alternate short windows between the arms
/// until each has `min_secs` of wall clock, report each arm's best
/// window. Interleaving makes slow drifts hit all arms symmetrically;
/// best-of-N discards windows that caught an interference spike.
fn replicas_per_sec(arms: &mut [Timed<'_>], min_secs: f64) -> Vec<(f64, u64)> {
    let mut window_quanta = vec![1u64; arms.len()];
    for (t, w) in arms.iter_mut().zip(&mut window_quanta) {
        let probe = Instant::now();
        t.window(1);
        let qps = 1.0 / probe.elapsed().as_secs_f64().max(1e-9);
        // ~12 windows per arm over the requested sample time.
        *w = ((qps * min_secs / 12.0).ceil() as u64).max(1);
    }
    while arms.iter().any(|t| t.elapsed < min_secs) {
        for (t, &w) in arms.iter_mut().zip(&window_quanta) {
            t.window(w);
        }
    }
    arms.iter().map(|t| (t.best, t.replicas)).collect()
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() {
    let arg = std::env::args().nth(1);
    let smoke = arg.as_deref() == Some("--smoke");
    let min_secs: f64 = if smoke {
        0.3
    } else {
        arg.map(|s| s.parse().expect("min_sample_secs must be a number"))
            .unwrap_or(3.0)
    };
    let job = if smoke {
        ZgbJob::smoke()
    } else {
        ZgbJob::full()
    };
    let algorithm = Algorithm::Ndca { shuffled: false };
    let widths: [u64; 2] = [32, 64];
    let base_seed = 7000u64;

    let simd = {
        let model = zgb_ziff(job.y, job.k_react);
        let seeds: Vec<u64> = (0..64).collect();
        BatchSim::new(
            &model,
            Dims::square(job.side),
            BatchAlgorithm::Ndca { shuffled: false },
            &seeds,
        )
        .simd_active()
    };

    println!("Batched lockstep replicas vs looping the single-replica kernel");
    println!(
        "ZGB y={}, k={}, L={}, t_end={}, min sample {min_secs} s, simd={simd}",
        job.y, job.k_react, job.side, job.t_end
    );
    println!("baseline = serial zgb_replica loop (session + RateMeter + sampling)\n");

    // Bit-identity first: every slot of every width must reproduce the
    // single-replica observables exactly. This doubles as warm-up.
    let mut identical = Vec::new();
    for &width in &widths {
        let rows = zgb_replicas_batch(&job, &algorithm, width, base_seed)
            .expect("NDCA is lockstep-capable");
        let ok = rows.iter().enumerate().all(|(i, row)| {
            let single = zgb_replica(&job, &algorithm, base_seed + i as u64);
            row == &single
        });
        identical.push(ok);
        assert!(ok, "batch width {width} diverged from single-replica runs");
    }

    // Interleaved timing: serial loop vs each batch width. Seeds advance
    // per window so no arm replays a cached trajectory, and all arms
    // draw from the same seed range.
    let mut serial_seed = base_seed;
    let mut batch_seeds: Vec<u64> = widths.iter().map(|_| base_seed).collect();
    let (b32, rest) = batch_seeds.split_at_mut(1);
    let mut arms = vec![
        Timed::new(
            1,
            Box::new(|quanta| {
                for _ in 0..quanta {
                    std::hint::black_box(zgb_replica(&job, &algorithm, serial_seed));
                    serial_seed += 1;
                }
            }),
        ),
        Timed::new(
            widths[0],
            Box::new(|quanta| {
                for _ in 0..quanta {
                    std::hint::black_box(
                        zgb_replicas_batch(&job, &algorithm, widths[0], b32[0]).unwrap(),
                    );
                    b32[0] += widths[0];
                }
            }),
        ),
        Timed::new(
            widths[1],
            Box::new(|quanta| {
                for _ in 0..quanta {
                    std::hint::black_box(
                        zgb_replicas_batch(&job, &algorithm, widths[1], rest[0]).unwrap(),
                    );
                    rest[0] += widths[1];
                }
            }),
        ),
    ];
    let timings = replicas_per_sec(&mut arms, min_secs);
    let (serial_rps, serial_timed) = timings[0];

    println!("  arm        replicas/s   timed   speedup   identical");
    println!("  serial    {serial_rps:>11.2}   {serial_timed:>5}");
    let mut entries = Vec::new();
    for (i, &width) in widths.iter().enumerate() {
        let (batch_rps, batch_timed) = timings[1 + i];
        let speedup = batch_rps / serial_rps;
        println!(
            "  batch x{width:<3}{batch_rps:>11.2}   {batch_timed:>5}   {speedup:>6.2}x   {}",
            identical[i]
        );
        entries.push(format!(
            "    {{\"replicas\": {width}, \"batch_replicas_per_sec\": {batch_rps:.3}, \
             \"batch_replicas_timed\": {batch_timed}, \"speedup\": {speedup:.3}, \
             \"trajectories_identical\": {}}}",
            identical[i]
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"batched lockstep replicas vs looping the single-replica kernel \
         (ZGB NDCA)\",\n  \
         \"baseline\": \"serial zgb_replica loop (session + RateMeter + coverage sampling)\",\n  \
         \"model_id\": \"zgb_ziff({}, {})\",\n  \"side\": {},\n  \"t_end\": {},\n  \
         \"smoke\": {smoke},\n  \"min_sample_secs\": {min_secs},\n  \"simd\": {simd},\n  \
         \"serial_replicas_per_sec\": {serial_rps:.3},\n  \
         \"serial_replicas_timed\": {serial_timed},\n  \"results\": [\n{}\n  ]\n}}\n",
        job.y,
        job.k_react,
        job.side,
        job.t_end,
        entries.join(",\n")
    );
    // Smoke mode gets its own file so CI never clobbers the committed
    // full-size benchmark record.
    let file = if smoke {
        "BENCH_replica_smoke.json"
    } else {
        "BENCH_replica.json"
    };
    let path = repo_root().join(file);
    std::fs::write(&path, json).expect("cannot write BENCH_replica.json");
    println!("\nwrote {}", path.display());
}
