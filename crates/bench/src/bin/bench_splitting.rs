//! Accuracy-vs-throughput sweep for fractional-step operator splitting.
//!
//! Runs the ZGB job on one lattice size with DMC (VSSM), PNDCA, L-PNDCA
//! and the fractional-step executor (Lie and Strang) across a range of
//! windows `Δt`, measuring for every arm:
//!
//! - the tail-mean CO coverage, whose absolute deviation from the DMC
//!   arm is the splitting error (DMC is exact; PNDCA/L-PNDCA deviations
//!   are their own documented discretisation biases);
//! - simulated time per wall second, the throughput currency in which
//!   the accuracy is paid for — the fractional-step arms amortise their
//!   per-window enabled-set rebuild over larger `Δt`, so throughput
//!   rises exactly where the splitting error rises.
//!
//! Every arm runs through `SimSession` — the same code path the engine
//! checkpoints — so the numbers describe the production executor, not a
//! bench-only loop.
//!
//! The job uses a stiff reaction rate (`k = 50`): the time-driven CA
//! arms pay `K` whole-lattice sweeps per simulated time unit regardless
//! of how few reactions actually fire, while the event-driven
//! fractional-step interior only pays for executed events — the regime
//! where operator splitting buys its throughput.
//!
//! Output: `BENCH_splitting.json` at the repo root (`--smoke` writes
//! `BENCH_splitting_smoke.json` on a small lattice), gated by
//! `scripts/check_bench.sh` on the summary line: the Strang arm must sit
//! within `SPLITTING_EPS` of DMC at the finest window *and* clear
//! `MIN_SPLITTING_SPEEDUP` over PNDCA at the loosest one.

use std::path::PathBuf;
use std::time::Instant;

use psr_ca::lpndca::ChunkVisit;
use psr_ca::pndca::ChunkSelection;
use psr_ca::splitting::Schedule;
use psr_core::{Algorithm, PartitionSpec, Simulator};
use psr_dmc::events::NoHook;
use psr_lattice::Dims;
use psr_model::library::zgb::zgb_ziff;
use psr_stats::TimeSeries;

const SEED: u64 = 20260808;

struct ArmResult {
    name: String,
    window: Option<f64>,
    theta_co: f64,
    sim_time_per_sec: f64,
}

/// Run one arm from the empty surface to `t_end`, sampling CO coverage at
/// ~0.25 time-unit block boundaries; returns the tail-mean coverage and
/// the simulated-time throughput of the whole run.
fn run_arm(name: &str, algorithm: Algorithm, side: u32, t_end: f64, seed: u64) -> ArmResult {
    let model = zgb_ziff(0.5, 50.0);
    let k_total = model.total_rate();
    let window = match &algorithm {
        Algorithm::Fskmc { window, .. } => Some(*window),
        _ => None,
    };
    let mut session = Simulator::new(model)
        .dims(Dims::square(side))
        .seed(seed)
        .algorithm(algorithm)
        .into_session()
        .expect("bench algorithms support sessions");
    // One block ≈ 0.25 simulated time units (one window for fskmc steps).
    let block = match window {
        Some(w) => (0.25 / w).ceil().max(1.0) as u64,
        None => (0.25 * k_total).ceil().max(1.0) as u64,
    };
    let mut co = TimeSeries::new();
    let wall = Instant::now();
    while session.time() < t_end {
        session.run_blocks(block, &mut NoHook);
        co.push(session.time(), session.state().coverage.fraction(1));
    }
    let elapsed = wall.elapsed().as_secs_f64().max(1e-9);
    ArmResult {
        name: name.to_owned(),
        window,
        theta_co: co.after(t_end * 0.5).mean().expect("tail samples"),
        sim_time_per_sec: session.time() / elapsed,
    }
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() {
    let smoke = std::env::args().nth(1).as_deref() == Some("--smoke");
    // Greedy coloring works on any side (five-coloring would need side % 5).
    let (side, t_end) = if smoke { (64, 4.0) } else { (256, 8.0) };
    let windows: &[f64] = if smoke {
        &[0.1, 0.8]
    } else {
        &[0.05, 0.2, 0.8]
    };
    let (gx, gy) = (4, 4);

    println!("Fractional-step splitting: error vs window vs throughput (L={side})");
    println!("ZGB y=0.5 k=50, {gx}x{gy} block grid, t_end {t_end}\n");

    let mut arms = vec![
        run_arm("dmc-rsm", Algorithm::Rsm, side, t_end, SEED),
        run_arm(
            "pndca",
            Algorithm::Pndca {
                partition: PartitionSpec::Greedy,
                selection: ChunkSelection::RandomOrder,
            },
            side,
            t_end,
            SEED + 1,
        ),
        run_arm(
            "lpndca-l1",
            Algorithm::LPndca {
                partition: PartitionSpec::Greedy,
                l: 1,
                visit: ChunkVisit::SizeWeighted,
            },
            side,
            t_end,
            SEED + 2,
        ),
    ];
    for (i, &window) in windows.iter().enumerate() {
        for (tag, schedule) in [("lie", Schedule::Lie), ("strang", Schedule::Strang)] {
            arms.push(run_arm(
                &format!("fskmc-{tag}"),
                Algorithm::Fskmc {
                    gx,
                    gy,
                    schedule,
                    window,
                },
                side,
                t_end,
                SEED + 10 + 2 * i as u64 + (tag == "strang") as u64,
            ));
        }
    }

    let dmc_theta = arms[0].theta_co;
    let pndca_tps = arms[1].sim_time_per_sec;
    let mut entries = Vec::new();
    for arm in &arms {
        let err = (arm.theta_co - dmc_theta).abs();
        let window = arm.window.map_or("null".to_owned(), |w| format!("{w}"));
        println!(
            "  {:<14} window {:>5}  theta_co {:.4}  |err| {:.4}  {:>9.3} sim-time/s",
            arm.name, window, arm.theta_co, err, arm.sim_time_per_sec
        );
        entries.push(format!(
            "    {{\"arm\": \"{}\", \"window\": {window}, \"theta_co\": {:.5}, \
             \"abs_error_vs_dmc\": {err:.5}, \"sim_time_per_sec\": {:.4}}}",
            arm.name, arm.theta_co, arm.sim_time_per_sec
        ));
    }

    // The gated trade-off endpoints: accuracy at the finest window, and
    // throughput (relative to PNDCA's simulated-time rate) at the loosest.
    let fine = windows[0];
    let loose = windows[windows.len() - 1];
    let strang_at = |w: f64| {
        arms.iter()
            .find(|a| a.name == "fskmc-strang" && a.window == Some(w))
            .expect("strang arm present")
    };
    let strang_err = (strang_at(fine).theta_co - dmc_theta).abs();
    let strang_speedup = strang_at(loose).sim_time_per_sec / pndca_tps;
    println!(
        "\n  summary: Strang |err| {strang_err:.4} at dt={fine}, \
         {strang_speedup:.2}x PNDCA throughput at dt={loose}"
    );
    entries.push(format!(
        "    {{\"summary\": \"splitting\", \"accuracy_window\": {fine}, \
         \"strang_abs_error\": {strang_err:.5}, \"loose_window\": {loose}, \
         \"strang_speedup_vs_pndca\": {strang_speedup:.3}}}"
    ));

    let json = format!(
        "{{\n  \"benchmark\": \"fractional-step splitting: error vs window vs throughput\",\n  \
         \"model_id\": \"zgb_ziff(0.5, 50.0)\",\n  \"side\": {side},\n  \
         \"block_grid\": \"{gx}x{gy}\",\n  \"t_end\": {t_end},\n  \"smoke\": {smoke},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let file = if smoke {
        "BENCH_splitting_smoke.json"
    } else {
        "BENCH_splitting.json"
    };
    let path = repo_root().join(file);
    std::fs::write(&path, json).expect("cannot write BENCH_splitting.json");
    println!("\nwrote {}", path.display());
}
