//! Regenerates **Fig 7**: the speedup surface `T(1,N)/T(p,N)` of the
//! PNDCA over system size `N` (lattice side 200…1000) and processor count
//! `p` (2…10).
//!
//! Three parts (see DESIGN.md substitution 1 and "Experiment engine"):
//! 0. **reference trajectories** — the sequential PNDCA runs of the sweep,
//!    executed as a durable `psr-engine` batch (checkpointed, journalled,
//!    resumable; delete `results/fig7_engine/` to recompute);
//! 1. **measured** — real threaded executor wall-clock on this host (the
//!    curve saturates at the physical core count);
//! 2. **modelled** — the machine model with the work term calibrated from
//!    the measured sequential trial cost, evaluated across the paper's
//!    full (N, p) grid.

use psr_bench::{results_dir, text_table, write_csv};
use psr_core::prelude::*;
use psr_engine::spec::parse_algorithm;
use psr_engine::{BatchSpec, Engine, EngineConfig, JobSpec, ModelSpec, RunOptions};
use psr_parallel::measure_speedup;
use std::time::Duration;

/// Part 0: run the sweep's sequential reference trajectories through the
/// experiment engine — two workers, periodic checkpoints, a JSONL journal
/// and a live dashboard. A rerun picks up finished jobs from their `.done`
/// snapshots instead of recomputing them.
fn engine_reference_batch() {
    let engine_dir = results_dir().join("fig7_engine");
    let algorithm = parse_algorithm("pndca five random-order").expect("valid algorithm");
    let jobs = [100u32, 200]
        .iter()
        .map(|&side| {
            let mut job = JobSpec::new(
                &format!("kuzovkov_n{side}"),
                ModelSpec::Kuzovkov,
                algorithm.clone(),
                side,
                7,
                40,
            );
            job.checkpoint_every = 10;
            job
        })
        .collect();
    let batch = BatchSpec {
        engine: EngineConfig {
            workers: 2,
            checkpoint_dir: engine_dir.clone(),
            ..EngineConfig::default()
        },
        jobs,
    };
    println!("running the reference trajectories as a psr-engine batch:\n");
    let engine = Engine::new(batch.engine.clone());
    let report = engine
        .run_with_status(
            &batch,
            &RunOptions {
                status_every: Some(Duration::from_millis(250)),
                ..RunOptions::default()
            },
            |frame| print!("{frame}"),
        )
        .expect("engine batch");
    assert!(report.all_completed(), "engine batch failed: {report:?}");
    println!(
        "snapshots + journal in {} (delete to recompute)\n",
        engine_dir.display()
    );
}

fn main() {
    engine_reference_batch();

    let model = kuzovkov_model(KuzovkovParams::default());

    // Part 1: honest hardware measurement (small grid — 1 core host).
    let threads = [1usize, 2, 4];
    println!("measured wall-clock speedup on this host (PNDCA, Kuzovkov model):\n");
    let rows = measure_speedup(&model, &[100, 200], &threads, 10, 7);
    let mut printed = Vec::new();
    for r in &rows {
        printed.push(vec![
            r.side.to_string(),
            r.threads.to_string(),
            format!("{:.4}", r.t1),
            format!("{:.4}", r.tp),
            format!("{:.2}", r.speedup()),
        ]);
    }
    print!(
        "{}",
        text_table(
            &["N (side)", "threads", "T(1) s", "T(p) s", "speedup"],
            &printed
        )
    );
    write_csv(
        &results_dir().join("fig7_measured.csv"),
        &["side", "threads", "t1_s", "tp_s", "speedup"],
        &printed,
    );

    // Part 2: calibrated model over the paper's grid.
    let params = MachineParams::calibrate(&model, Dims::square(100), 5, 7);
    println!(
        "\ncalibrated trial cost: {:.1} ns/site; barrier model {:.0} + {:.0}·p µs\n",
        params.t_site * 1e9,
        params.sync_alpha * 1e6,
        params.sync_beta * 1e6
    );
    let machine = SimulatedMachine::new(params);
    let sides = [200u32, 300, 400, 500, 600, 700, 800, 900, 1000];
    let procs = [2usize, 3, 4, 5, 6, 7, 8, 9, 10];

    println!("modelled speedup surface T(1,N)/T(p,N)  (Fig 7):\n");
    print!("  N \\ p |");
    for p in procs {
        print!(" {p:>5}");
    }
    println!();
    println!("  ------+{}", "-".repeat(6 * procs.len()));
    let mut csv_rows = Vec::new();
    for &side in &sides {
        print!("  {side:>5} |");
        for &p in &procs {
            let s = machine.speedup(p, side as u64 * side as u64, 5);
            print!(" {s:>5.2}");
            csv_rows.push(vec![side.to_string(), p.to_string(), format!("{s:.4}")]);
        }
        println!();
    }
    write_csv(
        &results_dir().join("fig7_modeled.csv"),
        &["side", "p", "speedup"],
        &csv_rows,
    );
    println!(
        "\nshape check vs the paper: speedup grows with N, approaches p for\n\
         N = 1000, and bends over for small N where synchronisation dominates.\n\
         wrote {} and fig7_measured.csv",
        results_dir().join("fig7_modeled.csv").display()
    );
}
