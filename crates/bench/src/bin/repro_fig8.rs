//! Regenerates **Fig 8**: RSM and L-PNDCA coverage curves coincide at the
//! limit parameters `m = 1, L = N²` (one chunk) and `m = N², L = 1`
//! (singleton chunks) on the Kuzovkov model.
//!
//! Usage: `repro_fig8 [side] [t_end]` (defaults 100, 200 — the paper's
//! N = 100×100 and time window).

use psr_bench::{fig_args, kuzovkov_curves, results_dir, series_csv};
use psr_core::prelude::*;

fn main() {
    let (side, t_end) = fig_args(100, 200.0);
    let n = (side * side) as usize;
    println!("Fig 8 — Kuzovkov model, {side}x{side}, t = {t_end}: RSM vs L-PNDCA limits\n");

    let sample_dt = 0.5;
    println!("running RSM …");
    let (rsm_co, rsm_o) = kuzovkov_curves(Algorithm::Rsm, side, t_end, 1, sample_dt);
    println!("running L-PNDCA m = 1, L = N² …");
    let (m1_co, m1_o) = kuzovkov_curves(
        Algorithm::LPndca {
            partition: PartitionSpec::SingleChunk,
            l: n,
            visit: ChunkVisit::SizeWeighted,
        },
        side,
        t_end,
        2,
        sample_dt,
    );
    println!("running L-PNDCA m = N², L = 1 …");
    let (mn_co, mn_o) = kuzovkov_curves(
        Algorithm::LPndca {
            partition: PartitionSpec::Singletons,
            l: 1,
            visit: ChunkVisit::SizeWeighted,
        },
        side,
        t_end,
        3,
        sample_dt,
    );

    println!("\nCO coverage (R = RSM, 1 = m=1 limit, N = m=N² limit):\n");
    print!(
        "{}",
        psr_stats::ascii_plot::plot(&[(&rsm_co, 'R'), (&m1_co, '1'), (&mn_co, 'N')], 76, 16)
    );
    println!("\nO coverage:\n");
    print!(
        "{}",
        psr_stats::ascii_plot::plot(&[(&rsm_o, 'R'), (&m1_o, '1'), (&mn_o, 'N')], 76, 16)
    );

    let dev_m1 = rms_deviation(&rsm_co, &m1_co, 200).expect("overlap");
    let dev_mn = rms_deviation(&rsm_co, &mn_co, 200).expect("overlap");
    println!("\nRMS deviation of CO coverage from RSM (independent seeds):");
    println!("  m = 1,  L = N²: {dev_m1:.4}");
    println!("  m = N², L = 1 : {dev_mn:.4}");
    println!(
        "\nboth limits are algorithmically identical to RSM (paper §5/Fig 8);\n\
         the residual deviation is pure seed-to-seed stochastic noise."
    );

    series_csv(
        &results_dir().join("fig8.csv"),
        &[
            ("rsm_co", &rsm_co),
            ("m1_co", &m1_co),
            ("mn_co", &mn_co),
            ("rsm_o", &rsm_o),
            ("m1_o", &m1_o),
            ("mn_o", &mn_o),
        ],
    );
    println!("wrote {}", results_dir().join("fig8.csv").display());
}
