//! Ablation: the paper's §3 argument in numbers — Segers-style domain
//! decomposition pays per-boundary-trial communication, so its speedup
//! collapses on high-latency networks and for small blocks, while the
//! partitioned CA pays only a per-chunk barrier.

use psr_bench::{results_dir, text_table, write_csv};
use psr_core::prelude::*;
use psr_dmc::events::NoHook;

fn main() {
    let model = zgb_ziff(0.45, 10.0);
    let t_site = 100e-9;
    println!(
        "Segers domain decomposition vs partitioned CA — modelled speedups\n\
         (ZGB workload, t_site = {} ns)\n",
        t_site * 1e9
    );

    let mut rows = Vec::new();
    for (side, grid) in [(40u32, 2u32), (40, 4), (80, 2), (80, 4), (80, 8)] {
        let dims = Dims::square(side);
        let mut seg = SegersDecomposition::new(&model, dims, grid, grid);
        let mut state = SimState::new(Lattice::filled(dims, 0), &model);
        let mut rng = rng_from_seed(1);
        let steps = 10;
        let (_, comm) = seg.run_mc_steps(&mut state, &mut rng, steps, None, &mut NoHook);
        for latency_us in [1.0f64, 10.0, 100.0] {
            let s = seg.modeled_speedup(&comm, steps, t_site, latency_us * 1e-6);
            rows.push(vec![
                format!("{side}x{side}"),
                format!("{}x{} blocks (p={})", grid, grid, grid * grid),
                format!("{:.1}%", 100.0 * comm.boundary_fraction()),
                format!("{latency_us}"),
                format!("{s:.2}"),
            ]);
        }
    }
    print!(
        "{}",
        text_table(
            &[
                "lattice",
                "decomposition",
                "boundary",
                "latency µs",
                "speedup"
            ],
            &rows
        )
    );
    write_csv(
        &results_dir().join("ablation_segers.csv"),
        &[
            "lattice",
            "decomposition",
            "boundary_fraction",
            "latency_us",
            "speedup",
        ],
        &rows,
    );

    // Contrast: the PNDCA barrier-only model at the same processor counts.
    let machine = SimulatedMachine::new(MachineParams {
        t_site,
        sync_alpha: 100e-6,
        sync_beta: 10e-6,
    });
    println!("\npartitioned-CA model at the same sizes (barrier 100 µs + 10 µs/p):");
    let mut rows2 = Vec::new();
    for side in [40u32, 80] {
        for p in [4usize, 16, 64] {
            let s = machine.speedup(p, side as u64 * side as u64, 5);
            rows2.push(vec![
                format!("{side}x{side}"),
                p.to_string(),
                format!("{s:.2}"),
            ]);
        }
    }
    print!("{}", text_table(&["lattice", "p", "speedup"], &rows2));
    println!(
        "\nthe decomposition's boundary fraction (volume/boundary ratio) caps its\n\
         speedup as latency grows — the paper's motivation for partitions."
    );
}
