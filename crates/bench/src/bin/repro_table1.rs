//! Regenerates **Table I**: the reaction types of the ZGB CO-oxidation
//! model, as `(site, source, target)` triple collections applied at a
//! site `s`.

use psr_bench::{results_dir, text_table, write_csv};
use psr_core::prelude::*;

fn transform_string(model: &Model, rt: &ReactionType) -> String {
    let mut parts = Vec::new();
    for t in rt.transforms() {
        let site = if t.offset == Offset::ZERO {
            "s".to_owned()
        } else {
            format!("s+({},{})", t.offset.dx, t.offset.dy)
        };
        parts.push(format!(
            "({site},{},{})",
            model.species().name(t.src),
            model.species().name(t.tgt)
        ));
    }
    format!("{{{}}}", parts.join(", "))
}

fn main() {
    let model = zgb_ziff(0.5, 1.0);
    println!("Table I — reaction types of the ZGB model applied at a site s\n");
    let mut rows = Vec::new();
    for rt in model.reactions() {
        rows.push(vec![
            rt.name().to_owned(),
            transform_string(&model, rt),
            format!("{:.3}", rt.rate()),
        ]);
    }
    print!(
        "{}",
        text_table(&["reaction type", "transformations", "rate"], &rows)
    );
    println!(
        "\n{} reaction types: RtCO+O has four orientation versions, RtO2 two,\n\
         RtCO one — matching Table I (whose fourth CO+O row misprints the O\n\
         partner as CO; we implement the physically intended pattern).",
        model.num_reactions()
    );
    write_csv(
        &results_dir().join("table1.csv"),
        &["reaction_type", "transformations", "rate"],
        &rows,
    );
    println!("\nwrote {}", results_dir().join("table1.csv").display());
}
