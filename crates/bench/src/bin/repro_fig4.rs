//! Regenerates **Fig 4**: the 5×5 tile of the optimal five-chunk partition
//! for von Neumann neighborhoods, and verifies the non-overlap restriction
//! for the ZGB model at several lattice sizes.

use psr_core::prelude::*;

fn main() {
    println!("Fig 4 — the five-chunk partition tile (chunk = (x + 2y) mod 5)\n");
    let dims = Dims::square(5);
    let p = five_coloring(dims);
    for y in 0..5 {
        print!("   ");
        for x in 0..5 {
            print!("{} ", p.chunk_of(dims.site_at(x, y)));
        }
        println!();
    }
    let model = zgb_ziff(0.5, 1.0);
    println!("\nvalidation of the non-overlap restriction for the ZGB model:");
    for side in [5u32, 10, 25, 100, 200] {
        let part = five_coloring(Dims::square(side));
        println!(
            "  {side:>3}x{side:<3}: {} chunks of {} sites — valid: {}",
            part.num_chunks(),
            part.chunk(0).len(),
            part.is_valid_for(&model)
        );
    }
    println!(
        "\nfive chunks is optimal: each site's closed von Neumann ball has 5\n\
         sites and same-chunk balls must be disjoint, so no chunk can hold\n\
         more than N/5 sites."
    );
}
