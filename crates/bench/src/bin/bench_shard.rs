//! Strong-scaling benchmark for the sharded PNDCA executor.
//!
//! Measures sweep throughput of `psr-shard`'s domain-decomposed executor
//! at 1 and 4 workers on the ZGB model, and gates the 4-worker speedup.
//! The host has a single core, so the timing basis is the Inline
//! scheduler's *critical path*: Σ over protocol phases of the slowest
//! worker's time — the wall clock a machine with one core per worker
//! would need. Halo encode/decode, write-back application, and count
//! folding are all inside the measured phases, so communication overhead
//! is charged to the parallel arm, not hidden.
//!
//! Before timing, the 1- and 4-worker arms are run from the same
//! thermalised state and their lattices compared: the sharded protocol
//! promises trajectories that are a pure function of (seed, partition),
//! independent of the worker grid, and the benchmark re-verifies that on
//! the production lattice sizes rather than trusting the unit tests'
//! small ones.
//!
//! Output: `BENCH_shard.json` at the repo root (`--smoke` writes
//! `BENCH_shard_smoke.json` on a small lattice), gated by
//! `scripts/check_bench.sh`.

use std::path::PathBuf;
use std::time::Instant;

use psr_ca::greedy_coloring;
use psr_ca::partition::Partition;
use psr_ca::pndca::ChunkSelection;
use psr_dmc::sim::SimState;
use psr_lattice::{Dims, Lattice};
use psr_model::library::zgb::zgb_ziff;
use psr_model::Model;
use psr_parallel::SegersDecomposition;
use psr_shard::{ScheduleMode, ShardGrid, ShardedPndca, Wire};

const SEED: u64 = 20260808;
const SELECTION: ChunkSelection = ChunkSelection::RandomOrder;

/// One timed arm: a persistent executor + state, measured by the delta of
/// the executor's accumulated critical path across each window. Windows
/// are interleaved between arms (see [`sweeps_per_cp_sec`]) so slow
/// drifts hit both arms symmetrically, and best-of-N discards windows
/// that caught an interference spike.
struct Arm<'m, 'p> {
    exec: ShardedPndca<'m, 'p>,
    state: SimState,
    best: f64,
    cp_sampled: f64,
    /// Minimum steps per window. Socket arms relaunch the worker
    /// processes on every window, and the first sweep in a fresh process
    /// pays page-fault and cache cold-start *on-CPU* (so it lands in the
    /// measured critical path); a multi-step floor amortises it.
    window_floor: u64,
}

impl<'m, 'p> Arm<'m, 'p> {
    fn new(
        model: &'m Model,
        partition: &'p Partition,
        workers: u32,
        mode: ScheduleMode,
        warm: &SimState,
        warm_steps: u64,
    ) -> Self {
        let mut exec = ShardedPndca::new(model, partition, ShardGrid::for_workers(workers), SEED)
            .with_selection(SELECTION)
            .with_mode(mode);
        exec.set_start_step(warm_steps);
        // One warm-up window absorbs the scatter/allocation cold start.
        let mut arm = Arm {
            exec,
            state: warm.clone(),
            best: 0.0,
            cp_sampled: 0.0,
            window_floor: if matches!(mode, ScheduleMode::Socket(_)) {
                8
            } else {
                1
            },
        };
        arm.window(1);
        arm.best = 0.0;
        arm.cp_sampled = 0.0;
        arm
    }

    fn window(&mut self, steps: u64) {
        let mark = self.exec.critical_path_seconds();
        self.exec.run_steps(&mut self.state, steps, None);
        let dt = (self.exec.critical_path_seconds() - mark).max(1e-9);
        self.best = self.best.max(steps as f64 / dt);
        self.cp_sampled += dt;
    }
}

/// Best sweeps per critical-path second for every arm: alternate short
/// windows until each arm has `min_secs` of sampled critical path.
fn sweeps_per_cp_sec(arms: &mut [Arm<'_, '_>], min_secs: f64) -> Vec<f64> {
    // ~12 windows per arm regardless of the requested sample time.
    let mut window_steps = vec![1u64; arms.len()];
    for (a, w) in arms.iter_mut().zip(&mut window_steps) {
        let mark = a.exec.critical_path_seconds();
        a.window(1);
        let sps = 1.0 / (a.exec.critical_path_seconds() - mark).max(1e-9);
        *w = ((sps * min_secs / 12.0).ceil() as u64).max(a.window_floor);
    }
    while arms.iter().any(|a| a.cp_sampled < min_secs) {
        for (a, &w) in arms.iter_mut().zip(&window_steps) {
            a.window(w);
        }
    }
    arms.iter().map(|a| a.best).collect()
}

/// Thermalise from the empty surface with the 1-worker sharded executor
/// so both arms start from an identical representative coverage mix.
fn prepared_state(model: &Model, partition: &Partition, dims: Dims, warm_steps: u64) -> SimState {
    let mut state = SimState::new(Lattice::filled(dims, 0), model);
    let mut exec = ShardedPndca::new(model, partition, ShardGrid::for_workers(1), SEED)
        .with_selection(SELECTION)
        .with_mode(ScheduleMode::Inline);
    exec.run_steps(&mut state, warm_steps, None);
    state
}

/// Continue the warm trajectory on a `workers`-wide grid for a few steps.
fn continued(
    model: &Model,
    partition: &Partition,
    warm: &SimState,
    warm_steps: u64,
    ident_steps: u64,
    workers: u32,
    mode: ScheduleMode,
) -> SimState {
    let mut exec = ShardedPndca::new(model, partition, ShardGrid::for_workers(workers), SEED)
        .with_selection(SELECTION)
        .with_mode(mode);
    exec.set_start_step(warm_steps);
    let mut state = warm.clone();
    exec.run_steps(&mut state, ident_steps, None);
    state
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() {
    let arg = std::env::args().nth(1);
    let smoke = arg.as_deref() == Some("--smoke");
    let min_secs: f64 = if smoke {
        0.05
    } else {
        arg.map(|s| s.parse().expect("min_sample_secs must be a number"))
            .unwrap_or(2.0)
    };
    // The smoke side must be big enough that the socket arms' fixed
    // per-step protocol cost (~600 frames/step of encode + syscall +
    // decode, a few µs each) doesn't drown the per-worker compute — at
    // 64 the socket speedup is latency-dominated noise; at 512 the
    // compute dominates and the arm clears a real bar.
    let sides: &[u32] = if smoke { &[512] } else { &[1024, 2048] };
    let warm_steps: u64 = if smoke { 10 } else { 40 };
    let ident_steps: u64 = if smoke { 5 } else { 3 };
    let model = zgb_ziff(0.5, 2.0);

    println!("Sharded PNDCA strong scaling (Inline critical path, 4 workers vs 1)");
    println!(
        "ZGB y=0.5 k=2, greedy coloring, random-order chunks, min sample {min_secs} s of \
         critical path per arm\n"
    );

    let mut entries = Vec::new();
    for &side in sides {
        let dims = Dims::square(side);
        // Greedy coloring works on any side (five-coloring needs side % 5).
        let partition = greedy_coloring(dims, &model);
        let warm = prepared_state(&model, &partition, dims, warm_steps);

        // Grid invariance on the production size: 4 workers must continue
        // the warm trajectory to exactly the same lattice as 1 worker.
        let one = continued(
            &model,
            &partition,
            &warm,
            warm_steps,
            ident_steps,
            1,
            ScheduleMode::Inline,
        );
        let four = continued(
            &model,
            &partition,
            &warm,
            warm_steps,
            ident_steps,
            4,
            ScheduleMode::Inline,
        );
        let identical = one.lattice == four.lattice && one.time.to_bits() == four.time.to_bits();
        assert!(
            identical,
            "L={side}: 4-worker trajectory diverged from the 1-worker one"
        );

        let wall = Instant::now();
        let mut arms = [1u32, 4].map(|workers| {
            Arm::new(
                &model,
                &partition,
                workers,
                ScheduleMode::Inline,
                &warm,
                warm_steps,
            )
        });
        let timings = sweeps_per_cp_sec(&mut arms, min_secs);
        let (sps_1w, sps_4w) = (timings[0], timings[1]);
        let speedup = sps_4w / sps_1w;

        // Measured communication of the 4-worker arm, plus the Segers
        // model's prediction for this decomposition with a nominal 1 µs
        // frame latency and the per-trial cost measured on the 1-worker arm.
        let comm = arms[1].exec.comm_stats();
        let steps_4w = arms[1].exec.steps_done() - warm_steps;
        let grid = arms[1].exec.grid();
        let t_site = 1.0 / (sps_1w * f64::from(dims.sites()));
        let modeled = SegersDecomposition::new(&model, dims, grid.gx(), grid.gy())
            .modeled_speedup(&comm, steps_4w, t_site, 1e-6);

        println!(
            "  L={side:<5} grid {}x{}: {sps_1w:>8.3} sweeps/s (1w)  {sps_4w:>8.3} sweeps/s (4w)  \
             speedup {speedup:.2}x  modeled {modeled:.2}x  boundary {:.1}%  identical {identical}  \
             [{:.1}s wall]",
            grid.gx(),
            grid.gy(),
            100.0 * comm.boundary_fraction(),
            wall.elapsed().as_secs_f64()
        );

        entries.push(format!(
            "    {{\"side\": {side}, \"workers\": 4, \"transport\": \"inline\", \
             \"grid\": \"{}x{}\", \
             \"sweeps_per_cp_sec_1w\": {sps_1w:.4}, \"sweeps_per_cp_sec_4w\": {sps_4w:.4}, \
             \"speedup\": {speedup:.3}, \"modeled_speedup\": {modeled:.3}, \
             \"boundary_fraction\": {:.4}, \"halo_bytes_per_step\": {}, \
             \"halo_messages_per_step\": {}, \"trajectories_identical\": {identical}}}",
            grid.gx(),
            grid.gy(),
            comm.boundary_fraction(),
            comm.halo_bytes / steps_4w.max(1),
            comm.halo_messages / steps_4w.max(1),
        ));

        // Socket transports at the headline size only: one process per
        // worker, frames over the wire. The critical path charges each
        // worker's on-CPU phase time plus the handshake-measured per-frame
        // latency per exchange round, so the wire cost is paid, not hidden.
        if side != sides[0] {
            continue;
        }
        for (wire, name) in [(Wire::Unix, "unix"), (Wire::Tcp, "tcp")] {
            let sock = continued(
                &model,
                &partition,
                &warm,
                warm_steps,
                ident_steps,
                4,
                ScheduleMode::Socket(wire),
            );
            let sock_identical =
                one.lattice == sock.lattice && one.time.to_bits() == sock.time.to_bits();
            assert!(
                sock_identical,
                "L={side}: 4-worker {name} trajectory diverged from the 1-worker inline one"
            );

            let wall = Instant::now();
            let mut arm = Arm::new(
                &model,
                &partition,
                4,
                ScheduleMode::Socket(wire),
                &warm,
                warm_steps,
            );
            let sps_sock = sweeps_per_cp_sec(std::slice::from_mut(&mut arm), min_secs)[0];
            let sock_speedup = sps_sock / sps_1w;

            let comm = arm.exec.comm_stats();
            let steps_sock = arm.exec.steps_done() - warm_steps;
            let latency_us = arm.exec.wire_latency_seconds().unwrap_or(0.0) * 1e6;
            let bytes_per_frame = comm.wire_bytes / comm.wire_frames.max(1);
            let frames_per_flush = comm.wire_frames as f64 / comm.wire_flushes.max(1) as f64;
            println!(
                "  L={side:<5} {name:>5} 4w: {sps_sock:>8.3} sweeps/s  speedup {sock_speedup:.2}x  \
                 wire latency {latency_us:.1} us/frame  {bytes_per_frame} B/frame  \
                 {frames_per_flush:.1} frames/flush  identical {sock_identical}  [{:.1}s wall]",
                wall.elapsed().as_secs_f64()
            );

            entries.push(format!(
                "    {{\"side\": {side}, \"workers\": 4, \"transport\": \"{name}\", \
                 \"sweeps_per_cp_sec_4w\": {sps_sock:.4}, \"speedup\": {sock_speedup:.3}, \
                 \"wire_latency_us_per_frame\": {latency_us:.2}, \
                 \"wire_bytes_per_frame\": {bytes_per_frame}, \
                 \"wire_frames_per_step\": {}, \"wire_frames_per_flush\": {frames_per_flush:.2}, \
                 \"trajectories_identical\": {sock_identical}}}",
                comm.wire_frames / steps_sock.max(1),
            ));
        }
    }

    let json = format!(
        "{{\n  \"benchmark\": \"sharded PNDCA strong scaling: 4 workers vs the 1-worker sharded \
         baseline\",\n  \
         \"basis\": \"Inline-scheduler critical path: sum over protocol phases of the slowest \
         worker, including halo encode/decode and write-back application\",\n  \
         \"model_id\": \"zgb_ziff(0.5, 2.0)\",\n  \"partition\": \"greedy_coloring\",\n  \
         \"selection\": \"random-order chunks\",\n  \"smoke\": {smoke},\n  \
         \"min_sample_secs\": {min_secs},\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    // Smoke mode gets its own file so CI never clobbers the committed
    // full-size benchmark record.
    let file = if smoke {
        "BENCH_shard_smoke.json"
    } else {
        "BENCH_shard.json"
    };
    let path = repo_root().join(file);
    std::fs::write(&path, json).expect("cannot write BENCH_shard.json");
    println!("\nwrote {}", path.display());
}
