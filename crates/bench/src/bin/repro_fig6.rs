//! Regenerates **Fig 5/6**: the four pair-pattern orientations overlapping
//! a site, and the two-chunk partitions used by the Ω×T approach.

use psr_core::prelude::*;

fn main() {
    let model = zgb_ziff(0.5, 1.0);

    println!("Fig 5 — pair patterns overlapping the central site s:");
    let orientations: Vec<Offset> = model
        .reactions()
        .iter()
        .filter(|r| r.name().starts_with("RtCO+O"))
        .flat_map(|r| r.transforms().iter().map(|t| t.offset))
        .filter(|o| *o != Offset::ZERO)
        .collect();
    for o in &orientations {
        println!("  s paired with s+({},{})", o.dx, o.dy);
    }
    println!("  → {} possible pairs through s\n", orientations.len());

    println!("Fig 6 — the two chunks of the checkerboard partition (6-wide lattice):");
    let dims = Dims::new(6, 3);
    let p = checkerboard(dims);
    for chunk in 0..2 {
        let sites: Vec<String> = p.chunk(chunk).iter().map(|s| s.0.to_string()).collect();
        println!("  P{chunk} = {{{}}}", sites.join(", "));
    }
    for y in 0..3 {
        print!("   ");
        for x in 0..6 {
            print!("{} ", p.chunk_of(dims.site_at(x, y)));
        }
        println!();
    }

    let tp = axis_type_partition(&model, Dims::square(10));
    println!("\nper-subset validity of the checkerboard (the relaxed, per-reaction rule):");
    for (j, subset) in tp.subsets.iter().enumerate() {
        for &ri in subset {
            println!(
                "  T{j} / {:<10}: valid = {}",
                model.reaction(ri).name(),
                tp.partitions[j].is_valid_for_reaction(&model, ri)
            );
        }
    }
    println!(
        "\n2 chunks instead of 5: partitioning Ω×T relaxes the non-overlap rule\n\
         to the single reaction type being swept (paper §5)."
    );
}
