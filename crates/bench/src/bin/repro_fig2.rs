//! Regenerates **Fig 2**: the conflict of naive synchronous CA updates —
//! two particles adjacent to the same vacancy both try to hop into it.
//! Demonstrates detection, then shows that the greedy partition eliminates
//! every such conflict by construction.

use psr_ca::conflict::ConflictDetector;
use psr_ca::partition_builder::greedy_coloring;
use psr_core::prelude::*;
use psr_model::library::diffusion::diffusion_model;

fn main() {
    let model = diffusion_model(1.0);
    let dims = Dims::new(5, 1);
    println!("Fig 2 — the two-particles-one-vacancy conflict\n");
    println!("lattice:   n-1  n  n+1   =   A  _  A   (A at sites 1 and 3)");

    let hop_right = model.reaction_index("hop[0]").expect("exists");
    let hop_left = model.reaction_index("hop[2]").expect("exists");
    let mut det = ConflictDetector::new(dims);
    let batch = [
        (dims.site_at(1, 0), hop_right),
        (dims.site_at(3, 0), hop_left),
    ];
    match det.check_batch(&model, &batch) {
        Some((a, b)) => println!(
            "synchronous update of both hops: CONFLICT between batch entries {a} and {b}\n\
             (both neighborhoods contain site n) — the Fig 2 situation."
        ),
        None => println!("unexpected: no conflict detected"),
    }

    // The cure: a conflict-free partition. Same-chunk batches never clash.
    let d2 = Dims::new(10, 10);
    let partition = greedy_coloring(d2, &model);
    println!(
        "\ngreedy partition for the diffusion model on 10x10: {} chunks",
        partition.num_chunks()
    );
    let mut det2 = ConflictDetector::new(d2);
    let mut checked = 0usize;
    for chunk in 0..partition.num_chunks() {
        for ri in 0..model.num_reactions() {
            let batch: Vec<(Site, usize)> =
                partition.chunk(chunk).iter().map(|&s| (s, ri)).collect();
            assert!(
                det2.check_batch(&model, &batch).is_none(),
                "partition failed for chunk {chunk} reaction {ri}"
            );
            checked += batch.len();
        }
    }
    println!(
        "checked {checked} simultaneous (site, reaction) updates within chunks: 0 conflicts —\n\
         the non-overlap restriction makes same-chunk updates safe."
    );
}
