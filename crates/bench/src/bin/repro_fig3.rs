//! Regenerates **Fig 3**: the 1-D Block Cellular Automaton with 3-site
//! blocks and the rule "a site becomes 0 if a neighbor (within its block)
//! is 0", with block boundaries shifting between steps.

use psr_ca::bca::{BlockCa, ZeroSpreadsRule};
use psr_core::prelude::*;

fn row_string(lattice: &Lattice) -> String {
    lattice
        .cells()
        .iter()
        .map(|c| if *c == 0 { "0 " } else { "1 " })
        .collect()
}

fn main() {
    println!("Fig 3 — 1-D BCA, 9 sites, 3-site blocks shifting by one each step\n");
    let dims = Dims::new(9, 1);
    let mut lattice = Lattice::from_cells(dims, vec![0, 1, 1, 1, 1, 1, 0, 1, 1]);
    let mut bca = BlockCa::new(ZeroSpreadsRule, 3, 1, 1, 0);

    println!("sites:  0 1 2 3 4 5 6 7 8");
    println!("t=0:    {}", row_string(&lattice));
    for step in 1..=4 {
        let blocks: Vec<String> = bca
            .current_blocks(dims)
            .iter()
            .map(|b| {
                let sites: Vec<String> = b.sites(dims).iter().map(|s| s.0.to_string()).collect();
                format!("{{{}}}", sites.join(","))
            })
            .collect();
        bca.step(&mut lattice);
        println!(
            "t={step}:    {}   blocks used: {}",
            row_string(&lattice),
            blocks.join(" ")
        );
    }
    println!(
        "\nthe zero regions spread across block boundaries only because the\n\
         blocks shift — the behaviour the partition concept generalises."
    );
}
