//! Regenerates **Table II**: the division of the ZGB reaction types into
//! subsets `T_j` by pattern orientation (the Ω×T approach, §5).

use psr_bench::{results_dir, text_table, write_csv};
use psr_core::prelude::*;

fn main() {
    let model = zgb_ziff(0.5, 1.0);
    let tp = axis_type_partition(&model, Dims::square(10));
    println!("Table II — reaction-type subsets T_j for the ZGB model\n");
    let mut rows = Vec::new();
    for (j, subset) in tp.subsets.iter().enumerate() {
        let names: Vec<&str> = subset.iter().map(|&ri| model.reaction(ri).name()).collect();
        rows.push(vec![
            format!("T{j}"),
            names.join(", "),
            format!("{:.3}", tp.subset_rate(&model, j)),
            format!("{}", tp.partitions[j].num_chunks()),
        ]);
    }
    print!(
        "{}",
        text_table(&["subset", "reaction types", "K_Tj", "chunks"], &rows)
    );
    println!(
        "\nvalidation: {:?} — each subset's 2-chunk checkerboard satisfies the\n\
         per-reaction non-overlap rule (vs 5 chunks for the full model).",
        tp.validate(&model)
    );
    write_csv(
        &results_dir().join("table2.csv"),
        &["subset", "reaction_types", "k_tj", "chunks"],
        &rows,
    );
    println!("\nwrote {}", results_dir().join("table2.csv").display());
}
