//! Regenerates **Fig 10**: L-PNDCA with five chunks, each visited exactly
//! once per step in random order with the maximal budget `L = N²/m` —
//! oscillations survive even at this extreme `L` (unlike size-weighted
//! selection, where very large `L` destroys them).
//!
//! Usage: `repro_fig10 [side] [t_end]` (defaults 100, 100 — the paper's
//! Fig 10 window).

use psr_bench::{fig_args, kuzovkov_curves, results_dir, series_csv};
use psr_core::prelude::*;

fn main() {
    let (side, t_end) = fig_args(100, 100.0);
    let n = (side * side) as usize;
    let l_max = n / 5;
    println!(
        "Fig 10 — Kuzovkov model, {side}x{side}, m = 5 chunks, L = N²/m = {l_max},\n\
         all chunks exactly once per step in random order, t = {t_end}\n"
    );
    let sample_dt = 0.25;

    println!("running RSM …");
    let (rsm_co, _) = kuzovkov_curves(Algorithm::Rsm, side, t_end, 1, sample_dt);
    println!("running L-PNDCA (random once per step) …");
    let (once_co, _) = kuzovkov_curves(
        Algorithm::LPndca {
            partition: PartitionSpec::FiveColoring,
            l: l_max,
            visit: ChunkVisit::RandomOnce,
        },
        side,
        t_end,
        2,
        sample_dt,
    );
    println!("running L-PNDCA (size-weighted draws, same L) for contrast …");
    let (weighted_co, _) = kuzovkov_curves(
        Algorithm::LPndca {
            partition: PartitionSpec::FiveColoring,
            l: l_max,
            visit: ChunkVisit::SizeWeighted,
        },
        side,
        t_end,
        3,
        sample_dt,
    );

    println!("\nCO coverage (R = RSM, o = random-once, w = size-weighted draws):\n");
    print!(
        "{}",
        psr_stats::ascii_plot::plot(
            &[(&rsm_co, 'R'), (&once_co, 'o'), (&weighted_co, 'w')],
            76,
            16
        )
    );

    println!("\noscillation survival (tail after 25% transient):");
    let mut rows = Vec::new();
    for (name, series) in [
        ("RSM", &rsm_co),
        ("random-once", &once_co),
        ("size-weighted", &weighted_co),
    ] {
        let osc = detect_peaks(&series.after(t_end * 0.25), 5, 0.04);
        println!(
            "  {name:<14}: {} peaks, period {:?}, amplitude {:?}",
            osc.peak_times.len(),
            osc.period.map(|p| format!("{p:.1}")),
            osc.amplitude.map(|a| format!("{a:.3}")),
        );
        rows.push((name, osc));
    }
    let dev_once = rms_deviation(&rsm_co, &once_co, 200).expect("overlap");
    let dev_weighted = rms_deviation(&rsm_co, &weighted_co, 200).expect("overlap");
    println!(
        "\nRMS deviation from RSM: random-once {dev_once:.4}, size-weighted {dev_weighted:.4}"
    );
    println!(
        "\nvisiting every chunk exactly once per step keeps all regions in\n\
         lock-step and preserves the oscillations even at maximal L (Fig 10)."
    );

    series_csv(
        &results_dir().join("fig10.csv"),
        &[
            ("rsm_co", &rsm_co),
            ("random_once_co", &once_co),
            ("size_weighted_co", &weighted_co),
        ],
    );
    println!("wrote {}", results_dir().join("fig10.csv").display());
}
