//! Benchmark: compiled reaction kernels vs naive per-reaction matching in
//! the NDCA trial loop.
//!
//! The compiled path answers "which reactions are enabled at this site?"
//! with a single table load (base-S neighborhood code → reaction LUT),
//! maintained incrementally from the change journal; the naive path walks
//! every transform of the sampled reaction through `Dims::translate`.
//!
//! Three arms are timed:
//!
//! * **naive** — a verbatim replica of the NDCA hot loop as it stood
//!   before this change (two-draw alias sampling, per-transform match walk,
//!   `N·K` recomputed each trial). The headline `speedup` is measured
//!   against this, i.e. against the loop the compiled kernel replaced.
//! * **hatch** — `with_naive_matching(true)`: the naive matcher behind the
//!   escape hatch, which shares the new single-draw alias sampler and the
//!   hoisted per-sweep constants. This arm consumes the same RNG stream as
//!   the compiled arm, so it anchors the bit-identity assertion; its ratio
//!   is reported separately as `speedup_vs_hatch`.
//! * **compiled** — the kernel path.
//!
//! The bench first asserts bit-identical trajectories between the hatch and
//! compiled arms from identical seeds (both sweep orders), then times NDCA
//! steps/sec for ZGB and the Kuzovkov oscillation model and writes
//! `BENCH_kernel.json` at the repo root.
//!
//! Usage: `bench_kernel [min_sample_secs]` or `bench_kernel --smoke`
//! (small lattice, short timing — the CI smoke mode).

use psr_core::prelude::*;
use psr_dmc::events::NoHook;
use std::path::PathBuf;
use std::time::Instant;

struct Case {
    name: &'static str,
    model_id: &'static str,
    model: Model,
}

/// Verbatim replica of the NDCA trial loop before compiled kernels existed
/// (reconstructed from the previous `Ndca::run_steps` + `AliasTable::sample`):
/// a two-draw alias sample (index, then f64 threshold compare against the
/// unpacked probability row), the naive per-transform match via
/// `try_execute`, and `N·K` recomputed every trial by the old `advance`.
/// The replica still benefits from today's faster `Pcg32` core, which only
/// makes the reported speedup conservative.
struct BaselineNdca<'m> {
    model: &'m Model,
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl<'m> BaselineNdca<'m> {
    fn new(model: &'m Model) -> Self {
        // Vose pairing, exactly as the old AliasTable::new left it.
        let weights = model.rate_weights();
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s] = l;
            prob[l] -= 1.0 - prob[s];
            if prob[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }
        BaselineNdca { model, prob, alias }
    }

    fn run_steps(&self, state: &mut SimState, rng: &mut SimRng, steps: u64) {
        let mut changes = Vec::with_capacity(4);
        let n = state.num_sites();
        for _ in 0..steps {
            for site_id in 0..n as u32 {
                let site = Site(site_id);
                let i = rng.index(self.prob.len());
                let reaction = if rng.f64() < self.prob[i] {
                    i
                } else {
                    self.alias[i]
                };
                changes.clear();
                let executed = self.model.reaction(reaction).try_execute(
                    &mut state.lattice,
                    site,
                    &mut changes,
                );
                if executed {
                    state.apply_changes(&changes);
                }
                let nk = state.num_sites() as f64 * self.model.total_rate();
                state.time += 1.0 / nk;
            }
        }
    }
}

/// Thermalised state: enough NDCA steps from the empty surface that the
/// coverage mix — and hence the enabled-reaction structure, the match-walk
/// depth, and the branch profile — is representative of a production run
/// rather than of a nearly empty lattice.
fn prepared_state(model: &Model, dims: Dims, warm_steps: u64) -> SimState {
    let mut state = SimState::new(Lattice::filled(dims, 0), model);
    let mut rng = rng_from_seed(11);
    Ndca::new(model).run_steps(&mut state, &mut rng, warm_steps, None, &mut NoHook);
    state
}

/// One timed arm in the interleaved measurement: a closure over its own
/// clone of the prepared state and its own RNG, so every arm walks a
/// statistically equivalent trajectory from the same starting surface.
struct Timed<'a> {
    run: Box<dyn FnMut(u64) + 'a>,
    best: f64,
    steps: u64,
    elapsed: f64,
}

impl<'a> Timed<'a> {
    fn new(mut run: Box<dyn FnMut(u64) + 'a>) -> Self {
        // Warm-up absorbs the one-off kernel build (or first scan).
        run(1);
        Timed {
            run,
            best: 0.0,
            steps: 0,
            elapsed: 0.0,
        }
    }

    fn window(&mut self, steps: u64) {
        let start = Instant::now();
        (self.run)(steps);
        let dt = start.elapsed().as_secs_f64();
        self.best = self.best.max(steps as f64 / dt);
        self.steps += steps;
        self.elapsed += dt;
    }
}

/// NDCA steps/sec for every arm: alternate short timing windows between the
/// arms until each has `min_secs` of wall clock, and report each arm's best
/// window. Interleaving makes slow drifts (frequency scaling, noisy
/// neighbours) hit all arms symmetrically, and best-of-N discards windows
/// that caught an interference spike.
fn steps_per_sec(arms: &mut [Timed<'_>], min_secs: f64) -> Vec<(f64, u64)> {
    // ~12 windows per arm regardless of the requested sample time.
    let mut window_steps = vec![1u64; arms.len()];
    for (t, w) in arms.iter_mut().zip(&mut window_steps) {
        let probe = Instant::now();
        t.window(1);
        let sps = 1.0 / probe.elapsed().as_secs_f64().max(1e-9);
        *w = ((sps * min_secs / 12.0).ceil() as u64).max(1);
    }
    while arms.iter().any(|t| t.elapsed < min_secs) {
        for (t, &w) in arms.iter_mut().zip(&window_steps) {
            t.window(w);
        }
    }
    arms.iter().map(|t| (t.best, t.steps)).collect()
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() {
    let arg = std::env::args().nth(1);
    let smoke = arg.as_deref() == Some("--smoke");
    let min_secs: f64 = if smoke {
        0.05
    } else {
        arg.map(|s| s.parse().expect("min_sample_secs must be a number"))
            .unwrap_or(0.5)
    };
    let side: u32 = if smoke { 64 } else { 256 };
    let warm_steps: u64 = if smoke { 20 } else { 200 };
    let dims = Dims::square(side);

    let cases = [
        Case {
            name: "ZGB",
            model_id: "zgb_ziff(0.45, 10.0)",
            model: zgb_ziff(0.45, 10.0),
        },
        Case {
            name: "Kuzovkov",
            model_id: "kuzovkov_model(KuzovkovParams::default())",
            model: kuzovkov_model(KuzovkovParams::default()),
        },
    ];

    println!("Compiled reaction kernels vs naive pattern matching (NDCA sweep)");
    println!("L = {side}, min sample {min_secs} s per timing");
    println!("naive = pre-change hot loop; hatch = with_naive_matching(true)\n");
    println!("  model      naive steps/s   hatch steps/s   compiled steps/s   speedup   vs hatch   identical");

    let mut entries = Vec::new();
    for case in &cases {
        let state = prepared_state(&case.model, dims, warm_steps);

        // The kernel swap must not change trajectories: same seed, same
        // steps, bit-identical lattices (both sweep orders).
        let trajectory = |naive: bool, order| {
            let mut ndca = Ndca::new(&case.model)
                .with_order(order)
                .with_naive_matching(naive);
            let mut s = state.clone();
            let mut rng = rng_from_seed(23);
            ndca.run_steps(&mut s, &mut rng, 3, None, &mut NoHook);
            s.lattice
        };
        use psr_ca::ndca::SweepOrder;
        let identical = trajectory(true, SweepOrder::RowMajor)
            == trajectory(false, SweepOrder::RowMajor)
            && trajectory(true, SweepOrder::Shuffled) == trajectory(false, SweepOrder::Shuffled);
        assert!(
            identical,
            "naive and compiled trajectories diverged for {}",
            case.name
        );

        let seed = 42;
        let baseline = BaselineNdca::new(&case.model);
        let (mut b_state, mut b_rng) = (state.clone(), rng_from_seed(seed));
        let mut hatch = Ndca::new(&case.model).with_naive_matching(true);
        let (mut h_state, mut h_rng) = (state.clone(), rng_from_seed(seed));
        let mut compiled = Ndca::new(&case.model);
        let (mut c_state, mut c_rng) = (state.clone(), rng_from_seed(seed));
        let mut arms = [
            Timed::new(Box::new(|steps| {
                baseline.run_steps(&mut b_state, &mut b_rng, steps)
            })),
            Timed::new(Box::new(|steps| {
                hatch.run_steps(&mut h_state, &mut h_rng, steps, None, &mut NoHook);
            })),
            Timed::new(Box::new(|steps| {
                compiled.run_steps(&mut c_state, &mut c_rng, steps, None, &mut NoHook);
            })),
        ];
        let timings = steps_per_sec(&mut arms, min_secs);
        let [(naive_sps, naive_steps), (hatch_sps, hatch_steps), (compiled_sps, compiled_steps)] =
            timings[..]
        else {
            unreachable!()
        };
        let speedup = compiled_sps / naive_sps;
        let speedup_hatch = compiled_sps / hatch_sps;
        println!(
            "  {:<9}  {naive_sps:>13.2}   {hatch_sps:>13.2}   {compiled_sps:>16.2}   \
             {speedup:>6.2}x   {speedup_hatch:>6.2}x   {identical}",
            case.name
        );
        entries.push(format!(
            "    {{\"model\": \"{}\", \"model_id\": \"{}\", \"side\": {side}, \
             \"naive_steps_per_sec\": {naive_sps:.3}, \"naive_steps_timed\": {naive_steps}, \
             \"hatch_steps_per_sec\": {hatch_sps:.3}, \"hatch_steps_timed\": {hatch_steps}, \
             \"compiled_steps_per_sec\": {compiled_sps:.3}, \
             \"compiled_steps_timed\": {compiled_steps}, \"speedup\": {speedup:.3}, \
             \"speedup_vs_hatch\": {speedup_hatch:.3}, \
             \"trajectories_identical\": {identical}}}",
            case.name, case.model_id
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"compiled reaction kernels vs naive pattern matching (NDCA)\",\n  \
         \"baseline\": \"pre-change NDCA hot loop (two-draw alias sample, naive match walk)\",\n  \
         \"side\": {side},\n  \"smoke\": {smoke},\n  \"min_sample_secs\": {min_secs},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    // Smoke mode gets its own file so CI never clobbers the committed
    // full-size (L=256) benchmark record.
    let file = if smoke {
        "BENCH_kernel_smoke.json"
    } else {
        "BENCH_kernel.json"
    };
    let path = repo_root().join(file);
    std::fs::write(&path, json).expect("cannot write BENCH_kernel.json");
    println!("\nwrote {}", path.display());
}
