//! Ablation: oscillation robustness of L-PNDCA across the trial budget
//! `L` (five chunks, Kuzovkov model) — the accuracy half of the paper's
//! accuracy/performance trade, measured on the paper's own observable:
//! survival, period and amplitude of the coverage oscillations, plus the
//! RMS deviation from an RSM reference (whose seed-to-seed noise floor is
//! reported for context: with a stochastic oscillator, independent runs
//! dephase, so RMS alone cannot distinguish small algorithmic bias).
//!
//! Usage: `ablation_l_accuracy [side] [t_end]` (defaults 60, 150).

use psr_bench::{fig_args, kuzovkov_curves, results_dir, write_csv};
use psr_core::prelude::*;

fn main() {
    let (side, t_end) = fig_args(60, 150.0);
    println!(
        "L-PNDCA oscillation robustness vs L — Kuzovkov {side}x{side}, t = {t_end}, 5 chunks\n"
    );
    let sample_dt = 0.5;

    let (rsm_a, _) = kuzovkov_curves(Algorithm::Rsm, side, t_end, 1, sample_dt);
    let (rsm_b, _) = kuzovkov_curves(Algorithm::Rsm, side, t_end, 2, sample_dt);
    let noise_floor = rms_deviation(&rsm_a, &rsm_b, 200).expect("overlap");
    let ref_osc = detect_peaks(&rsm_a.after(t_end * 0.25), 5, 0.04);
    println!(
        "RSM reference: {} peaks, period {:?}, amplitude {:?}; seed-to-seed RMS noise {noise_floor:.4}\n",
        ref_osc.peak_times.len(),
        ref_osc.period.map(|p| format!("{p:.1}")),
        ref_osc.amplitude.map(|a| format!("{a:.3}")),
    );
    println!("   L      peaks  period  amplitude  rms_vs_rsm  dev/noise");

    let mut rows = Vec::new();
    let n = (side * side) as usize;
    for &l in &[1usize, 5, 20, 100, 500, n / 5, n] {
        let (co, _) = kuzovkov_curves(
            Algorithm::LPndca {
                partition: PartitionSpec::FiveColoring,
                l,
                visit: ChunkVisit::SizeWeighted,
            },
            side,
            t_end,
            3,
            sample_dt,
        );
        let osc = detect_peaks(&co.after(t_end * 0.25), 5, 0.04);
        let dev = rms_deviation(&rsm_a, &co, 200).expect("overlap");
        println!(
            "{l:>6}    {:>3}   {:>6}   {:>7}    {dev:.4}      {:.2}",
            osc.peak_times.len(),
            osc.period
                .map(|p| format!("{p:.1}"))
                .unwrap_or_else(|| "-".into()),
            osc.amplitude
                .map(|a| format!("{a:.3}"))
                .unwrap_or_else(|| "-".into()),
            dev / noise_floor
        );
        rows.push(vec![
            l.to_string(),
            osc.peak_times.len().to_string(),
            osc.period.map(|p| format!("{p:.2}")).unwrap_or_default(),
            osc.amplitude.map(|a| format!("{a:.4}")).unwrap_or_default(),
            format!("{dev:.5}"),
        ]);
    }
    write_csv(
        &results_dir().join("ablation_l_accuracy.csv"),
        &["l", "peaks", "period", "amplitude", "rms_vs_rsm"],
        &rows,
    );
    println!(
        "\nwith the front-synchronised Kuzovkov model, oscillations survive all\n\
         L up to N — consistent with the paper's Fig 10 finding that fair\n\
         chunk scheduling preserves the kinetics; deviations sit at the\n\
         stochastic noise floor. (The fragile, diffusion-only variant of the\n\
         model loses its oscillations at large L; see DESIGN.md.)\n\
         wrote {}",
        results_dir().join("ablation_l_accuracy.csv").display()
    );
}
