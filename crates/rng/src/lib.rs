//! Reproducible random-number infrastructure for the PSR workspace.
//!
//! Stochastic lattice simulations need three things from their RNG that the
//! default `rand` thread RNG does not give us directly:
//!
//! 1. **Reproducibility** — a simulation must be exactly repeatable from a
//!    single `u64` seed so that experiments in `EXPERIMENTS.md` can be
//!    regenerated bit-for-bit.
//! 2. **Splittable streams** — the parallel chunk executor gives every chunk
//!    (or worker) its own statistically independent stream derived from the
//!    master seed, so results do not depend on thread scheduling.
//! 3. **Fast kinetic sampling** — selecting a reaction type with probability
//!    `k_i / K` happens once per trial; we provide both a linear-scan
//!    cumulative table and an O(1) Walker alias table.
//!
//! The generator is our own minimal PCG-XSH-RR 64/32 implementation (public
//! domain algorithm by M.E. O'Neill). It implements [`rand::RngCore`] and
//! [`rand::SeedableRng`] so the whole `rand` distribution ecosystem works on
//! top of it.

#![warn(missing_docs)]

pub mod alias;
pub mod pcg;
pub mod sample;
pub mod split;

pub use alias::AliasTable;
pub use pcg::Pcg32;
pub use sample::{exponential, CumulativeTable};
pub use split::{SplitMix64, StreamFactory};

/// The RNG type used throughout the workspace.
pub type SimRng = Pcg32;

/// Create the canonical simulation RNG from a master seed.
///
/// Equivalent to [`StreamFactory::new(seed).stream(0)`](StreamFactory::stream).
pub fn rng_from_seed(seed: u64) -> SimRng {
    StreamFactory::new(seed).stream(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rng_from_seed_is_reproducible() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2, "seeds 1 and 2 produced nearly identical output");
    }
}
