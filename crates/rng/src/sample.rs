//! Kinetic sampling helpers: exponential waiting times, cumulative tables,
//! and in-place shuffles.

use crate::pcg::Pcg32;

/// Draw an exponentially distributed waiting time with the given `rate`.
///
/// This is the inter-event time of a Poisson process: the paper's RSM
/// advances real time by a draw from `1 - exp(-N K t)`, i.e. an exponential
/// with rate `N·K` (paper §3 step 5).
///
/// # Panics
///
/// Panics if `rate` is not strictly positive and finite.
#[inline]
pub fn exponential(rng: &mut Pcg32, rate: f64) -> f64 {
    assert!(
        rate > 0.0 && rate.is_finite(),
        "rate must be positive, got {rate}"
    );
    // f64() is in [0,1); use 1-u in (0,1] so ln never sees 0.
    let u = 1.0 - rng.f64();
    -u.ln() / rate
}

/// Linear-scan cumulative table for discrete sampling.
///
/// The O(n)-per-draw counterpart to [`crate::AliasTable`]; faster in practice
/// for very small `n` (the ZGB model has 3 rate groups) and used as the
/// reference implementation in the `ablation_sampling` bench.
#[derive(Clone, Debug)]
pub struct CumulativeTable {
    cumulative: Vec<f64>,
    total: f64,
}

impl CumulativeTable {
    /// Build from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics on empty, negative, non-finite or all-zero weights.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "cumulative table needs at least one weight"
        );
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(
                w.is_finite() && w >= 0.0,
                "weights must be finite and >= 0, got {w}"
            );
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        CumulativeTable {
            cumulative,
            total: acc,
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if there are no categories (construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Total weight.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// Draw a category with probability proportional to its weight.
    #[inline]
    pub fn sample(&self, rng: &mut Pcg32) -> usize {
        let x = rng.f64() * self.total;
        // Binary search keeps large tables fast; for tiny tables the branch
        // predictor makes this competitive with a scan anyway.
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("non-NaN cumulative"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i,
        }
    }
}

/// Fisher–Yates shuffle in place.
pub fn shuffle<T>(rng: &mut Pcg32, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.index(i + 1);
        items.swap(i, j);
    }
}

/// Sample `k` distinct indices from `0..n` (partial Fisher–Yates).
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_indices(rng: &mut Pcg32, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct indices from {n}");
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = i + rng.index(n - i);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = Pcg32::new(8, 8);
        let rate = 4.0;
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut rng, rate)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.005, "mean {mean}, expected 0.25");
    }

    #[test]
    fn exponential_is_positive() {
        let mut rng = Pcg32::new(9, 9);
        for _ in 0..10_000 {
            assert!(exponential(&mut rng, 1.0) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_zero_rate_panics() {
        let mut rng = Pcg32::new(1, 1);
        exponential(&mut rng, 0.0);
    }

    #[test]
    fn cumulative_matches_alias_distribution() {
        let w = [2.0, 0.0, 3.0, 5.0];
        let table = CumulativeTable::new(&w);
        let mut rng = Pcg32::new(77, 7);
        let mut counts = [0usize; 4];
        let draws = 200_000;
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!((counts[0] as f64 / draws as f64 - 0.2).abs() < 0.01);
        assert!((counts[2] as f64 / draws as f64 - 0.3).abs() < 0.01);
        assert!((counts[3] as f64 / draws as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg32::new(3, 3);
        let mut v: Vec<u32> = (0..100).collect();
        shuffle(&mut rng, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_moves_elements() {
        let mut rng = Pcg32::new(4, 4);
        let mut v: Vec<u32> = (0..100).collect();
        shuffle(&mut rng, &mut v);
        let fixed = v
            .iter()
            .enumerate()
            .filter(|(i, &x)| *i as u32 == x)
            .count();
        assert!(fixed < 15, "{fixed} fixed points is suspicious");
    }

    #[test]
    fn shuffle_is_unbiased_on_positions() {
        // Each element should land in each position with probability 1/n.
        let n = 5;
        let trials = 60_000;
        let mut rng = Pcg32::new(5, 50);
        let mut counts = vec![vec![0usize; n]; n];
        for _ in 0..trials {
            let mut v: Vec<usize> = (0..n).collect();
            shuffle(&mut rng, &mut v);
            for (pos, &elem) in v.iter().enumerate() {
                counts[elem][pos] += 1;
            }
        }
        for row in &counts {
            for &c in row {
                let f = c as f64 / trials as f64;
                assert!((f - 0.2).abs() < 0.01, "placement frequency {f}");
            }
        }
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Pcg32::new(6, 6);
        let picked = sample_indices(&mut rng, 50, 20);
        assert_eq!(picked.len(), 20);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "indices not distinct");
        assert!(picked.iter().all(|&i| i < 50));
    }

    #[test]
    fn sample_indices_full_is_permutation() {
        let mut rng = Pcg32::new(6, 7);
        let mut picked = sample_indices(&mut rng, 10, 10);
        picked.sort_unstable();
        assert_eq!(picked, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_indices_too_many_panics() {
        let mut rng = Pcg32::new(1, 1);
        sample_indices(&mut rng, 3, 4);
    }
}
