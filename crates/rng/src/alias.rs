//! Walker alias method for O(1) sampling from a discrete distribution.
//!
//! Step 1 of every RSM / NDCA trial is "select a reaction type `i` with
//! probability `k_i / K`" (paper §3). With a handful of reaction types a
//! linear scan is fine, but models with many types (orientation variants,
//! phase-dependent rates) benefit from the alias method: after O(n) setup,
//! each sample costs one random index + one random comparison.

use crate::pcg::Pcg32;
use rand::RngCore;

/// Precomputed alias table over weights `w_0..w_{n-1}`.
///
/// Sampling returns index `i` with probability `w_i / sum(w)`.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    /// One packed word per bucket — `alias << 32 | threshold` — so a sample
    /// is a *single* dependent table load: the accept test is
    /// `u32 draw < threshold` with `threshold = ceil(prob · 2³²)`, and
    /// certain-accept buckets (`prob == 1`) store `alias = i`, making the
    /// (saturated) threshold irrelevant to the outcome.
    entries: Vec<u64>,
    total: f64,
}

impl AliasTable {
    /// Build the table from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        for &w in weights {
            assert!(
                w.is_finite() && w >= 0.0,
                "weights must be finite and >= 0, got {w}"
            );
        }
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");

        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];

        // Partition indices into under-full and over-full buckets, then pair
        // them off (Vose's stable formulation of Walker's method).
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s] = l;
            prob[l] -= 1.0 - prob[s];
            if prob[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are exactly 1.0 up to rounding.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }

        assert!(n <= u32::MAX as usize, "alias table too large");
        let entries = prob
            .iter()
            .zip(&alias)
            .enumerate()
            .map(|(i, (&p, &a))| {
                // A certain-accept bucket aliases to itself, so saturating
                // its threshold at u32::MAX cannot change any outcome.
                let (a, t) = if p >= 1.0 {
                    (i as u64, u32::MAX as u64)
                } else {
                    let t = (p * (1u64 << 32) as f64).ceil() as u64;
                    (a as u64, t.min(u32::MAX as u64))
                };
                (a << 32) | t
            })
            .collect();
        AliasTable {
            prob,
            entries,
            total,
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table has no categories (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Total weight the table was built from.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// The packed `alias << 32 | threshold` word per bucket.
    ///
    /// Exposed for samplers that replicate [`sample`](Self::sample) outside
    /// this struct (the batched lockstep engine keeps the table in a vector
    /// register): bucket `i` accepts iff the high 32 draw bits are below
    /// `entries()[i] & 0xFFFF_FFFF`, else yields `entries()[i] >> 32`.
    pub fn entries(&self) -> &[u64] {
        &self.entries
    }

    /// Draw a category index with probability proportional to its weight.
    ///
    /// One 64-bit draw per sample: the low 32 bits pick the bucket (Lemire
    /// reduction with exact rejection), the high 32 bits decide accept vs
    /// alias against the packed integer threshold — the two halves are
    /// consecutive independent 32-bit outputs of the generator. Alias and
    /// threshold share one table word, so the whole decision costs a single
    /// dependent load, and the accept/alias choice is computed branchlessly:
    /// it is a coin flip the branch predictor cannot learn, and in
    /// trial-loop callers (NDCA/RSM) mispredictions would dominate the
    /// whole sample cost.
    #[inline(always)]
    pub fn sample(&self, rng: &mut Pcg32) -> usize {
        let n = self.entries.len() as u64;
        let x = rng.next_u64();
        let accept_bits = x >> 32;
        let mut m = (x & 0xFFFF_FFFF) * n;
        let mut lo = m & 0xFFFF_FFFF;
        if lo < n {
            // Short interval: fall back to the exact rejection bound. The
            // redraw consumes a fresh 64-bit word (probability ~n/2³²).
            let t = ((1u64 << 32) - n) % n;
            while lo < t {
                m = (rng.next_u64() & 0xFFFF_FFFF) * n;
                lo = m & 0xFFFF_FFFF;
            }
        }
        let i = (m >> 32) as usize;
        let e = self.entries[i];
        let a = (e >> 32) as usize;
        let accept = (accept_bits < (e & 0xFFFF_FFFF)) as usize;
        // accept ? i : a, as arithmetic so it compiles to a select.
        a ^ ((i ^ a) & accept.wrapping_neg())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical(weights: &[f64], draws: usize) -> Vec<f64> {
        let table = AliasTable::new(weights);
        let mut rng = Pcg32::new(314, 15);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let freq = empirical(&[1.0, 1.0, 1.0, 1.0], 100_000);
        for f in freq {
            assert!((f - 0.25).abs() < 0.01, "frequency {f} far from 0.25");
        }
    }

    #[test]
    fn skewed_weights_match_ratios() {
        let w = [1.0, 2.0, 7.0];
        let freq = empirical(&w, 200_000);
        assert!((freq[0] - 0.1).abs() < 0.01);
        assert!((freq[1] - 0.2).abs() < 0.01);
        assert!((freq[2] - 0.7).abs() < 0.01);
    }

    #[test]
    fn zero_weight_categories_never_drawn() {
        let freq = empirical(&[0.0, 1.0, 0.0], 10_000);
        assert_eq!(freq[0], 0.0);
        assert_eq!(freq[2], 0.0);
        assert_eq!(freq[1], 1.0);
    }

    #[test]
    fn single_category_always_drawn() {
        let freq = empirical(&[3.5], 100);
        assert_eq!(freq[0], 1.0);
    }

    #[test]
    fn total_weight_reported() {
        let t = AliasTable::new(&[1.5, 2.5]);
        assert!((t.total_weight() - 4.0).abs() < 1e-12);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_weights_panic() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn all_zero_weights_panic() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_weight_panics() {
        AliasTable::new(&[1.0, -0.5]);
    }

    #[test]
    fn many_categories_probabilities_hold() {
        let w: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        let total: f64 = w.iter().sum();
        let freq = empirical(&w, 500_000);
        for (i, f) in freq.iter().enumerate() {
            let expect = w[i] / total;
            assert!(
                (f - expect).abs() < 0.005,
                "category {i}: got {f}, expected {expect}"
            );
        }
    }
}
