//! Minimal PCG-XSH-RR 64/32 generator.
//!
//! PCG ("permuted congruential generator", O'Neill 2014) combines a 64-bit
//! LCG state with an output permutation. It is small (16 bytes), fast
//! (one multiply + shift/rotate per 32-bit output), passes TestU01 BigCrush,
//! and supports 2^63 independent *streams* selected by the increment — the
//! property the parallel executor relies on.

use rand::{Error, RngCore, SeedableRng};

const MULTIPLIER: u64 = 6364136223846793005;
/// `MULTIPLIER²` (wrapping): the LCG multiplier for a fused double step.
const MULTIPLIER_SQ: u64 = MULTIPLIER.wrapping_mul(MULTIPLIER);

/// PCG-XSH-RR 64/32: 64-bit state, 32-bit output, selectable stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    /// Odd increment; (increment >> 1) is the stream id.
    inc: u64,
}

impl Pcg32 {
    /// Create a generator from a state seed and a stream id.
    ///
    /// Two generators with different `stream` values produce statistically
    /// independent sequences even for identical `seed`s.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        // Standard PCG seeding dance: advance once, add seed, advance again.
        rng.step();
        rng.state = rng.state.wrapping_add(seed);
        rng.step();
        rng
    }

    /// The stream id this generator draws from.
    pub fn stream(&self) -> u64 {
        self.inc >> 1
    }

    /// Serialise the full generator state as two words `[state, inc]`.
    ///
    /// Together with [`from_state`](Self::from_state) this lets checkpoints
    /// resume the *exact* random stream: a generator rebuilt from these
    /// words produces the same outputs as the original from this point on.
    pub fn state(&self) -> [u64; 2] {
        [self.state, self.inc]
    }

    /// Rebuild a generator from [`state`](Self::state) words.
    ///
    /// # Errors
    ///
    /// Rejects an even increment word: every valid PCG increment is odd, so
    /// an even value means the words are corrupt (e.g. a truncated or
    /// hand-edited checkpoint), not a serialised generator.
    pub fn from_state(words: [u64; 2]) -> Result<Self, String> {
        if words[1] & 1 == 0 {
            return Err(format!(
                "invalid PCG state: increment {:#x} is even",
                words[1]
            ));
        }
        Ok(Pcg32 {
            state: words[0],
            inc: words[1],
        })
    }

    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(MULTIPLIER).wrapping_add(self.inc);
    }

    /// The XSH-RR output permutation of a state word.
    #[inline]
    fn permute(state: u64) -> u32 {
        let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
        let rot = (state >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Produce the next 32-bit output.
    #[inline]
    pub fn next_output(&mut self) -> u32 {
        let old = self.state;
        self.step();
        Self::permute(old)
    }

    /// Uniform `u64` in `[0, bound)` without modulo bias (Lemire reduction
    /// on a 64-bit draw with rejection).
    #[inline]
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "gen_below bound must be positive");
        // 128-bit multiply-shift; reject the short interval to stay unbiased.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= lo.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` index in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.gen_below(n as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Jump the generator forward by `delta` steps in O(log delta).
    ///
    /// Implements the LCG jump-ahead of Brown ("Random number generation
    /// with arbitrary strides", 1994).
    pub fn advance(&mut self, mut delta: u64) {
        let mut cur_mult = MULTIPLIER;
        let mut cur_plus = self.inc;
        let mut acc_mult: u64 = 1;
        let mut acc_plus: u64 = 0;
        while delta > 0 {
            if delta & 1 == 1 {
                acc_mult = acc_mult.wrapping_mul(cur_mult);
                acc_plus = acc_plus.wrapping_mul(cur_mult).wrapping_add(cur_plus);
            }
            cur_plus = cur_mult.wrapping_add(1).wrapping_mul(cur_plus);
            cur_mult = cur_mult.wrapping_mul(cur_mult);
            delta >>= 1;
        }
        self.state = acc_mult.wrapping_mul(self.state).wrapping_add(acc_plus);
    }
}

impl RngCore for Pcg32 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_output()
    }

    #[inline(always)]
    fn next_u64(&mut self) -> u64 {
        // Fused double step: s₂ = M·(M·s₀ + inc) + inc = M²·s₀ + (M+1)·inc
        // (wrapping), so the cross-call dependency is one multiply-add
        // instead of two — the trial loops of NDCA/RSM are serialized on
        // this chain. Outputs are bit-identical to two `next_output` calls.
        let s0 = self.state;
        let s1 = s0.wrapping_mul(MULTIPLIER).wrapping_add(self.inc);
        self.state = s0
            .wrapping_mul(MULTIPLIER_SQ)
            .wrapping_add(MULTIPLIER.wrapping_add(1).wrapping_mul(self.inc));
        let lo = Self::permute(s0) as u64;
        let hi = Self::permute(s1) as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_output().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_output().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Pcg32 {
    type Seed = [u8; 16];

    fn from_seed(seed: Self::Seed) -> Self {
        let state = u64::from_le_bytes(seed[0..8].try_into().unwrap());
        let stream = u64::from_le_bytes(seed[8..16].try_into().unwrap());
        Pcg32::new(state, stream)
    }

    fn seed_from_u64(state: u64) -> Self {
        Pcg32::new(state, 0xda3e_39cb_94b9_5bdb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values_stream_54() {
        // Reference sequence for pcg32 with seed 42, stream 54 from the
        // canonical C implementation (pcg_basic demo output).
        let mut rng = Pcg32::new(42, 54);
        let expected: [u32; 6] = [
            0xa15c02b7, 0x7b47f409, 0xba1d3330, 0x83d2f293, 0xbfa4784b, 0xcbed606e,
        ];
        for &e in &expected {
            assert_eq!(rng.next_output(), e);
        }
    }

    #[test]
    fn streams_are_independent() {
        let mut a = Pcg32::new(7, 1);
        let mut b = Pcg32::new(7, 2);
        let collisions = (0..1000)
            .filter(|_| a.next_output() == b.next_output())
            .count();
        assert!(collisions < 3);
    }

    #[test]
    fn advance_matches_stepping() {
        let mut a = Pcg32::new(99, 3);
        let mut b = a.clone();
        for _ in 0..1000 {
            a.next_output();
        }
        b.advance(1000);
        assert_eq!(a, b);
    }

    #[test]
    fn gen_below_is_in_range_and_covers() {
        let mut rng = Pcg32::new(5, 5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = Pcg32::new(11, 0);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn fill_bytes_handles_odd_lengths() {
        let mut rng = Pcg32::new(1, 1);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn state_roundtrip_resumes_exact_stream() {
        let mut rng = Pcg32::new(42, 54);
        for _ in 0..37 {
            rng.next_output();
        }
        let words = rng.state();
        let mut resumed = Pcg32::from_state(words).expect("valid state");
        assert_eq!(resumed, rng);
        for _ in 0..1000 {
            assert_eq!(resumed.next_output(), rng.next_output());
        }
        // The stream id survives the round trip too.
        assert_eq!(resumed.stream(), 54);
    }

    #[test]
    fn from_state_rejects_even_increment() {
        let err = Pcg32::from_state([1, 2]).unwrap_err();
        assert!(err.contains("even"), "unexpected error: {err}");
    }

    #[test]
    fn seedable_from_seed_roundtrip() {
        let mut seed = [0u8; 16];
        seed[0] = 42;
        seed[8] = 54;
        let mut a = Pcg32::from_seed(seed);
        let mut b = Pcg32::new(42, 54);
        assert_eq!(a.next_output(), b.next_output());
    }
}
