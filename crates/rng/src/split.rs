//! Stream derivation: turning one master seed into many independent RNGs.
//!
//! The parallel chunk executor (psr-parallel) hands every chunk its own
//! generator so that simulation output is a pure function of the master seed
//! and the partition, never of thread interleaving. Streams are derived by
//! running the master seed through SplitMix64 — the standard seeding
//! scrambler (Steele, Lea & Flood 2014) — once per stream index.

use crate::pcg::Pcg32;

/// SplitMix64: a tiny, well-mixed 64-bit generator used for seed derivation.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a SplitMix64 with the given state.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// Produce the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Derives independent [`Pcg32`] streams from one master seed.
///
/// `StreamFactory::new(seed).stream(i)` is deterministic in `(seed, i)` and
/// two distinct indices yield generators on distinct PCG streams with
/// independently scrambled states.
#[derive(Clone, Debug)]
pub struct StreamFactory {
    master_seed: u64,
}

impl StreamFactory {
    /// Create a factory for the given master seed.
    pub fn new(master_seed: u64) -> Self {
        StreamFactory { master_seed }
    }

    /// The master seed this factory derives from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Derive the generator for stream index `index`.
    pub fn stream(&self, index: u64) -> Pcg32 {
        // Scramble (seed, index) into a state seed; use the index itself
        // (scrambled) as the PCG stream selector so streams never collide
        // even if the scrambled states happened to.
        let mut mix = SplitMix64::new(self.master_seed ^ index.wrapping_mul(0xa076_1d64_78bd_642f));
        let state = mix.next_u64();
        let stream = mix.next_u64() ^ index;
        Pcg32::new(state, stream)
    }

    /// Derive `n` generators for stream indices `0..n`.
    pub fn streams(&self, n: usize) -> Vec<Pcg32> {
        (0..n as u64).map(|i| self.stream(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn splitmix_known_values() {
        // Reference output of SplitMix64 with state 0 (Vigna's reference
        // implementation; also Java SplittableRandom's test vector).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220A8397B1DCDAF);
        assert_eq!(sm.next_u64(), 0x6E789E6AA1B965F4);
    }

    #[test]
    fn streams_deterministic() {
        let f = StreamFactory::new(99);
        let mut a = f.stream(3);
        let mut b = f.stream(3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn streams_distinct() {
        let f = StreamFactory::new(99);
        let mut rngs = f.streams(16);
        let outputs: Vec<u64> = rngs.iter_mut().map(|r| r.next_u64()).collect();
        for i in 0..outputs.len() {
            for j in (i + 1)..outputs.len() {
                assert_ne!(outputs[i], outputs[j], "streams {i} and {j} collided");
            }
        }
    }

    #[test]
    fn stream_pairwise_correlation_is_low() {
        let f = StreamFactory::new(2023);
        let mut a = f.stream(0);
        let mut b = f.stream(1);
        let n = 10_000;
        let mut dot = 0.0;
        for _ in 0..n {
            let x = (a.next_u64() as f64 / u64::MAX as f64) - 0.5;
            let y = (b.next_u64() as f64 / u64::MAX as f64) - 0.5;
            dot += x * y;
        }
        let corr = dot / n as f64 / (1.0 / 12.0); // normalize by variance of U(-.5,.5)
        assert!(corr.abs() < 0.05, "correlation {corr} too high");
    }
}
