//! Kolmogorov–Smirnov tests: one-sample against the exponential
//! distribution, and two-sample between replica ensembles.
//!
//! Segers' first correctness criterion (paper §6): "the waiting time for a
//! reaction of type i has an exponential probability distribution
//! exp(−k_i t)". `psr-dmc` records empirical waiting times; the one-sample
//! test decides whether they are consistent with `Exp(rate)`. The
//! two-sample test asks whether two replica distributions (e.g. DMC vs.
//! PNDCA steady coverages) could share a common, unknown distribution.

/// Asymptotic Kolmogorov-distribution critical value for a significance
/// level. Supported levels: 0.10 (c=1.224), 0.05 (c=1.358), 0.01 (c=1.628).
///
/// Public so callers can report *how far* a test sat from its threshold
/// (`critical − scaled`), not just the accept/reject verdict.
///
/// # Panics
///
/// Panics on an unsupported level.
pub fn kolmogorov_critical(level: f64) -> f64 {
    if (level - 0.10).abs() < 1e-9 {
        1.224
    } else if (level - 0.05).abs() < 1e-9 {
        1.358
    } else if (level - 0.01).abs() < 1e-9 {
        1.628
    } else {
        panic!("unsupported significance level {level}; use 0.10, 0.05 or 0.01")
    }
}

/// Result of a Kolmogorov–Smirnov test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KsResult {
    /// The KS statistic `D_n = sup |F_emp − F|`.
    pub statistic: f64,
    /// Sample size.
    pub n: usize,
    /// `sqrt(n) · D_n`, the asymptotically pivotal quantity.
    pub scaled: f64,
}

impl KsResult {
    /// Accept the exponential hypothesis at roughly the given significance
    /// level using the asymptotic Kolmogorov distribution critical values.
    ///
    /// Supported levels: 0.10 (c=1.224), 0.05 (c=1.358), 0.01 (c=1.628).
    ///
    /// # Panics
    ///
    /// Panics on an unsupported level.
    pub fn accepts(&self, level: f64) -> bool {
        self.scaled <= kolmogorov_critical(level)
    }

    /// Signed distance from the acceptance threshold: positive when the
    /// test accepts with room to spare, negative when it rejects.
    ///
    /// # Panics
    ///
    /// Panics on an unsupported level (use 0.10, 0.05 or 0.01).
    pub fn margin(&self, level: f64) -> f64 {
        kolmogorov_critical(level) - self.scaled
    }
}

/// Result of a two-sample Kolmogorov–Smirnov test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KsTwoSample {
    /// The statistic `D_{n,m} = sup |F_a − F_b|`.
    pub statistic: f64,
    /// Size of the first sample.
    pub n: usize,
    /// Size of the second sample.
    pub m: usize,
    /// `sqrt(nm/(n+m)) · D_{n,m}`, the asymptotically pivotal quantity.
    pub scaled: f64,
}

impl KsTwoSample {
    /// Accept the common-distribution hypothesis at roughly the given
    /// significance level (same asymptotic critical values as [`KsResult`]).
    ///
    /// # Panics
    ///
    /// Panics on an unsupported level (use 0.10, 0.05 or 0.01).
    pub fn accepts(&self, level: f64) -> bool {
        self.scaled <= kolmogorov_critical(level)
    }

    /// Signed distance from the acceptance threshold: positive when the
    /// test accepts with room to spare, negative when it rejects.
    ///
    /// # Panics
    ///
    /// Panics on an unsupported level (use 0.10, 0.05 or 0.01).
    pub fn margin(&self, level: f64) -> f64 {
        kolmogorov_critical(level) - self.scaled
    }
}

/// Two-sample KS test: `D = sup_x |F_a(x) − F_b(x)|` over the empirical
/// CDFs of `a` and `b`. Ties (within and across samples) are handled by
/// evaluating both CDFs strictly *after* each distinct value.
///
/// # Panics
///
/// Panics if either sample is empty or contains NaN.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> KsTwoSample {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "KS test needs at least one sample on each side"
    );
    let sort = |s: &[f64]| {
        let mut v = s.to_vec();
        v.sort_by(|x, y| x.partial_cmp(y).expect("non-NaN samples"));
        v
    };
    let (sa, sb) = (sort(a), sort(b));
    let (n, m) = (sa.len(), sb.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < n || j < m {
        let x = match (sa.get(i), sb.get(j)) {
            (Some(&xa), Some(&xb)) => xa.min(xb),
            (Some(&xa), None) => xa,
            (None, Some(&xb)) => xb,
            (None, None) => unreachable!(),
        };
        while i < n && sa[i] <= x {
            i += 1;
        }
        while j < m && sb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / n as f64 - j as f64 / m as f64).abs());
    }
    KsTwoSample {
        statistic: d,
        n,
        m,
        scaled: ((n * m) as f64 / (n + m) as f64).sqrt() * d,
    }
}

/// KS test of `samples` against `Exp(rate)` (CDF `1 − exp(−rate·t)`).
///
/// # Panics
///
/// Panics if `samples` is empty, `rate` is not positive, or any sample is
/// negative.
pub fn ks_exponential(samples: &[f64], rate: f64) -> KsResult {
    assert!(!samples.is_empty(), "KS test needs at least one sample");
    assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN samples"));
    assert!(sorted[0] >= 0.0, "waiting times must be non-negative");
    let n = sorted.len();
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = 1.0 - (-rate * x).exp();
        let lo = i as f64 / n as f64;
        let hi = (i + 1) as f64 / n as f64;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    KsResult {
        statistic: d,
        n,
        scaled: (n as f64).sqrt() * d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic exponential "samples" via inverse-CDF on a uniform grid
    /// (the best-case empirical distribution).
    fn ideal_exponential(rate: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                -(1.0 - u).ln() / rate
            })
            .collect()
    }

    #[test]
    fn ideal_exponential_accepted() {
        let samples = ideal_exponential(2.0, 1000);
        let r = ks_exponential(&samples, 2.0);
        assert!(r.statistic < 0.01, "statistic {}", r.statistic);
        assert!(r.accepts(0.05));
        assert!(r.accepts(0.01));
    }

    #[test]
    fn wrong_rate_rejected() {
        let samples = ideal_exponential(2.0, 1000);
        let r = ks_exponential(&samples, 4.0);
        assert!(!r.accepts(0.05), "scaled {}", r.scaled);
    }

    #[test]
    fn uniform_samples_rejected() {
        let samples: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        let r = ks_exponential(&samples, 1.0);
        assert!(!r.accepts(0.10));
    }

    #[test]
    fn statistic_bounded_by_one() {
        let samples = vec![1e6; 50];
        let r = ks_exponential(&samples, 1.0);
        assert!(r.statistic <= 1.0);
        assert_eq!(r.n, 50);
    }

    #[test]
    #[should_panic(expected = "unsupported significance")]
    fn bad_level_panics() {
        let r = ks_exponential(&[1.0], 1.0);
        r.accepts(0.2);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_panic() {
        ks_exponential(&[], 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sample_panics() {
        ks_exponential(&[-0.5], 1.0);
    }

    /// Reference vector: a single sample at the exponential median has
    /// F(x) = 1/2, so D = max(1/2 − 0, 1 − 1/2) = 1/2 exactly.
    #[test]
    fn one_sample_reference_vector() {
        let r = ks_exponential(&[std::f64::consts::LN_2], 1.0);
        assert!((r.statistic - 0.5).abs() < 1e-12, "D = {}", r.statistic);
    }

    /// Uniform grid vs. the same grid shifted by exactly 0.2: both CDFs are
    /// staircases with the same step positions offset by 0.2, so
    /// D = 0.2 exactly — the analytic sup-distance between U(0,1) and
    /// U(0.2, 1.2) restricted to matching grids.
    #[test]
    fn two_sample_uniform_vs_shifted_uniform() {
        let n = 100;
        // b is a shifted by exactly 20 grid steps (0.2), computed with the
        // same formula so overlapping points tie bit-for-bit.
        let a: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 + 20.5) / n as f64).collect();
        let r = ks_two_sample(&a, &b);
        assert!((r.statistic - 0.2).abs() < 1e-12, "D = {}", r.statistic);
        assert_eq!((r.n, r.m), (100, 100));
        // sqrt(100·100/200)·0.2 = sqrt(50)·0.2 ≈ 1.414 > 1.358: rejected at
        // 0.05, accepted at 0.01.
        assert!(!r.accepts(0.05));
        assert!(r.accepts(0.01));
    }

    /// Hand-computed reference vector with unequal sizes and interleaving.
    #[test]
    fn two_sample_reference_vector() {
        // a = {1,2,3}, b = {2.5, 3.5}: the sup is reached just after 2,
        // where F_a = 2/3 and F_b = 0.
        let r = ks_two_sample(&[1.0, 2.0, 3.0], &[2.5, 3.5]);
        assert!(
            (r.statistic - 2.0 / 3.0).abs() < 1e-12,
            "D = {}",
            r.statistic
        );
    }

    #[test]
    fn two_sample_extremes() {
        // Disjoint supports: D = 1. Identical samples: D = 0.
        assert_eq!(ks_two_sample(&[1.0, 2.0], &[5.0, 6.0]).statistic, 1.0);
        assert_eq!(ks_two_sample(&[1.0, 2.0], &[1.0, 2.0]).statistic, 0.0);
    }

    /// Exact small-n null distribution: for n = m = 2 distinct values, the
    /// 6 equally likely interleavings give D = 1 twice (aabb, bbaa) and
    /// D = 1/2 four times — so the exact critical value at level 1/3 is 1.
    #[test]
    fn two_sample_exact_small_n_distribution() {
        let vals = [1.0, 2.0, 3.0, 4.0];
        let mut counts = [0usize; 2]; // [D = 1/2, D = 1]
                                      // Choose which two positions of the pooled order belong to `a`.
        for i in 0..4 {
            for j in (i + 1)..4 {
                let a = [vals[i], vals[j]];
                let b: Vec<f64> = (0..4)
                    .filter(|&k| k != i && k != j)
                    .map(|k| vals[k])
                    .collect();
                let d = ks_two_sample(&a, &b).statistic;
                if (d - 1.0).abs() < 1e-12 {
                    counts[1] += 1;
                } else if (d - 0.5).abs() < 1e-12 {
                    counts[0] += 1;
                } else {
                    panic!("impossible D = {d} for n = m = 2");
                }
            }
        }
        assert_eq!(counts, [4, 2], "exact null distribution of D for n=m=2");
    }

    #[test]
    fn two_sample_handles_ties_across_samples() {
        // All mass tied: the CDFs agree after every distinct value.
        let r = ks_two_sample(&[1.0, 1.0, 2.0], &[1.0, 2.0, 2.0]);
        assert!(
            (r.statistic - 1.0 / 3.0).abs() < 1e-12,
            "D = {}",
            r.statistic
        );
    }

    #[test]
    #[should_panic(expected = "each side")]
    fn two_sample_empty_panics() {
        ks_two_sample(&[1.0], &[]);
    }

    mod prop {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            // The two-sample statistic is symmetric in its arguments —
            // |F_a − F_b| = |F_b − F_a| at every evaluation point.
            #[test]
            fn two_sample_statistic_is_symmetric(
                a in proptest::collection::vec(-1e6f64..1e6, 1..40),
                b in proptest::collection::vec(-1e6f64..1e6, 1..40),
            ) {
                let fwd = ks_two_sample(&a, &b);
                let rev = ks_two_sample(&b, &a);
                prop_assert_eq!(fwd.statistic, rev.statistic);
                prop_assert_eq!(fwd.scaled, rev.scaled);
                prop_assert_eq!((fwd.n, fwd.m), (rev.m, rev.n));
            }

            // D is a probability-scale distance: always within [0, 1].
            #[test]
            fn two_sample_statistic_in_unit_interval(
                a in proptest::collection::vec(-1e6f64..1e6, 1..40),
                b in proptest::collection::vec(-1e6f64..1e6, 1..40),
            ) {
                let d = ks_two_sample(&a, &b).statistic;
                prop_assert!((0.0..=1.0).contains(&d));
            }
        }
    }
}
