//! Kolmogorov–Smirnov test against the exponential distribution.
//!
//! Segers' first correctness criterion (paper §6): "the waiting time for a
//! reaction of type i has an exponential probability distribution
//! exp(−k_i t)". `psr-dmc` records empirical waiting times; this test
//! decides whether they are consistent with `Exp(rate)`.

/// Result of a Kolmogorov–Smirnov test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KsResult {
    /// The KS statistic `D_n = sup |F_emp − F|`.
    pub statistic: f64,
    /// Sample size.
    pub n: usize,
    /// `sqrt(n) · D_n`, the asymptotically pivotal quantity.
    pub scaled: f64,
}

impl KsResult {
    /// Accept the exponential hypothesis at roughly the given significance
    /// level using the asymptotic Kolmogorov distribution critical values.
    ///
    /// Supported levels: 0.10 (c=1.224), 0.05 (c=1.358), 0.01 (c=1.628).
    ///
    /// # Panics
    ///
    /// Panics on an unsupported level.
    pub fn accepts(&self, level: f64) -> bool {
        let critical = if (level - 0.10).abs() < 1e-9 {
            1.224
        } else if (level - 0.05).abs() < 1e-9 {
            1.358
        } else if (level - 0.01).abs() < 1e-9 {
            1.628
        } else {
            panic!("unsupported significance level {level}; use 0.10, 0.05 or 0.01")
        };
        self.scaled <= critical
    }
}

/// KS test of `samples` against `Exp(rate)` (CDF `1 − exp(−rate·t)`).
///
/// # Panics
///
/// Panics if `samples` is empty, `rate` is not positive, or any sample is
/// negative.
pub fn ks_exponential(samples: &[f64], rate: f64) -> KsResult {
    assert!(!samples.is_empty(), "KS test needs at least one sample");
    assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN samples"));
    assert!(sorted[0] >= 0.0, "waiting times must be non-negative");
    let n = sorted.len();
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = 1.0 - (-rate * x).exp();
        let lo = i as f64 / n as f64;
        let hi = (i + 1) as f64 / n as f64;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    KsResult {
        statistic: d,
        n,
        scaled: (n as f64).sqrt() * d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic exponential "samples" via inverse-CDF on a uniform grid
    /// (the best-case empirical distribution).
    fn ideal_exponential(rate: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                -(1.0 - u).ln() / rate
            })
            .collect()
    }

    #[test]
    fn ideal_exponential_accepted() {
        let samples = ideal_exponential(2.0, 1000);
        let r = ks_exponential(&samples, 2.0);
        assert!(r.statistic < 0.01, "statistic {}", r.statistic);
        assert!(r.accepts(0.05));
        assert!(r.accepts(0.01));
    }

    #[test]
    fn wrong_rate_rejected() {
        let samples = ideal_exponential(2.0, 1000);
        let r = ks_exponential(&samples, 4.0);
        assert!(!r.accepts(0.05), "scaled {}", r.scaled);
    }

    #[test]
    fn uniform_samples_rejected() {
        let samples: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        let r = ks_exponential(&samples, 1.0);
        assert!(!r.accepts(0.10));
    }

    #[test]
    fn statistic_bounded_by_one() {
        let samples = vec![1e6; 50];
        let r = ks_exponential(&samples, 1.0);
        assert!(r.statistic <= 1.0);
        assert_eq!(r.n, 50);
    }

    #[test]
    #[should_panic(expected = "unsupported significance")]
    fn bad_level_panics() {
        let r = ks_exponential(&[1.0], 1.0);
        r.accepts(0.2);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_panic() {
        ks_exponential(&[], 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sample_panics() {
        ks_exponential(&[-0.5], 1.0);
    }
}
