//! Chi-square goodness-of-fit test.
//!
//! Segers' second correctness criterion (paper §6) asks that reaction types
//! fire with frequencies proportional to their rates; this module turns the
//! observed type counts into a chi-square verdict against the expected
//! proportions. The validation harness also uses it to pin empirical state
//! distributions against Master-Equation probabilities.

/// Error function, Abramowitz & Stegun 7.1.26 (|ε| < 1.5·10⁻⁷).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal CDF `Φ(z)`.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Result of a chi-square goodness-of-fit test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChiSquare {
    /// The statistic `Σ (observed − expected)² / expected`.
    pub statistic: f64,
    /// Degrees of freedom (`categories − 1`).
    pub df: usize,
    /// Upper-tail probability via the Wilson–Hilferty cube-root
    /// approximation (accurate to ~10⁻² at df = 1, better above).
    pub p_value: f64,
}

impl ChiSquare {
    /// Accept the hypothesised proportions at significance `alpha`
    /// (`p_value >= alpha`).
    pub fn accepts(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// Wilson–Hilferty upper-tail probability for a chi-square statistic.
fn chi_square_p(statistic: f64, df: usize) -> f64 {
    let k = df as f64;
    let c = 2.0 / (9.0 * k);
    let z = ((statistic / k).cbrt() - (1.0 - c)) / c.sqrt();
    1.0 - normal_cdf(z)
}

/// Chi-square test of observed counts against expected counts.
///
/// `expected` carries the hypothesised *counts* (caller scales proportions
/// by the total); categories with tiny expectations should be merged by the
/// caller before testing.
///
/// # Panics
///
/// Panics if the slices differ in length, have fewer than two categories,
/// or any expected count is not strictly positive.
pub fn chi_square_counts(observed: &[u64], expected: &[f64]) -> ChiSquare {
    assert_eq!(
        observed.len(),
        expected.len(),
        "observed/expected length mismatch"
    );
    assert!(observed.len() >= 2, "need at least two categories");
    let mut statistic = 0.0;
    for (&o, &e) in observed.iter().zip(expected) {
        assert!(e > 0.0 && e.is_finite(), "expected counts must be positive");
        let d = o as f64 - e;
        statistic += d * d / e;
    }
    let df = observed.len() - 1;
    ChiSquare {
        statistic,
        df,
        p_value: chi_square_p(statistic, df),
    }
}

/// Chi-square test of observed counts against expected *proportions*
/// (normalised internally and scaled by the observed total).
///
/// # Panics
///
/// As [`chi_square_counts`]; additionally panics if the proportions sum to
/// zero or the observed total is zero.
pub fn chi_square_proportions(observed: &[u64], proportions: &[f64]) -> ChiSquare {
    let total: u64 = observed.iter().sum();
    assert!(total > 0, "need at least one observation");
    let norm: f64 = proportions.iter().sum();
    assert!(norm > 0.0, "proportions must not sum to zero");
    let expected: Vec<f64> = proportions
        .iter()
        .map(|p| p / norm * total as f64)
        .collect();
    chi_square_counts(observed, &expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistic_matches_hand_computation() {
        // observed (8, 12) vs expected (10, 10): (4 + 4)/10 = 0.8.
        let r = chi_square_counts(&[8, 12], &[10.0, 10.0]);
        assert!((r.statistic - 0.8).abs() < 1e-12);
        assert_eq!(r.df, 1);
    }

    #[test]
    fn p_values_match_tabulated_quantiles() {
        // Classic table entries: (df, critical value, tail probability).
        for &(df, x, p) in &[
            (1, 3.841, 0.05),
            (5, 11.070, 0.05),
            (10, 23.209, 0.01),
            (3, 6.251, 0.10),
        ] {
            let approx = chi_square_p(x, df);
            assert!(
                (approx - p).abs() < 0.01,
                "df {df}: p({x}) = {approx}, table {p}"
            );
        }
    }

    #[test]
    fn perfect_agreement_accepted() {
        let r = chi_square_proportions(&[100, 200, 300], &[1.0, 2.0, 3.0]);
        assert!(r.statistic < 1e-12);
        assert!(r.p_value > 0.99);
        assert!(r.accepts(0.05));
    }

    #[test]
    fn gross_disagreement_rejected() {
        let r = chi_square_proportions(&[300, 200, 100], &[1.0, 2.0, 3.0]);
        assert!(!r.accepts(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.6449) - 0.95).abs() < 1e-4);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_expected_panics() {
        chi_square_counts(&[1, 2], &[0.0, 3.0]);
    }
}
