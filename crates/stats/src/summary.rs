//! Running mean/variance (Welford's algorithm).

/// Numerically stable running summary statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Unbiased sample variance (`None` with fewer than 2 observations).
    pub fn variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> Option<f64> {
        self.stddev().map(|s| s / (self.n as f64).sqrt())
    }

    /// Minimum observation.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observation.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another summary into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.mean(), Some(5.0));
        // Sample variance of this classic dataset is 32/7.
        assert!((s.variance().expect("var") - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn empty_summary_is_none() {
        let s = Summary::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn single_observation_has_no_variance() {
        let mut s = Summary::new();
        s.add(3.0);
        assert_eq!(s.mean(), Some(3.0));
        assert_eq!(s.variance(), None);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.add(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &data[..37] {
            left.add(x);
        }
        for &x in &data[37..] {
            right.add(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean().expect("m") - whole.mean().expect("m")).abs() < 1e-10);
        assert!((left.variance().expect("v") - whole.variance().expect("v")).abs() < 1e-10);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::new();
        a.add(1.0);
        a.add(2.0);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
