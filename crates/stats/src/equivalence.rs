//! TOST-style equivalence testing: "agree within ε", not just "differ".
//!
//! A plain significance test can only ever *fail to detect* a difference —
//! with few replicas everything "passes". The validation harness instead
//! demands positive evidence of agreement: the two one-sided tests (TOST)
//! procedure declares two ensembles equivalent on an observable only when
//! the (1 − 2α) confidence interval of the mean difference lies entirely
//! inside the equivalence margin `(−ε, ε)`.

use crate::chi2::normal_cdf;

/// Outcome of an equivalence test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The CI of the difference lies inside `(−ε, ε)`: agreement shown.
    Equivalent,
    /// The CI lies entirely outside `[−ε, ε]`: a real difference larger
    /// than the margin.
    Different,
    /// The CI straddles a margin boundary: too few replicas to decide.
    Inconclusive,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Verdict::Equivalent => "equivalent",
            Verdict::Different => "different",
            Verdict::Inconclusive => "inconclusive",
        })
    }
}

/// Result of a TOST mean-difference equivalence test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EquivalenceResult {
    /// `mean(a) − mean(b)`.
    pub diff: f64,
    /// Welch standard error of the difference.
    pub se: f64,
    /// Lower end of the (1 − 2α) CI of the difference.
    pub ci_lo: f64,
    /// Upper end of the (1 − 2α) CI of the difference.
    pub ci_hi: f64,
    /// The equivalence margin ε.
    pub margin: f64,
    /// The verdict.
    pub verdict: Verdict,
}

/// One-sided standard normal critical value for the supported alphas.
fn z_one_sided(alpha: f64) -> f64 {
    let z = if (alpha - 0.10).abs() < 1e-9 {
        1.2816
    } else if (alpha - 0.05).abs() < 1e-9 {
        1.6449
    } else if (alpha - 0.025).abs() < 1e-9 {
        1.9600
    } else if (alpha - 0.01).abs() < 1e-9 {
        2.3263
    } else {
        panic!("unsupported alpha {alpha}; use 0.10, 0.05, 0.025 or 0.01")
    };
    debug_assert!((normal_cdf(z) - (1.0 - alpha)).abs() < 1e-3);
    z
}

fn mean_var(s: &[f64]) -> (f64, f64) {
    let n = s.len() as f64;
    let mean = s.iter().sum::<f64>() / n;
    let var = s.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    (mean, var)
}

/// TOST equivalence test on the difference of means of two ensembles,
/// using the normal approximation with the Welch standard error (replica
/// counts in the harness are large enough that t-quantiles change nothing
/// at the margins we gate on).
///
/// # Panics
///
/// Panics if either sample has fewer than two points, `margin` is not
/// positive, or `alpha` is unsupported (use 0.10, 0.05, 0.025 or 0.01).
pub fn tost_mean_difference(a: &[f64], b: &[f64], margin: f64, alpha: f64) -> EquivalenceResult {
    assert!(
        a.len() >= 2 && b.len() >= 2,
        "equivalence test needs at least two replicas per side"
    );
    assert!(
        margin > 0.0 && margin.is_finite(),
        "margin must be positive"
    );
    let z = z_one_sided(alpha);
    let (ma, va) = mean_var(a);
    let (mb, vb) = mean_var(b);
    let diff = ma - mb;
    let se = (va / a.len() as f64 + vb / b.len() as f64).sqrt();
    let (ci_lo, ci_hi) = (diff - z * se, diff + z * se);
    let verdict = if ci_lo > -margin && ci_hi < margin {
        Verdict::Equivalent
    } else if ci_lo > margin || ci_hi < -margin {
        Verdict::Different
    } else {
        Verdict::Inconclusive
    };
    EquivalenceResult {
        diff,
        se,
        ci_lo,
        ci_hi,
        margin,
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constantish(center: f64, n: usize) -> Vec<f64> {
        // Tiny symmetric jitter so the sample variance is non-degenerate.
        (0..n)
            .map(|i| center + 1e-3 * ((i % 2) as f64 * 2.0 - 1.0))
            .collect()
    }

    #[test]
    fn close_means_equivalent() {
        let r = tost_mean_difference(&constantish(0.500, 20), &constantish(0.502, 20), 0.01, 0.05);
        assert_eq!(r.verdict, Verdict::Equivalent);
        assert!(r.ci_lo > -0.01 && r.ci_hi < 0.01);
    }

    #[test]
    fn far_means_different() {
        let r = tost_mean_difference(&constantish(0.50, 20), &constantish(0.60, 20), 0.01, 0.05);
        assert_eq!(r.verdict, Verdict::Different);
        assert!((r.diff - (-0.1)).abs() < 1e-6);
    }

    #[test]
    fn noisy_small_samples_inconclusive() {
        // Two replicas with spread comparable to the margin: the CI cannot
        // resolve either way.
        let r = tost_mean_difference(&[0.40, 0.60], &[0.45, 0.55], 0.02, 0.05);
        assert_eq!(r.verdict, Verdict::Inconclusive);
    }

    #[test]
    fn identical_constant_samples_equivalent() {
        let r = tost_mean_difference(&[0.5, 0.5, 0.5], &[0.5, 0.5, 0.5], 0.01, 0.05);
        assert_eq!(r.se, 0.0);
        assert_eq!(r.verdict, Verdict::Equivalent);
    }

    #[test]
    #[should_panic(expected = "two replicas")]
    fn single_replica_panics() {
        tost_mean_difference(&[0.5], &[0.5, 0.6], 0.01, 0.05);
    }

    #[test]
    #[should_panic(expected = "unsupported alpha")]
    fn bad_alpha_panics() {
        tost_mean_difference(&[0.5, 0.6], &[0.5, 0.6], 0.01, 0.2);
    }
}
