//! Terminal line plots.
//!
//! The `repro_*` binaries print coverage-vs-time curves so figure shapes can
//! be inspected without leaving the terminal. Multiple series are drawn into
//! one character grid, later series overwriting earlier ones.

use crate::timeseries::TimeSeries;

/// Render `series` (each with a one-character glyph) into a `width × height`
/// character plot with simple axes.
///
/// Returns an empty string if no series contains data.
pub fn plot(series: &[(&TimeSeries, char)], width: usize, height: usize) -> String {
    assert!(width >= 10 && height >= 3, "plot must be at least 10x3");
    let non_empty: Vec<&(&TimeSeries, char)> =
        series.iter().filter(|(s, _)| !s.is_empty()).collect();
    if non_empty.is_empty() {
        return String::new();
    }
    let t0 = non_empty
        .iter()
        .map(|(s, _)| s.start().expect("non-empty"))
        .fold(f64::INFINITY, f64::min);
    let t1 = non_empty
        .iter()
        .map(|(s, _)| s.end().expect("non-empty"))
        .fold(f64::NEG_INFINITY, f64::max);
    let mut v0 = f64::INFINITY;
    let mut v1 = f64::NEG_INFINITY;
    for (s, _) in &non_empty {
        let (lo, hi) = s.value_range().expect("non-empty");
        v0 = v0.min(lo);
        v1 = v1.max(hi);
    }
    if t1 <= t0 {
        return String::new();
    }
    if v1 <= v0 {
        v1 = v0 + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (s, glyph) in &non_empty {
        for (col, t) in (0..width).map(|c| (c, t0 + (t1 - t0) * c as f64 / (width - 1) as f64)) {
            let v = s.interpolate(t);
            let frac = (v - v0) / (v1 - v0);
            let row = ((1.0 - frac) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col] = *glyph;
        }
    }

    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{v1:8.3} |")
        } else if i == height - 1 {
            format!("{v0:8.3} |")
        } else {
            "         |".to_string()
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "          {}\n          t = {t0:.2} .. {t1:.2}\n",
        "-".repeat(width)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plot_contains_glyphs_and_axes() {
        let s = TimeSeries::from_points(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 0.0]);
        let p = plot(&[(&s, '*')], 40, 10);
        assert!(p.contains('*'));
        assert!(p.contains('|'));
        assert!(p.contains("t = 0.00 .. 2.00"));
        assert_eq!(p.lines().count(), 12);
    }

    #[test]
    fn empty_series_yields_empty_plot() {
        let s = TimeSeries::new();
        assert!(plot(&[(&s, '*')], 40, 10).is_empty());
    }

    #[test]
    fn two_series_both_drawn() {
        let a = TimeSeries::from_points(vec![0.0, 1.0], vec![0.0, 0.0]);
        let b = TimeSeries::from_points(vec![0.0, 1.0], vec![1.0, 1.0]);
        let p = plot(&[(&a, 'a'), (&b, 'b')], 20, 5);
        assert!(p.contains('a'));
        assert!(p.contains('b'));
    }

    #[test]
    fn constant_series_does_not_crash() {
        let s = TimeSeries::from_points(vec![0.0, 1.0], vec![0.5, 0.5]);
        let p = plot(&[(&s, 'c')], 20, 5);
        assert!(p.contains('c'));
    }

    #[test]
    #[should_panic(expected = "at least 10x3")]
    fn tiny_plot_panics() {
        let s = TimeSeries::from_points(vec![0.0, 1.0], vec![0.0, 1.0]);
        plot(&[(&s, '*')], 5, 2);
    }
}
