//! Oscillation detection: peaks, period and amplitude.
//!
//! The §6 experiments hinge on whether coverage oscillations *survive* a
//! given algorithm/parameter combination ("for very large values of L, the
//! oscillations disappear" — Fig 9/10 discussion). We quantify that with a
//! robust peak detector on a moving-average-smoothed series.

use crate::timeseries::TimeSeries;

/// A detected oscillation pattern.
#[derive(Clone, Debug, PartialEq)]
pub struct OscillationSummary {
    /// Times of detected maxima.
    pub peak_times: Vec<f64>,
    /// Mean peak-to-peak interval (`None` with fewer than 2 peaks).
    pub period: Option<f64>,
    /// Mean peak height minus mean trough depth (`None` without both).
    pub amplitude: Option<f64>,
}

impl OscillationSummary {
    /// True if the series shows at least `min_peaks` peaks with amplitude at
    /// least `min_amplitude`.
    pub fn is_oscillating(&self, min_peaks: usize, min_amplitude: f64) -> bool {
        self.peak_times.len() >= min_peaks && self.amplitude.is_some_and(|a| a >= min_amplitude)
    }
}

/// Moving-average smoothing with window `2*half + 1`.
fn smooth(values: &[f64], half: usize) -> Vec<f64> {
    let n = values.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let sum: f64 = values[lo..hi].iter().sum();
        out.push(sum / (hi - lo) as f64);
    }
    out
}

/// Detect oscillation peaks and troughs.
///
/// `smoothing_half` is the half-width of the moving-average window (0 = no
/// smoothing). `min_prominence` filters out noise: an extremum only counts
/// when the series has moved at least this far since the previous counted
/// extremum (a standard alternating max/min hysteresis scan).
pub fn detect_peaks(
    series: &TimeSeries,
    smoothing_half: usize,
    min_prominence: f64,
) -> OscillationSummary {
    assert!(min_prominence >= 0.0, "min_prominence must be non-negative");
    let n = series.len();
    if n < 3 {
        return OscillationSummary {
            peak_times: Vec::new(),
            period: None,
            amplitude: None,
        };
    }
    let values = smooth(series.values(), smoothing_half);
    let times = series.times();

    // Hysteresis scan: track the running extremum; when the signal retreats
    // from it by min_prominence, commit the extremum and switch direction.
    let mut peaks: Vec<(f64, f64)> = Vec::new(); // (time, height)
    let mut troughs: Vec<(f64, f64)> = Vec::new();
    let mut looking_for_max = true;
    let mut ext_val = values[0];
    let mut ext_time = times[0];
    for i in 1..n {
        let v = values[i];
        if looking_for_max {
            if v > ext_val {
                ext_val = v;
                ext_time = times[i];
            } else if ext_val - v >= min_prominence {
                peaks.push((ext_time, ext_val));
                looking_for_max = false;
                ext_val = v;
                ext_time = times[i];
            }
        } else if v < ext_val {
            ext_val = v;
            ext_time = times[i];
        } else if v - ext_val >= min_prominence {
            troughs.push((ext_time, ext_val));
            looking_for_max = true;
            ext_val = v;
            ext_time = times[i];
        }
    }

    let peak_times: Vec<f64> = peaks.iter().map(|&(t, _)| t).collect();
    let period = if peak_times.len() >= 2 {
        let total = peak_times.last().expect("non-empty") - peak_times[0];
        Some(total / (peak_times.len() - 1) as f64)
    } else {
        None
    };
    let amplitude = if !peaks.is_empty() && !troughs.is_empty() {
        let mean_peak: f64 = peaks.iter().map(|&(_, v)| v).sum::<f64>() / peaks.len() as f64;
        let mean_trough: f64 = troughs.iter().map(|&(_, v)| v).sum::<f64>() / troughs.len() as f64;
        Some(mean_peak - mean_trough)
    } else {
        None
    };
    OscillationSummary {
        peak_times,
        period,
        amplitude,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(freq: f64, amp: f64, n: usize, dt: f64) -> TimeSeries {
        let times: Vec<f64> = (0..n).map(|i| i as f64 * dt).collect();
        let values = times
            .iter()
            .map(|&t| amp * (2.0 * std::f64::consts::PI * freq * t).sin())
            .collect();
        TimeSeries::from_points(times, values)
    }

    #[test]
    fn sine_period_recovered() {
        // freq 0.5 → period 2.0; 10 periods sampled at dt = 0.01.
        let s = sine(0.5, 1.0, 2000, 0.01);
        let osc = detect_peaks(&s, 0, 0.5);
        let period = osc.period.expect("period detected");
        assert!((period - 2.0).abs() < 0.05, "period {period}");
        assert!(osc.is_oscillating(5, 1.5));
    }

    #[test]
    fn amplitude_recovered() {
        let s = sine(1.0, 0.3, 1000, 0.005);
        let osc = detect_peaks(&s, 0, 0.1);
        let amp = osc.amplitude.expect("amplitude detected");
        // Peak-to-trough of a 0.3-amplitude sine is 0.6.
        assert!((amp - 0.6).abs() < 0.05, "amplitude {amp}");
    }

    #[test]
    fn flat_series_has_no_peaks() {
        let times: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = TimeSeries::from_points(times, vec![0.5; 100]);
        let osc = detect_peaks(&s, 0, 0.01);
        assert!(osc.peak_times.is_empty());
        assert!(!osc.is_oscillating(1, 0.0));
    }

    #[test]
    fn noise_below_prominence_ignored() {
        // Small jitter on a flat line should not register with a larger
        // prominence threshold.
        let times: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let values: Vec<f64> = (0..200).map(|i| 0.5 + 0.01 * ((i % 2) as f64)).collect();
        let s = TimeSeries::from_points(times, values);
        let osc = detect_peaks(&s, 0, 0.1);
        assert!(osc.peak_times.is_empty());
    }

    #[test]
    fn smoothing_suppresses_high_frequency_noise() {
        // Slow sine + fast small wiggle: with smoothing, only the slow
        // peaks are detected.
        let times: Vec<f64> = (0..4000).map(|i| i as f64 * 0.01).collect();
        let values: Vec<f64> = times
            .iter()
            .map(|&t| (0.5 * t).sin() + 0.05 * (40.0 * t).sin())
            .collect();
        let s = TimeSeries::from_points(times, values);
        let osc = detect_peaks(&s, 20, 0.5);
        // 40/(2π) ≈ 3 slow periods in 40 time units → ~3 peaks.
        assert!(
            (2..=4).contains(&osc.peak_times.len()),
            "found {} peaks",
            osc.peak_times.len()
        );
    }

    #[test]
    fn too_short_series_is_quiet() {
        let s = TimeSeries::from_points(vec![0.0, 1.0], vec![0.0, 1.0]);
        let osc = detect_peaks(&s, 0, 0.0);
        assert_eq!(osc.peak_times.len(), 0);
        assert_eq!(osc.period, None);
        assert_eq!(osc.amplitude, None);
    }
}
