//! Sampled time series with interpolation and resampling.

/// A time series: strictly increasing sample times with one value each.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeries {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Build from parallel vectors.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or times are not strictly increasing.
    pub fn from_points(times: Vec<f64>, values: Vec<f64>) -> Self {
        assert_eq!(times.len(), values.len(), "times/values length mismatch");
        for w in times.windows(2) {
            assert!(w[0] < w[1], "times must be strictly increasing");
        }
        TimeSeries { times, values }
    }

    /// Append a sample.
    ///
    /// # Panics
    ///
    /// Panics if `time` does not exceed the last sample time.
    pub fn push(&mut self, time: f64, value: f64) {
        if let Some(&last) = self.times.last() {
            assert!(
                time > last,
                "sample times must be strictly increasing ({time} <= {last})"
            );
        }
        self.times.push(time);
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// First sample time.
    pub fn start(&self) -> Option<f64> {
        self.times.first().copied()
    }

    /// Last sample time.
    pub fn end(&self) -> Option<f64> {
        self.times.last().copied()
    }

    /// Linear interpolation at `t`, clamped to the end values outside the
    /// sampled range.
    ///
    /// # Panics
    ///
    /// Panics on an empty series.
    pub fn interpolate(&self, t: f64) -> f64 {
        assert!(!self.is_empty(), "cannot interpolate an empty series");
        if t <= self.times[0] {
            return self.values[0];
        }
        let n = self.times.len();
        if t >= self.times[n - 1] {
            return self.values[n - 1];
        }
        // partition_point: first index with times[i] > t.
        let hi = self.times.partition_point(|&x| x <= t);
        let lo = hi - 1;
        let (t0, t1) = (self.times[lo], self.times[hi]);
        let (v0, v1) = (self.values[lo], self.values[hi]);
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// Resample onto `n` uniform points over `[t0, t1]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the series is empty, `n < 2`, or `t1 <= t0`.
    pub fn resample(&self, t0: f64, t1: f64, n: usize) -> TimeSeries {
        assert!(n >= 2, "resampling needs at least 2 points");
        assert!(t1 > t0, "resample interval must be non-degenerate");
        let step = (t1 - t0) / (n - 1) as f64;
        let times: Vec<f64> = (0..n).map(|i| t0 + step * i as f64).collect();
        let values = times.iter().map(|&t| self.interpolate(t)).collect();
        TimeSeries { times, values }
    }

    /// Minimum and maximum value.
    pub fn value_range(&self) -> Option<(f64, f64)> {
        if self.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in &self.values {
            min = min.min(v);
            max = max.max(v);
        }
        Some((min, max))
    }

    /// Mean of the values (unweighted by spacing).
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.len() as f64)
        }
    }

    /// The sub-series with `t >= t_min` (used to drop transients before
    /// analysing oscillations).
    pub fn after(&self, t_min: f64) -> TimeSeries {
        let start = self.times.partition_point(|&t| t < t_min);
        TimeSeries {
            times: self.times[start..].to_vec(),
            values: self.values[start..].to_vec(),
        }
    }

    /// Serialise as `time,value` CSV lines (shortest round-trip float
    /// formatting, so `from_csv` reproduces the series bit-for-bit). Used
    /// for committed trajectory fixtures.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.len() * 24);
        for (&t, &v) in self.times.iter().zip(&self.values) {
            out.push_str(&format!("{t:?},{v:?}\n"));
        }
        out
    }

    /// Parse the `time,value` CSV produced by [`TimeSeries::to_csv`].
    /// Blank lines and lines starting with `#` are skipped.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line; construction
    /// panics from non-increasing times are reported as errors too.
    pub fn from_csv(text: &str) -> Result<TimeSeries, String> {
        let mut times = Vec::new();
        let mut values = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (t, v) = line
                .split_once(',')
                .ok_or_else(|| format!("line {}: expected `time,value`", lineno + 1))?;
            let t: f64 = t
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad time: {e}", lineno + 1))?;
            let v: f64 = v
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad value: {e}", lineno + 1))?;
            if let Some(&last) = times.last() {
                if t <= last {
                    return Err(format!(
                        "line {}: times must be strictly increasing ({t} <= {last})",
                        lineno + 1
                    ));
                }
            }
            times.push(t);
            values.push(v);
        }
        Ok(TimeSeries { times, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> TimeSeries {
        TimeSeries::from_points(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 20.0])
    }

    #[test]
    fn interpolation_is_linear() {
        let s = ramp();
        assert_eq!(s.interpolate(0.5), 5.0);
        assert_eq!(s.interpolate(1.5), 15.0);
        assert_eq!(s.interpolate(1.0), 10.0);
    }

    #[test]
    fn interpolation_clamps_outside_range() {
        let s = ramp();
        assert_eq!(s.interpolate(-1.0), 0.0);
        assert_eq!(s.interpolate(5.0), 20.0);
    }

    #[test]
    fn resample_uniform_grid() {
        let s = ramp();
        let r = s.resample(0.0, 2.0, 5);
        assert_eq!(r.len(), 5);
        assert_eq!(r.times(), &[0.0, 0.5, 1.0, 1.5, 2.0]);
        assert_eq!(r.values(), &[0.0, 5.0, 10.0, 15.0, 20.0]);
    }

    #[test]
    fn push_appends_in_order() {
        let mut s = TimeSeries::new();
        s.push(0.0, 1.0);
        s.push(0.5, 2.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.end(), Some(0.5));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn push_out_of_order_panics() {
        let mut s = TimeSeries::new();
        s.push(1.0, 0.0);
        s.push(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_points_unsorted_panics() {
        TimeSeries::from_points(vec![0.0, 0.0], vec![1.0, 2.0]);
    }

    #[test]
    fn value_range_and_mean() {
        let s = ramp();
        assert_eq!(s.value_range(), Some((0.0, 20.0)));
        assert_eq!(s.mean(), Some(10.0));
        assert_eq!(TimeSeries::new().value_range(), None);
        assert_eq!(TimeSeries::new().mean(), None);
    }

    #[test]
    fn after_drops_transient() {
        let s = ramp();
        let tail = s.after(0.5);
        assert_eq!(tail.times(), &[1.0, 2.0]);
        let all = s.after(-1.0);
        assert_eq!(all.len(), 3);
        let none = s.after(10.0);
        assert!(none.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn interpolate_empty_panics() {
        TimeSeries::new().interpolate(0.0);
    }

    #[test]
    fn csv_round_trips_bit_for_bit() {
        let s = TimeSeries::from_points(
            vec![0.1, 0.2 + 1e-16, std::f64::consts::PI],
            vec![1.0 / 3.0, -0.0, 2e-308],
        );
        let back = TimeSeries::from_csv(&s.to_csv()).unwrap();
        assert_eq!(s.times().len(), back.times().len());
        for (a, b) in s.times().iter().zip(back.times()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in s.values().iter().zip(back.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn csv_skips_comments_and_rejects_garbage() {
        let s = TimeSeries::from_csv("# header\n0.0,1.0\n\n1.0,2.0\n").unwrap();
        assert_eq!(s.len(), 2);
        assert!(TimeSeries::from_csv("0.0;1.0\n").is_err());
        assert!(TimeSeries::from_csv("1.0,0.0\n0.5,0.0\n").is_err());
    }
}
