//! Deviation metrics between two kinetics curves.
//!
//! Figs 8–10 of the paper overlay RSM and L-PNDCA coverage curves; the
//! quantitative statement behind "gives almost the same results" is a small
//! deviation between the curves over the common time window. Both series are
//! resampled onto a shared uniform grid first, since RSM (event-driven) and
//! PNDCA (step-driven) sample at different times.

use crate::timeseries::TimeSeries;

fn common_grid(a: &TimeSeries, b: &TimeSeries, n: usize) -> Option<(TimeSeries, TimeSeries)> {
    let t0 = a.start()?.max(b.start()?);
    let t1 = a.end()?.min(b.end()?);
    if t1 <= t0 {
        return None;
    }
    Some((a.resample(t0, t1, n), b.resample(t0, t1, n)))
}

/// Root-mean-square deviation between two curves over their common time
/// window, resampled to `n` points. Returns `None` if the windows do not
/// overlap or a series is empty.
pub fn rms_deviation(a: &TimeSeries, b: &TimeSeries, n: usize) -> Option<f64> {
    let (ra, rb) = common_grid(a, b, n)?;
    let sum: f64 = ra
        .values()
        .iter()
        .zip(rb.values())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum();
    Some((sum / n as f64).sqrt())
}

/// Maximum absolute deviation over the common window.
pub fn linf_deviation(a: &TimeSeries, b: &TimeSeries, n: usize) -> Option<f64> {
    let (ra, rb) = common_grid(a, b, n)?;
    ra.values()
        .iter()
        .zip(rb.values())
        .map(|(&x, &y)| (x - y).abs())
        .fold(None, |acc, d| Some(acc.map_or(d, |m: f64| m.max(d))))
}

/// Mean absolute deviation over the common window.
pub fn mae_deviation(a: &TimeSeries, b: &TimeSeries, n: usize) -> Option<f64> {
    let (ra, rb) = common_grid(a, b, n)?;
    let sum: f64 = ra
        .values()
        .iter()
        .zip(rb.values())
        .map(|(&x, &y)| (x - y).abs())
        .sum();
    Some(sum / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(offset: f64) -> TimeSeries {
        let times: Vec<f64> = (0..101).map(|i| i as f64 * 0.1).collect();
        let values = times.iter().map(|&t| (t).sin() + offset).collect();
        TimeSeries::from_points(times, values)
    }

    #[test]
    fn identical_series_deviate_zero() {
        let a = series(0.0);
        assert_eq!(rms_deviation(&a, &a, 100), Some(0.0));
        assert_eq!(linf_deviation(&a, &a, 100), Some(0.0));
        assert_eq!(mae_deviation(&a, &a, 100), Some(0.0));
    }

    #[test]
    fn constant_offset_detected_exactly() {
        let a = series(0.0);
        let b = series(0.25);
        let rms = rms_deviation(&a, &b, 200).expect("overlap");
        let linf = linf_deviation(&a, &b, 200).expect("overlap");
        let mae = mae_deviation(&a, &b, 200).expect("overlap");
        assert!((rms - 0.25).abs() < 1e-9);
        assert!((linf - 0.25).abs() < 1e-9);
        assert!((mae - 0.25).abs() < 1e-9);
    }

    #[test]
    fn non_overlapping_windows_return_none() {
        let a = TimeSeries::from_points(vec![0.0, 1.0], vec![0.0, 0.0]);
        let b = TimeSeries::from_points(vec![2.0, 3.0], vec![0.0, 0.0]);
        assert_eq!(rms_deviation(&a, &b, 10), None);
    }

    #[test]
    fn empty_series_returns_none() {
        let a = TimeSeries::new();
        let b = series(0.0);
        assert_eq!(rms_deviation(&a, &b, 10), None);
    }

    #[test]
    fn different_sampling_grids_compare_fine() {
        // Same underlying function sampled at different times should show
        // only interpolation error.
        let coarse_times: Vec<f64> = (0..26).map(|i| i as f64 * 0.4).collect();
        let coarse = TimeSeries::from_points(
            coarse_times.clone(),
            coarse_times.iter().map(|&t| t * 2.0).collect(),
        );
        let fine_times: Vec<f64> = (0..101).map(|i| i as f64 * 0.1).collect();
        let fine = TimeSeries::from_points(
            fine_times.clone(),
            fine_times.iter().map(|&t| t * 2.0).collect(),
        );
        let rms = rms_deviation(&coarse, &fine, 100).expect("overlap");
        assert!(rms < 1e-9, "linear data interpolates exactly, got {rms}");
    }
}
