//! Statistics for simulation output analysis.
//!
//! The paper's evaluation compares algorithms through their *kinetics*:
//! coverage-vs-time curves (Figs 8–10), deviation between RSM and L-PNDCA,
//! preservation of oscillations, and the Segers correctness criteria
//! (exponential waiting times). This crate provides the measurement side:
//!
//! - [`TimeSeries`] — sampled observables with resampling/interpolation;
//! - [`compare`] — L2/L∞/MAE deviation between curves on a common grid;
//! - [`oscillation`] — peak detection, period and amplitude estimation;
//! - [`ks`] — Kolmogorov–Smirnov tests: one-sample against an exponential
//!   distribution (criterion 1 of Segers, paper §6) and two-sample between
//!   replica ensembles;
//! - [`chi2`] — chi-square goodness-of-fit (criterion 2 of Segers);
//! - [`equivalence`] — TOST-style "agree within ε" verdicts for the
//!   validation harness;
//! - [`summary`] — Welford running mean/variance;
//! - [`histogram`] — fixed-width binning;
//! - [`ascii_plot`] — terminal line plots for the examples.

#![warn(missing_docs)]

pub mod ascii_plot;
pub mod chi2;
pub mod compare;
pub mod equivalence;
pub mod histogram;
pub mod ks;
pub mod oscillation;
pub mod summary;
pub mod timeseries;

pub use chi2::{chi_square_counts, chi_square_proportions, ChiSquare};
pub use compare::{linf_deviation, mae_deviation, rms_deviation};
pub use equivalence::{tost_mean_difference, EquivalenceResult, Verdict};
pub use histogram::Histogram;
pub use ks::{kolmogorov_critical, ks_exponential, ks_two_sample, KsResult, KsTwoSample};
pub use oscillation::{detect_peaks, OscillationSummary};
pub use summary::Summary;
pub use timeseries::TimeSeries;
