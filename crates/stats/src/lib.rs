//! Statistics for simulation output analysis.
//!
//! The paper's evaluation compares algorithms through their *kinetics*:
//! coverage-vs-time curves (Figs 8–10), deviation between RSM and L-PNDCA,
//! preservation of oscillations, and the Segers correctness criteria
//! (exponential waiting times). This crate provides the measurement side:
//!
//! - [`TimeSeries`] — sampled observables with resampling/interpolation;
//! - [`compare`] — L2/L∞/MAE deviation between curves on a common grid;
//! - [`oscillation`] — peak detection, period and amplitude estimation;
//! - [`ks`] — Kolmogorov–Smirnov test against an exponential distribution
//!   (criterion 1 of Segers, paper §6);
//! - [`summary`] — Welford running mean/variance;
//! - [`histogram`] — fixed-width binning;
//! - [`ascii_plot`] — terminal line plots for the examples.

#![warn(missing_docs)]

pub mod ascii_plot;
pub mod compare;
pub mod histogram;
pub mod ks;
pub mod oscillation;
pub mod summary;
pub mod timeseries;

pub use compare::{linf_deviation, mae_deviation, rms_deviation};
pub use histogram::Histogram;
pub use ks::{ks_exponential, KsResult};
pub use oscillation::{detect_peaks, OscillationSummary};
pub use summary::Summary;
pub use timeseries::TimeSeries;
