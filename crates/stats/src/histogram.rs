//! Fixed-width histograms.

/// A histogram with `bins` equal-width bins over `[lo, hi)`; out-of-range
/// observations land in saturating edge bins counters.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-degenerate");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let bin = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
            self.counts[bin] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// Normalised density per bin (integrates to the in-range fraction).
    pub fn density(&self) -> Vec<f64> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let n = self.total.max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / (n * w)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.0);
        h.add(9.9999);
        h.add(5.0);
        h.add(-1.0);
        h.add(10.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!((h.bin_center(0) - 0.125).abs() < 1e-12);
        assert!((h.bin_center(3) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn density_integrates_to_in_range_fraction() {
        let mut h = Histogram::new(0.0, 2.0, 8);
        for i in 0..100 {
            h.add(i as f64 * 0.02); // all in [0, 2)
        }
        let w = 2.0 / 8.0;
        let integral: f64 = h.density().iter().map(|d| d * w).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panic() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-degenerate")]
    fn bad_range_panics() {
        Histogram::new(1.0, 1.0, 4);
    }
}
