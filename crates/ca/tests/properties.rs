//! Property-based tests for partitions and the CA algorithms.

use proptest::prelude::*;
use psr_ca::partition::Partition;
use psr_ca::partition_builder::{five_coloring, greedy_coloring, singleton_chunks};
use psr_ca::pndca::{ChunkSelection, Pndca};
use psr_ca::propensity::ChunkPropensityCache;
use psr_dmc::events::{Event, EventHook};
use psr_dmc::sim::SimState;
use psr_lattice::{Dims, Lattice, Site};
use psr_model::library::kuzovkov::{kuzovkov_model, KuzovkovParams};
use psr_model::library::zgb::zgb_ziff;
use psr_model::{Model, ModelBuilder};
use psr_rng::rng_from_seed;

struct CountVisits(Vec<u32>);
impl EventHook for CountVisits {
    fn on_event(&mut self, event: Event) {
        self.0[event.site.0 as usize] += 1;
    }
}

/// Records the trial-site sequence — identical sequences imply identical
/// chunk-draw sequences.
struct RecordSites(Vec<Site>);
impl EventHook for RecordSites {
    fn on_event(&mut self, event: Event) {
        self.0.push(event.site);
    }
}

/// A random model whose patterns are single sites or von Neumann pairs.
fn model_strategy() -> impl Strategy<Value = Model> {
    prop::collection::vec(
        (
            prop::bool::ANY,                  // pair?
            0u32..4,                          // orientation
            (0u8..3, 0u8..3, 0u8..3, 0u8..3), // src/tgt for both sites
            0.01f64..5.0,
        ),
        1..6,
    )
    .prop_map(|specs| {
        let names = ["*", "A", "B"];
        let mut b = ModelBuilder::new(&names);
        for (i, (pair, orient, (s0, t0, s1, t1), rate)) in specs.into_iter().enumerate() {
            let name = format!("r{i}");
            b = b.reaction(name, rate, |r| {
                r.site((0, 0), names[s0 as usize], names[t0 as usize]);
                if pair {
                    let off = match orient {
                        0 => (1, 0),
                        1 => (0, 1),
                        2 => (-1, 0),
                        _ => (0, -1),
                    };
                    r.site(off, names[s1 as usize], names[t1 as usize]);
                }
            });
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn five_coloring_valid_for_any_von_neumann_model(model in model_strategy()) {
        let p = five_coloring(Dims::square(10));
        prop_assert!(p.is_valid_for(&model));
    }

    #[test]
    fn greedy_coloring_always_valid(
        model in model_strategy(),
        w in 4u32..12,
        h in 4u32..12,
    ) {
        let p = greedy_coloring(Dims::new(w, h), &model);
        prop_assert!(p.is_valid_for(&model), "greedy produced an invalid partition");
    }

    #[test]
    fn singleton_partition_valid_for_everything(model in model_strategy()) {
        let p = singleton_chunks(Dims::square(8));
        prop_assert!(p.is_valid_for(&model));
    }

    #[test]
    fn partition_from_labels_is_a_disjoint_cover(
        labels in prop::collection::vec(0u32..4, 36),
    ) {
        // Densify labels so from_labels accepts them.
        let mut dense = labels.clone();
        let mut map = std::collections::BTreeMap::new();
        for l in &mut dense {
            let next = map.len() as u32;
            *l = *map.entry(*l).or_insert(next);
        }
        let dims = Dims::new(6, 6);
        let p = Partition::from_labels(dims, &dense);
        let total: usize = (0..p.num_chunks()).map(|c| p.chunk(c).len()).sum();
        prop_assert_eq!(total, 36);
        for c in 0..p.num_chunks() {
            for &site in p.chunk(c) {
                prop_assert_eq!(p.chunk_of(site), c);
            }
        }
    }

    #[test]
    fn pndca_step_visits_every_site_once_for_any_model(
        model in model_strategy(),
        seed in 0u64..1000,
    ) {
        let dims = Dims::square(10);
        let p = five_coloring(dims);
        let mut pndca = Pndca::new(&model, &p).with_selection(ChunkSelection::RandomOrder);
        let mut state = SimState::new(Lattice::filled(dims, 0), &model);
        let mut rng = rng_from_seed(seed);
        let mut visits = CountVisits(vec![0; 100]);
        pndca.step(&mut state, &mut rng, &mut visits);
        prop_assert!(visits.0.iter().all(|&v| v == 1));
        prop_assert!(state.coverage.matches(&state.lattice));
    }

    #[test]
    fn pndca_coverage_consistent_after_random_runs(
        model in model_strategy(),
        seed in 0u64..1000,
        steps in 1u64..5,
    ) {
        let dims = Dims::square(10);
        let p = five_coloring(dims);
        let mut pndca = Pndca::new(&model, &p);
        let mut state = SimState::new(Lattice::filled(dims, 0), &model);
        let mut rng = rng_from_seed(seed);
        pndca.run_steps(&mut state, &mut rng, steps, None, &mut psr_dmc::events::NoHook);
        prop_assert!(state.coverage.matches(&state.lattice));
    }
}

/// Execute `n` randomly drawn reactions at randomly drawn sites directly on
/// the lattice, mirroring every successful one into the cache.
fn random_executions(
    model: &Model,
    partition: &Partition,
    lattice: &mut Lattice,
    cache: &mut ChunkPropensityCache,
    seed: u64,
    n: usize,
) {
    let mut rng = rng_from_seed(seed);
    let mut changes = Vec::new();
    let sites = partition.dims().sites();
    for _ in 0..n {
        let ri = rng.index(model.num_reactions());
        let site = Site(rng.index(sites as usize) as u32);
        changes.clear();
        if model.reaction(ri).try_execute(lattice, site, &mut changes) {
            cache.apply_changes(model, partition, lattice, &changes);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn propensity_cache_matches_scan_on_zgb(seed in 0u64..1000) {
        let model = zgb_ziff(0.45, 5.0);
        let dims = Dims::square(10);
        let p = five_coloring(dims);
        let mut lattice = Lattice::filled(dims, 0);
        let mut cache = ChunkPropensityCache::new(&model, &p, &lattice);
        random_executions(&model, &p, &mut lattice, &mut cache, seed, 300);
        prop_assert!(cache.matches_scan(&model, &p, &lattice));
        cache.assert_matches_scan(&model, &p, &lattice);
    }

    #[test]
    fn propensity_cache_matches_scan_on_kuzovkov(seed in 0u64..1000) {
        // Kuzovkov has phase-transformation reactions with larger
        // neighborhoods than ZGB — a harder stencil test.
        let model = kuzovkov_model(KuzovkovParams::default());
        let dims = Dims::new(9, 7);
        let p = greedy_coloring(dims, &model);
        let mut lattice = Lattice::filled(dims, 0);
        let mut cache = ChunkPropensityCache::new(&model, &p, &lattice);
        random_executions(&model, &p, &mut lattice, &mut cache, seed, 300);
        prop_assert!(cache.matches_scan(&model, &p, &lattice));
        cache.assert_matches_scan(&model, &p, &lattice);
    }

    #[test]
    fn weighted_selection_identical_with_and_without_cache(
        seed in 0u64..1000,
        steps in 1u64..4,
    ) {
        // The cache is a speed switch only: the cached and scanning
        // weighted selections must consume identical random numbers, sweep
        // identical chunk (hence site) sequences, and land on identical
        // lattices.
        let model = zgb_ziff(0.45, 5.0);
        let dims = Dims::square(10);
        let p = five_coloring(dims);
        let run = |scan: bool| {
            let mut pndca = Pndca::new(&model, &p)
                .with_selection(ChunkSelection::WeightedByRates)
                .with_scanned_weights(scan);
            let mut state = SimState::new(Lattice::filled(dims, 0), &model);
            let mut rng = rng_from_seed(seed);
            let mut trace = RecordSites(Vec::new());
            pndca.run_steps(&mut state, &mut rng, steps, None, &mut trace);
            (state.lattice, trace.0)
        };
        let (lattice_scan, sites_scan) = run(true);
        let (lattice_cache, sites_cache) = run(false);
        prop_assert_eq!(sites_scan, sites_cache);
        prop_assert_eq!(lattice_scan, lattice_cache);
    }
}
