//! Compiled kernels must not change trajectories: from identical seeds, the
//! compiled and naive matchers must produce bit-identical lattices, clocks,
//! and RNG streams — the enabled check consumes no randomness either way.

use psr_ca::lpndca::{ChunkVisit, LPndca};
use psr_ca::ndca::{Ndca, SweepOrder};
use psr_ca::partition_builder::five_coloring;
use psr_ca::pndca::{ChunkSelection, Pndca};
use psr_dmc::events::NoHook;
use psr_dmc::rsm::TimeMode;
use psr_dmc::sim::SimState;
use psr_lattice::{Dims, Lattice};
use psr_model::library::kuzovkov::{kuzovkov_model, KuzovkovParams};
use psr_model::library::zgb::zgb_ziff;
use psr_model::Model;
use psr_rng::{rng_from_seed, SimRng};

const SEED: u64 = 0xD1CE;

/// Run `sim` for `steps` and return everything that must match: the final
/// lattice, the exact clock, and the next RNG draw (same stream position).
fn fingerprint(
    model: &Model,
    dims: Dims,
    steps: u64,
    run: impl FnOnce(&mut SimState, &mut SimRng, u64),
) -> (Lattice, f64, f64) {
    let mut state = SimState::new(Lattice::filled(dims, 0), model);
    let mut rng = rng_from_seed(SEED);
    run(&mut state, &mut rng, steps);
    (state.lattice, state.time, rng.f64())
}

#[test]
fn ndca_trajectories_bit_identical_for_1000_steps() {
    let model = zgb_ziff(0.45, 10.0);
    let dims = Dims::square(12);
    for order in [SweepOrder::RowMajor, SweepOrder::Shuffled] {
        for mode in [TimeMode::Discretized, TimeMode::Stochastic] {
            let run = |naive: bool| {
                fingerprint(&model, dims, 1000, |state, rng, steps| {
                    Ndca::new(&model)
                        .with_order(order)
                        .with_time_mode(mode)
                        .with_naive_matching(naive)
                        .run_steps(state, rng, steps, None, &mut NoHook);
                })
            };
            assert_eq!(run(true), run(false), "order {order:?}, mode {mode:?}");
        }
    }
}

#[test]
fn ndca_kuzovkov_trajectories_bit_identical() {
    let model = kuzovkov_model(KuzovkovParams::default());
    let dims = Dims::square(12);
    let run = |naive: bool| {
        fingerprint(&model, dims, 300, |state, rng, steps| {
            Ndca::new(&model).with_naive_matching(naive).run_steps(
                state,
                rng,
                steps,
                None,
                &mut NoHook,
            );
        })
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn pndca_trajectories_bit_identical_for_1000_steps() {
    let model = zgb_ziff(0.45, 10.0);
    let dims = Dims::square(10);
    let partition = five_coloring(dims);
    for selection in [
        ChunkSelection::InOrder,
        ChunkSelection::RandomOrder,
        ChunkSelection::RandomWithReplacement,
        ChunkSelection::WeightedByRates,
    ] {
        let steps = if selection == ChunkSelection::WeightedByRates {
            // The weighted arm re-verifies the propensity cache against a
            // full scan every step in debug builds; keep it affordable.
            250
        } else {
            1000
        };
        let run = |naive: bool| {
            fingerprint(&model, dims, steps, |state, rng, steps| {
                Pndca::new(&model, &partition)
                    .with_selection(selection)
                    .with_naive_matching(naive)
                    .run_steps(state, rng, steps, None, &mut NoHook);
            })
        };
        assert_eq!(run(true), run(false), "selection {selection:?}");
    }
}

#[test]
fn lpndca_trajectories_bit_identical() {
    let model = zgb_ziff(0.45, 10.0);
    let dims = Dims::square(10);
    let partition = five_coloring(dims);
    for (visit, l) in [
        (ChunkVisit::SizeWeighted, 1),
        (ChunkVisit::SizeWeighted, 16),
        (ChunkVisit::RandomOnce, 16),
    ] {
        let run = |naive: bool| {
            fingerprint(&model, dims, 1000, |state, rng, steps| {
                LPndca::new(&model, &partition, l)
                    .with_visit(visit)
                    .with_naive_matching(naive)
                    .run_steps(state, rng, steps, None, &mut NoHook);
            })
        };
        assert_eq!(run(true), run(false), "visit {visit:?}, L = {l}");
    }
}
