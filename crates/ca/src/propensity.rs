//! Incremental per-chunk propensity cache (the weighted chunk selection of
//! §5 without the per-step rescan).
//!
//! `WeightedByRates` chunk selection needs, for every chunk `P_c`, the
//! summed rate of reactions enabled at the chunk's sites:
//!
//! ```text
//! w_c = Σ_{s ∈ P_c} Σ_{Rt enabled at s} k_Rt = Σ_Rt |{s ∈ P_c : Rt enabled at s}| · k_Rt
//! ```
//!
//! Rescanning every chunk costs O(N·|T|) per draw. This cache keeps
//!
//! - per site: a bitmask of which tracked reactions are enabled there,
//! - per chunk and reaction: the *count* of sites where it is enabled,
//!
//! and updates them in O(affected sites) after each executed reaction using
//! the model's update stencil (the negated transform offsets: an anchor `a`
//! reads site `a + t.offset`, so the anchors reading a changed site `x` are
//! exactly `{x − t.offset}`).
//!
//! Storing integer counts instead of a running float sum has two payoffs:
//! no drift (the cache stays *exactly* equal to a fresh scan, which
//! [`ChunkPropensityCache::assert_matches_scan`] checks, mirroring the VSSM
//! index consistency check in `psr-dmc`), and determinism — the weight is
//! always the same `Σ count·k` evaluated in reaction order, so the cached
//! and scanning weighted selections consume identical random numbers and
//! pick identical chunk sequences.
//!
//! Staleness: the cache records the [`SimState`](psr_dmc::sim::SimState)
//! mutation epoch it last saw; [`ensure_fresh`]
//! (ChunkPropensityCache::ensure_fresh) rebuilds by full scan when the
//! lattice changed behind its back (a different algorithm stepped the
//! state, `randomize`, direct writes + `bump_mutations`).

use crate::partition::Partition;
use psr_kernel::SiteKernel;
use psr_lattice::{Change, Lattice, Neighborhood, Site};
use psr_model::Model;
use psr_rng::SimRng;

/// One weighted index draw: linear walk over `weights`, uniform fallback
/// when the total is non-positive (no reaction enabled anywhere). Consumes
/// exactly one random number either way, so the scanning and cached
/// weighted selections stay on the same random stream.
pub fn draw_weighted(rng: &mut SimRng, weights: &[f64]) -> usize {
    let m = weights.len();
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.index(m);
    }
    let mut x = rng.f64() * total;
    let mut chosen = m - 1;
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            chosen = i;
            break;
        }
        x -= w;
    }
    chosen
}

/// Per-site enabled-reaction bitmask width: tracked reaction subsets are
/// limited to the bits of a `u64`.
pub const MAX_TRACKED_REACTIONS: usize = 64;

/// Incrementally maintained per-chunk enabled-reaction rates.
#[derive(Clone, Debug)]
pub struct ChunkPropensityCache {
    /// Global reaction indices tracked by this cache (all of them for
    /// PNDCA; one subset `T_j` for the Ω×T approach).
    reaction_ids: Vec<usize>,
    /// Rate constant per tracked reaction, in `reaction_ids` order.
    rates: Vec<f64>,
    /// Union of negated transform offsets of the tracked reactions.
    stencil: Neighborhood,
    /// Per-site bitmask: bit `m` set iff `reaction_ids[m]` is enabled there.
    enabled: Vec<u64>,
    /// `counts[c * reaction_ids.len() + m]` = sites of chunk `c` where
    /// tracked reaction `m` is enabled.
    counts: Vec<u32>,
    /// Mutation epoch of the `SimState` this cache last reflected.
    epoch: u64,
}

impl ChunkPropensityCache {
    /// Build a cache over *all* reaction types of `model` by scanning
    /// `lattice` once.
    ///
    /// # Panics
    ///
    /// Panics if the model has more than [`MAX_TRACKED_REACTIONS`] reaction
    /// types, or if `partition` does not match the lattice dimensions.
    pub fn new(model: &Model, partition: &Partition, lattice: &Lattice) -> Self {
        Self::for_reactions(
            model,
            &(0..model.num_reactions()).collect::<Vec<_>>(),
            partition,
            lattice,
        )
    }

    /// Build a cache over a subset of reaction types (the Ω×T case: one
    /// cache per `T_j`, each over that subset's site partition).
    ///
    /// # Panics
    ///
    /// Panics if `reaction_ids` is empty, exceeds
    /// [`MAX_TRACKED_REACTIONS`], or references an unknown reaction.
    pub fn for_reactions(
        model: &Model,
        reaction_ids: &[usize],
        partition: &Partition,
        lattice: &Lattice,
    ) -> Self {
        assert!(
            !reaction_ids.is_empty(),
            "cache needs at least one reaction"
        );
        assert!(
            reaction_ids.len() <= MAX_TRACKED_REACTIONS,
            "cache tracks at most {MAX_TRACKED_REACTIONS} reactions, got {}",
            reaction_ids.len()
        );
        assert_eq!(
            partition.dims(),
            lattice.dims(),
            "partition and lattice dimensions differ"
        );
        let rates = reaction_ids
            .iter()
            .map(|&ri| model.reaction(ri).rate())
            .collect();
        let stencil = Neighborhood::new(
            reaction_ids
                .iter()
                .flat_map(|&ri| {
                    model
                        .reaction(ri)
                        .transforms()
                        .iter()
                        .map(|t| t.offset.negated())
                })
                .collect(),
        );
        let mut cache = ChunkPropensityCache {
            reaction_ids: reaction_ids.to_vec(),
            rates,
            stencil,
            enabled: Vec::new(),
            counts: Vec::new(),
            epoch: 0,
        };
        cache.rebuild(model, partition, lattice);
        cache
    }

    /// Number of tracked reactions.
    pub fn num_tracked(&self) -> usize {
        self.reaction_ids.len()
    }

    /// The mutation epoch this cache last reflected.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Record the mutation epoch the cache is now consistent with.
    pub fn note_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Rebuild from scratch by one full lattice scan (O(N·|tracked|)).
    pub fn rebuild(&mut self, model: &Model, partition: &Partition, lattice: &Lattice) {
        let members = self.reaction_ids.len();
        let n = lattice.len();
        self.enabled.clear();
        self.enabled.resize(n, 0);
        self.counts.clear();
        self.counts.resize(partition.num_chunks() * members, 0);
        for i in 0..n {
            let site = Site(i as u32);
            let mask = self.site_mask(model, lattice, site);
            self.enabled[i] = mask;
            if mask != 0 {
                let base = partition.chunk_of(site) * members;
                let mut bits = mask;
                while bits != 0 {
                    let m = bits.trailing_zeros() as usize;
                    self.counts[base + m] += 1;
                    bits &= bits - 1;
                }
            }
        }
    }

    /// Rebuild only if `epoch` differs from the last-seen epoch (the
    /// lattice was mutated outside this cache's view); records `epoch`
    /// either way.
    pub fn ensure_fresh(
        &mut self,
        model: &Model,
        partition: &Partition,
        lattice: &Lattice,
        epoch: u64,
    ) {
        if self.epoch != epoch {
            self.rebuild(model, partition, lattice);
            self.epoch = epoch;
        }
    }

    /// Fold a batch of `(site, old, new)` mutation records into the cache:
    /// every anchor whose pattern can see a changed site is re-evaluated
    /// against the *current* lattice.
    ///
    /// Re-evaluation is idempotent (it diffs the stored mask against a
    /// fresh one), so overlapping neighborhoods and repeated sites across
    /// `changes` are harmless and the record order is irrelevant — the
    /// lattice passed in must simply already contain all the changes.
    pub fn apply_changes(
        &mut self,
        model: &Model,
        partition: &Partition,
        lattice: &Lattice,
        changes: &[Change],
    ) {
        let dims = lattice.dims();
        for &(site, _, _) in changes {
            for i in 0..self.stencil.offsets().len() {
                let offset = self.stencil.offsets()[i];
                self.refresh_site(model, partition, lattice, dims.translate(site, offset));
            }
        }
    }

    /// Like [`apply_changes`](Self::apply_changes), but reads each anchor's
    /// enabled set from a compiled [`SiteKernel`] (one table load) instead
    /// of the naive per-reaction scan. The kernel must already reflect the
    /// changes (simulators fold changes into the kernel first, then into
    /// this cache). The kernel's anchor table enumerates exactly the sites
    /// whose patterns can read a changed cell, so the refresh set matches
    /// the stencil walk of the naive path.
    pub fn apply_changes_with_kernel(
        &mut self,
        kernel: &SiteKernel,
        partition: &Partition,
        changes: &[Change],
    ) {
        let cells = kernel.compiled().cells().len();
        for &(site, _, _) in changes {
            for j in 0..cells {
                let anchor = kernel.anchor(site, j);
                let new_mask = self.member_mask(kernel.enabled_mask(anchor));
                self.store_mask(partition, anchor, new_mask);
            }
        }
    }

    /// Project a kernel bitmask (bit = global reaction index) onto the
    /// tracked-member bit layout of this cache.
    #[inline]
    fn member_mask(&self, kernel_mask: u64) -> u64 {
        let mut mask = 0u64;
        for (m, &ri) in self.reaction_ids.iter().enumerate() {
            mask |= ((kernel_mask >> ri) & 1) << m;
        }
        mask
    }

    /// Re-evaluate one anchor site against the lattice, adjusting counts.
    fn refresh_site(
        &mut self,
        model: &Model,
        partition: &Partition,
        lattice: &Lattice,
        site: Site,
    ) {
        let new_mask = self.site_mask(model, lattice, site);
        self.store_mask(partition, site, new_mask);
    }

    /// Install a freshly computed mask for `site`, adjusting counts by the
    /// diff against the stored one. Idempotent.
    #[inline]
    fn store_mask(&mut self, partition: &Partition, site: Site, new_mask: u64) {
        let members = self.reaction_ids.len();
        let old_mask = self.enabled[site.0 as usize];
        let mut diff = old_mask ^ new_mask;
        if diff == 0 {
            return;
        }
        self.enabled[site.0 as usize] = new_mask;
        let base = partition.chunk_of(site) * members;
        while diff != 0 {
            let m = diff.trailing_zeros() as usize;
            if new_mask & (1 << m) != 0 {
                self.counts[base + m] += 1;
            } else {
                self.counts[base + m] -= 1;
            }
            diff &= diff - 1;
        }
    }

    /// Bitmask of tracked reactions enabled at `site`.
    #[inline]
    fn site_mask(&self, model: &Model, lattice: &Lattice, site: Site) -> u64 {
        let mut mask = 0u64;
        for (m, &ri) in self.reaction_ids.iter().enumerate() {
            if model.reaction(ri).is_enabled(lattice, site) {
                mask |= 1 << m;
            }
        }
        mask
    }

    /// Summed enabled-reaction rate of one chunk: `Σ_m count_{c,m} · k_m`
    /// in tracked-reaction order — bit-identical to
    /// [`scan_chunk_weight`](Self::scan_chunk_weight) on the same state.
    pub fn chunk_weight(&self, chunk: usize) -> f64 {
        let members = self.reaction_ids.len();
        let base = chunk * members;
        let mut w = 0.0;
        for m in 0..members {
            w += self.counts[base + m] as f64 * self.rates[m];
        }
        w
    }

    /// Write every chunk's weight into `out` (cleared first).
    pub fn weights_into(&self, out: &mut Vec<f64>) {
        let chunks = self.counts.len() / self.reaction_ids.len();
        out.clear();
        out.extend((0..chunks).map(|c| self.chunk_weight(c)));
    }

    /// Enabled-site count for chunk `c`, tracked reaction `m` (test hook).
    pub fn count(&self, chunk: usize, member: usize) -> u32 {
        self.counts[chunk * self.reaction_ids.len() + member]
    }

    /// Weight of a single tracked reaction in one chunk: `count·k`.
    ///
    /// Bit-identical to [`scan_chunk_weight`](Self::scan_chunk_weight) with
    /// a one-element `reaction_ids` slice — the formula the Ω×T weighted
    /// chunk draw relies on (only the swept type's propensity matters
    /// there, not the subset total).
    pub fn member_weight(&self, chunk: usize, member: usize) -> f64 {
        self.counts[chunk * self.reaction_ids.len() + member] as f64 * self.rates[member]
    }

    /// Write every chunk's weight for one tracked reaction into `out`
    /// (cleared first).
    pub fn member_weights_into(&self, member: usize, out: &mut Vec<f64>) {
        let chunks = self.counts.len() / self.reaction_ids.len();
        out.clear();
        out.extend((0..chunks).map(|c| self.member_weight(c, member)));
    }

    /// The weight a fresh scan would report for `chunk`, computed with the
    /// same count-then-multiply formula as [`chunk_weight`]
    /// (Self::chunk_weight) so the two are comparable bit-for-bit.
    /// O(|chunk|·|tracked|).
    pub fn scan_chunk_weight(
        model: &Model,
        reaction_ids: &[usize],
        partition: &Partition,
        lattice: &Lattice,
        chunk: usize,
    ) -> f64 {
        let mut w = 0.0;
        for &ri in reaction_ids {
            let rt = model.reaction(ri);
            let mut count = 0u32;
            for &site in partition.chunk(chunk) {
                count += rt.is_enabled(lattice, site) as u32;
            }
            w += count as f64 * rt.rate();
        }
        w
    }

    /// [`scan_chunk_weight`](Self::scan_chunk_weight) over all reactions of
    /// the model — the scanning baseline for full-model weighted PNDCA.
    pub fn scan_chunk_weight_all(
        model: &Model,
        partition: &Partition,
        lattice: &Lattice,
        chunk: usize,
    ) -> f64 {
        let ids: Vec<usize> = (0..model.num_reactions()).collect();
        Self::scan_chunk_weight(model, &ids, partition, lattice, chunk)
    }

    /// True if every per-site mask and per-chunk count equals a fresh scan.
    pub fn matches_scan(&self, model: &Model, partition: &Partition, lattice: &Lattice) -> bool {
        let mut fresh = self.clone();
        fresh.rebuild(model, partition, lattice);
        fresh.enabled == self.enabled && fresh.counts == self.counts
    }

    /// Panic with a diagnostic if the cache disagrees with a fresh scan.
    ///
    /// Mirrors the VSSM index consistency check: call it (under
    /// `cfg(debug_assertions)` in hot paths) after incremental updates to
    /// catch stencil or journal bugs at the first divergence.
    pub fn assert_matches_scan(&self, model: &Model, partition: &Partition, lattice: &Lattice) {
        let mut fresh = self.clone();
        fresh.rebuild(model, partition, lattice);
        for (i, (&have, &want)) in self.enabled.iter().zip(&fresh.enabled).enumerate() {
            assert_eq!(
                have, want,
                "cache mask diverged at site {i}: cached {have:#b}, scan {want:#b}"
            );
        }
        assert_eq!(
            self.counts, fresh.counts,
            "cache counts diverged from a fresh scan"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition_builder::five_coloring;
    use psr_lattice::{Dims, Lattice};
    use psr_model::library::zgb::zgb_ziff;
    use psr_rng::rng_from_seed;

    #[test]
    fn fresh_cache_matches_scan_weights() {
        let model = zgb_ziff(0.5, 2.0);
        let d = Dims::square(10);
        let partition = five_coloring(d);
        let mut lattice = Lattice::filled(d, 0);
        // Scatter some species so enabledness is non-trivial.
        let mut rng = rng_from_seed(3);
        for i in 0..lattice.len() {
            lattice.set(Site(i as u32), (rng.index(3)) as u8);
        }
        let cache = ChunkPropensityCache::new(&model, &partition, &lattice);
        cache.assert_matches_scan(&model, &partition, &lattice);
        for c in 0..partition.num_chunks() {
            let scan = ChunkPropensityCache::scan_chunk_weight_all(&model, &partition, &lattice, c);
            assert_eq!(cache.chunk_weight(c), scan, "chunk {c} weight");
        }
    }

    #[test]
    fn empty_surface_counts_only_adsorption() {
        let model = zgb_ziff(0.5, 2.0);
        let d = Dims::square(10);
        let partition = five_coloring(d);
        let lattice = Lattice::filled(d, 0);
        let cache = ChunkPropensityCache::new(&model, &partition, &lattice);
        // On the empty ZGB surface, CO adsorption and both O2 adsorption
        // orientations are enabled at every site; reaction patterns are not.
        let total: f64 = (0..partition.num_chunks())
            .map(|c| cache.chunk_weight(c))
            .sum();
        assert_eq!(total, model.total_propensity(&lattice));
    }

    #[test]
    fn incremental_update_tracks_executed_reactions() {
        let model = zgb_ziff(0.5, 2.0);
        let d = Dims::square(10);
        let partition = five_coloring(d);
        let mut lattice = Lattice::filled(d, 0);
        let mut cache = ChunkPropensityCache::new(&model, &partition, &lattice);
        let mut rng = rng_from_seed(7);
        let mut changes = Vec::new();
        // Execute 200 random enabled reactions, updating incrementally.
        for _ in 0..200 {
            let site = Site(rng.index(lattice.len()) as u32);
            let ri = rng.index(model.num_reactions());
            changes.clear();
            if model
                .reaction(ri)
                .try_execute(&mut lattice, site, &mut changes)
            {
                cache.apply_changes(&model, &partition, &lattice, &changes);
            }
        }
        cache.assert_matches_scan(&model, &partition, &lattice);
    }

    #[test]
    fn subset_cache_tracks_only_its_reactions() {
        let model = zgb_ziff(0.5, 2.0);
        let d = Dims::square(10);
        let partition = five_coloring(d);
        let lattice = Lattice::filled(d, 0);
        let co_ads = model.reaction_index("RtCO").expect("exists");
        let cache = ChunkPropensityCache::for_reactions(&model, &[co_ads], &partition, &lattice);
        assert_eq!(cache.num_tracked(), 1);
        for c in 0..partition.num_chunks() {
            // Every vacant site enables CO adsorption.
            assert_eq!(cache.count(c, 0) as usize, partition.chunk(c).len());
            let scan =
                ChunkPropensityCache::scan_chunk_weight(&model, &[co_ads], &partition, &lattice, c);
            assert_eq!(cache.chunk_weight(c), scan);
        }
    }

    #[test]
    fn ensure_fresh_rebuilds_on_epoch_mismatch() {
        let model = zgb_ziff(0.5, 2.0);
        let d = Dims::square(5);
        let partition = five_coloring(d);
        let mut lattice = Lattice::filled(d, 0);
        let mut cache = ChunkPropensityCache::new(&model, &partition, &lattice);
        cache.note_epoch(1);
        // Mutate the lattice behind the cache's back.
        lattice.set(Site(0), 1);
        assert!(!cache.matches_scan(&model, &partition, &lattice));
        cache.ensure_fresh(&model, &partition, &lattice, 2);
        assert_eq!(cache.epoch(), 2);
        cache.assert_matches_scan(&model, &partition, &lattice);
        // Same epoch again: no rebuild needed, still consistent.
        cache.ensure_fresh(&model, &partition, &lattice, 2);
        assert!(cache.matches_scan(&model, &partition, &lattice));
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn more_than_max_tracked_reactions_rejected() {
        use psr_model::ModelBuilder;
        let mut builder = ModelBuilder::new(&["*", "A"]);
        for i in 0..=MAX_TRACKED_REACTIONS {
            builder = builder.reaction(format!("r{i}"), 1.0, |r| {
                r.site((0, 0), "*", "A");
            });
        }
        let model = builder.build();
        let d = Dims::square(5);
        let partition = five_coloring(d);
        let lattice = Lattice::filled(d, 0);
        ChunkPropensityCache::new(&model, &partition, &lattice);
    }
}
