//! Partition constructions (paper §5).
//!
//! - [`five_coloring`] — the optimal 5-chunk partition for von Neumann
//!   neighborhoods (Fig 4). The color classes `(x + 2y) mod 5` form perfect
//!   Lee codes: the radius-1 L1 balls of one class tile the plane, so the
//!   closed neighborhoods of same-chunk sites are disjoint — exactly the
//!   non-overlap restriction, with the minimum possible number of chunks.
//! - [`greedy_coloring`] — conflict-graph greedy coloring for *any* model:
//!   two sites conflict when their combined neighborhoods overlap.
//! - [`checkerboard`] — the 2-chunk partition used by the Ω×T approach
//!   (Fig 6).
//! - [`single_chunk`] / [`singleton_chunks`] — the degenerate `m = 1` and
//!   `m = N` partitions; with them L-PNDCA reduces to (biased) NDCA and to
//!   RSM respectively (Fig 8).

use crate::partition::Partition;
use psr_lattice::Dims;
use psr_model::Model;

/// The 5-chunk von Neumann partition of Fig 4: chunk of `(x, y)` is
/// `(x + 2y) mod 5`.
///
/// # Panics
///
/// Panics unless both lattice dimensions are multiples of 5 (otherwise the
/// coloring does not wrap consistently on the torus).
pub fn five_coloring(dims: Dims) -> Partition {
    assert!(
        dims.width().is_multiple_of(5) && dims.height().is_multiple_of(5),
        "the 5-coloring needs dimensions divisible by 5, got {}x{}",
        dims.width(),
        dims.height()
    );
    let labels: Vec<u32> = (0..dims.sites())
        .map(|i| {
            let x = i % dims.width();
            let y = i / dims.width();
            (x + 2 * y) % 5
        })
        .collect();
    Partition::from_labels(dims, &labels)
}

/// A second, independent 5-chunk von Neumann partition: `(2x + y) mod 5`.
///
/// Same-chunk sites again sit at torus L1 distance >= 3 (the minimal
/// solutions of `2*dx + dy == 0 (mod 5)` are `(1,3)`-type and `(2,1)`-type
/// vectors), so the partition is conflict-free for radius-1 models like
/// [`five_coloring`] -- but its chunk boundaries fall elsewhere. PNDCA's
/// "choose a partition P" step (§5) can alternate between the two to decay
/// chunk-boundary correlations.
///
/// # Panics
///
/// Panics unless both dimensions are multiples of 5.
pub fn five_coloring_alt(dims: Dims) -> Partition {
    assert!(
        dims.width().is_multiple_of(5) && dims.height().is_multiple_of(5),
        "the 5-coloring needs dimensions divisible by 5, got {}x{}",
        dims.width(),
        dims.height()
    );
    let labels: Vec<u32> = (0..dims.sites())
        .map(|i| {
            let x = i % dims.width();
            let y = i / dims.width();
            (2 * x + y) % 5
        })
        .collect();
    Partition::from_labels(dims, &labels)
}

/// The 7-chunk partition for triangular (6-neighbor) models:
/// chunk of `(x, y)` is `(2x + y) mod 7`.
///
/// The triangular closed neighborhood has 7 sites; its perfect code needs 7
/// colors — one more instance of the paper's §5 observation that "larger
/// patterns lead to more chunks" (von Neumann: 5, triangular: 7).
///
/// # Panics
///
/// Panics unless both dimensions are multiples of 7.
pub fn seven_coloring(dims: Dims) -> Partition {
    assert!(
        dims.width().is_multiple_of(7) && dims.height().is_multiple_of(7),
        "the 7-coloring needs dimensions divisible by 7, got {}x{}",
        dims.width(),
        dims.height()
    );
    let labels: Vec<u32> = (0..dims.sites())
        .map(|i| {
            let x = i % dims.width();
            let y = i / dims.width();
            (2 * x + y) % 7
        })
        .collect();
    Partition::from_labels(dims, &labels)
}

/// The 2-chunk checkerboard `(x + y) mod 2`.
///
/// Not conflict-free for a full von Neumann model, but valid per single
/// axis-pair reaction type — the partition of the Ω×T approach (Fig 6).
///
/// # Panics
///
/// Panics unless both dimensions are even (torus wrap consistency).
pub fn checkerboard(dims: Dims) -> Partition {
    assert!(
        dims.width().is_multiple_of(2) && dims.height().is_multiple_of(2),
        "checkerboard needs even dimensions, got {}x{}",
        dims.width(),
        dims.height()
    );
    let labels: Vec<u32> = (0..dims.sites())
        .map(|i| {
            let x = i % dims.width();
            let y = i / dims.width();
            (x + y) % 2
        })
        .collect();
    Partition::from_labels(dims, &labels)
}

/// The trivial 1-chunk partition (`m = 1`): all sites in one chunk.
pub fn single_chunk(dims: Dims) -> Partition {
    Partition::from_labels(dims, &vec![0; dims.sites() as usize])
}

/// The discrete partition (`m = N`): every site its own chunk. With random
/// chunk selection, L-PNDCA over this partition *is* RSM (paper §5).
pub fn singleton_chunks(dims: Dims) -> Partition {
    let labels: Vec<u32> = (0..dims.sites()).collect();
    Partition::from_labels(dims, &labels)
}

/// Greedy conflict-graph coloring for an arbitrary model.
///
/// Two sites conflict when some pair of reaction neighborhoods anchored at
/// them overlaps; equivalently, when their combined-neighborhood stencils
/// intersect. Visiting sites in row-major order and assigning the smallest
/// color unused among already-colored conflicting sites yields a valid
/// partition with a modest number of chunks (5 for von Neumann models on
/// well-sized lattices, matching [`five_coloring`]'s optimum; possibly a few
/// more colors when dimensions don't divide evenly).
pub fn greedy_coloring(dims: Dims, model: &Model) -> Partition {
    // Conflict stencil: N(s) of site s and N(t) of t overlap iff
    // t − s = a − b for offsets a ∈ N, b ∈ N. Precompute that difference
    // set once.
    let nb = model.combined_neighborhood();
    let mut diff_offsets = Vec::new();
    for &a in nb.offsets() {
        for &b in nb.offsets() {
            let d = a.plus(b.negated());
            if (d.dx != 0 || d.dy != 0) && !diff_offsets.contains(&d) {
                diff_offsets.push(d);
            }
        }
    }
    let n = dims.sites() as usize;
    let mut labels = vec![u32::MAX; n];
    let mut used = Vec::new();
    for site in dims.iter_sites() {
        used.clear();
        for &d in &diff_offsets {
            let other = dims.translate(site, d);
            let l = labels[other.0 as usize];
            if l != u32::MAX && !used.contains(&l) {
                used.push(l);
            }
        }
        let mut color = 0u32;
        while used.contains(&color) {
            color += 1;
        }
        labels[site.0 as usize] = color;
    }
    Partition::from_labels(dims, &labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_model::library::diffusion::diffusion_model;
    use psr_model::library::zgb::zgb_ziff;
    use psr_model::ModelBuilder;

    #[test]
    fn five_coloring_matches_fig4() {
        // Fig 4 shows a 5×5 tile where every chunk has exactly 5 sites and
        // row r is row 0 shifted; our (x + 2y) mod 5 has the same structure.
        let p = five_coloring(Dims::new(5, 5));
        assert_eq!(p.num_chunks(), 5);
        for i in 0..5 {
            assert_eq!(p.chunk(i).len(), 5);
        }
    }

    #[test]
    fn five_coloring_is_conflict_free_for_zgb() {
        let model = zgb_ziff(0.5, 1.0);
        for side in [5u32, 10, 25, 100] {
            let p = five_coloring(Dims::square(side));
            assert!(
                p.is_valid_for(&model),
                "5-coloring invalid on {side}x{side}"
            );
        }
    }

    #[test]
    fn five_coloring_is_minimal_for_von_neumann() {
        // No 4-chunk partition can satisfy the restriction: each site's
        // closed ball has 5 sites and balls of same-chunk sites must be
        // disjoint, so each chunk holds at most N/5 sites; a cover needs at
        // least 5 chunks. Check our partition achieves exactly that bound.
        let p = five_coloring(Dims::square(10));
        assert_eq!(p.num_chunks(), 5);
        assert_eq!(p.max_chunk_size(), 20); // N/5
    }

    #[test]
    #[should_panic(expected = "divisible by 5")]
    fn five_coloring_rejects_bad_dims() {
        five_coloring(Dims::new(6, 5));
    }

    #[test]
    fn seven_coloring_valid_for_triangular_but_five_is_not() {
        // §5: "larger patterns lead to more chunks". A 6-neighbor hop
        // model needs 7 chunks; the von Neumann 5-coloring fails for it.
        use psr_model::library::diffusion::triangular_diffusion_model;
        let model = triangular_diffusion_model(1.0);
        let d = Dims::new(35, 35); // divisible by 5 and 7
        let seven = seven_coloring(d);
        assert_eq!(seven.num_chunks(), 7);
        assert!(
            seven.is_valid_for(&model),
            "7-coloring must be conflict-free"
        );
        let five = five_coloring(d);
        assert!(
            !five.is_valid_for(&model),
            "the von Neumann 5-coloring cannot serve a triangular model"
        );
        // And the 7-coloring of course also covers the smaller pattern.
        let zgb = zgb_ziff(0.5, 1.0);
        assert!(seven.is_valid_for(&zgb));
    }

    #[test]
    fn greedy_needs_at_least_seven_for_triangular() {
        use psr_model::library::diffusion::triangular_diffusion_model;
        let model = triangular_diffusion_model(1.0);
        let p = greedy_coloring(Dims::new(14, 14), &model);
        assert!(p.is_valid_for(&model));
        assert!(p.num_chunks() >= 7, "got {}", p.num_chunks());
    }

    #[test]
    fn five_coloring_alt_is_valid_and_different() {
        let model = zgb_ziff(0.5, 1.0);
        let d = Dims::square(10);
        let a = five_coloring(d);
        let b = five_coloring_alt(d);
        assert!(b.is_valid_for(&model));
        assert_eq!(b.num_chunks(), 5);
        assert_ne!(a, b, "the two colorings must differ");
    }

    #[test]
    fn checkerboard_validity() {
        let model = zgb_ziff(0.5, 1.0);
        let p = checkerboard(Dims::new(6, 6));
        assert_eq!(p.num_chunks(), 2);
        assert!(!p.is_valid_for(&model));
        for name in ["RtO2[0]", "RtO2[1]", "RtCO", "RtCO+O[0]", "RtCO+O[2]"] {
            let ri = model.reaction_index(name).expect("exists");
            assert!(
                p.is_valid_for_reaction(&model, ri),
                "checkerboard invalid for {name}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "even dimensions")]
    fn checkerboard_rejects_odd() {
        checkerboard(Dims::new(5, 4));
    }

    #[test]
    fn degenerate_partitions() {
        let d = Dims::new(4, 4);
        assert_eq!(single_chunk(d).num_chunks(), 1);
        assert_eq!(singleton_chunks(d).num_chunks(), 16);
        let model = zgb_ziff(0.5, 1.0);
        assert!(singleton_chunks(d).is_valid_for(&model));
        assert!(!single_chunk(d).is_valid_for(&model));
    }

    #[test]
    fn greedy_coloring_is_valid_for_zgb() {
        let model = zgb_ziff(0.5, 1.0);
        let p = greedy_coloring(Dims::new(10, 10), &model);
        assert!(p.is_valid_for(&model));
        // Greedy is not minimal (the optimum is 5) but must stay within the
        // conflict-degree bound: ≤ |difference stencil| + 1 = 13 colors for
        // the von Neumann stencil; in practice it lands well under that.
        assert!(
            p.num_chunks() <= 12,
            "greedy used {} chunks",
            p.num_chunks()
        );
    }

    #[test]
    fn greedy_coloring_handles_awkward_dims() {
        let model = zgb_ziff(0.5, 1.0);
        // 7x9: not divisible by 5, the perfect coloring doesn't apply.
        let p = greedy_coloring(Dims::new(7, 9), &model);
        assert!(p.is_valid_for(&model));
    }

    #[test]
    fn greedy_coloring_single_site_model_uses_one_chunk() {
        let model = ModelBuilder::new(&["*", "A"])
            .reaction("ads", 1.0, |r| {
                r.site((0, 0), "*", "A");
            })
            .build();
        let p = greedy_coloring(Dims::new(6, 6), &model);
        assert_eq!(p.num_chunks(), 1);
        assert!(p.is_valid_for(&model));
    }

    #[test]
    fn greedy_coloring_diffusion_model() {
        let model = diffusion_model(1.0);
        let p = greedy_coloring(Dims::new(10, 10), &model);
        assert!(p.is_valid_for(&model));
    }
}
