//! Block Cellular Automata (paper §5, Fig 3).
//!
//! The classical way to avoid update conflicts: tile the lattice with
//! non-overlapping blocks, apply the transition rule independently inside
//! each block, and *shift* the block boundaries between steps so every pair
//! of adjacent sites eventually shares a block (the Margolus-neighborhood
//! idea). The paper's Fig 3 shows a 1-D BCA with 3-site blocks and the rule
//! "a site becomes 0 if at least one neighbor in its block is 0".
//!
//! This module provides a generic block CA over arbitrary per-block rules
//! plus the concrete Fig 3 rule, used by the `repro_fig3` binary and tests.

use psr_lattice::{Dims, Lattice, Region};

/// A transition rule applied to one block's cells (in row-major block
/// order); mutates the cell values in place.
pub trait BlockRule {
    /// Apply the rule to the cells of one block.
    fn apply(&self, cells: &mut [u8]);
}

impl<F: Fn(&mut [u8])> BlockRule for F {
    fn apply(&self, cells: &mut [u8]) {
        self(cells)
    }
}

/// The Fig 3 rule: a cell becomes 0 if any cell of its block (its block-
/// local neighborhood) is 0; otherwise it keeps its value.
///
/// Within a 3-site block this is exactly "state becomes 0 if at least one
/// of the neighboring sites (inside the block) is 0".
#[derive(Clone, Copy, Debug, Default)]
pub struct ZeroSpreadsRule;

impl BlockRule for ZeroSpreadsRule {
    fn apply(&self, cells: &mut [u8]) {
        if cells.contains(&0) {
            // Zero spreads to neighbors within the block: for a 3-site
            // block a single interior zero clears the whole block; edge
            // zeros clear their neighbor. We implement the neighbor
            // semantics exactly: new[i] = 0 if old[i-1] == 0 or old[i+1]
            // == 0 (within the block), else old[i].
            let old: Vec<u8> = cells.to_vec();
            for i in 0..old.len() {
                let left_zero = i > 0 && old[i - 1] == 0;
                let right_zero = i + 1 < old.len() && old[i + 1] == 0;
                if left_zero || right_zero {
                    cells[i] = 0;
                }
            }
        }
    }
}

/// A block CA: block dimensions plus a per-step boundary shift.
#[derive(Debug)]
pub struct BlockCa<R: BlockRule> {
    rule: R,
    block_w: u32,
    block_h: u32,
    shift_x: i64,
    shift_y: i64,
    step: u64,
}

impl<R: BlockRule> BlockCa<R> {
    /// A block CA with `bw × bh` blocks shifting by `(shift_x, shift_y)`
    /// every step.
    ///
    /// # Panics
    ///
    /// Panics if block dimensions are zero.
    pub fn new(rule: R, bw: u32, bh: u32, shift_x: i64, shift_y: i64) -> Self {
        assert!(bw > 0 && bh > 0, "block dimensions must be positive");
        BlockCa {
            rule,
            block_w: bw,
            block_h: bh,
            shift_x,
            shift_y,
            step: 0,
        }
    }

    /// Number of completed steps.
    pub fn steps_done(&self) -> u64 {
        self.step
    }

    /// The block tiling used for the *next* step (offset grows with the
    /// step counter, wrapping on the torus).
    pub fn current_blocks(&self, dims: Dims) -> Vec<Region> {
        let ox = self.shift_x * self.step as i64;
        let oy = self.shift_y * self.step as i64;
        Region::tile(dims, self.block_w, self.block_h, ox, oy)
    }

    /// Apply one synchronous step: every block updated independently.
    pub fn step(&mut self, lattice: &mut Lattice) {
        let dims = lattice.dims();
        let blocks = self.current_blocks(dims);
        let mut buf = Vec::new();
        for block in blocks {
            let sites = block.sites(dims);
            buf.clear();
            buf.extend(sites.iter().map(|&s| lattice.get(s)));
            self.rule.apply(&mut buf);
            for (&site, &val) in sites.iter().zip(&buf) {
                lattice.set(site, val);
            }
        }
        self.step += 1;
    }

    /// Run `n` steps.
    pub fn run(&mut self, lattice: &mut Lattice, n: u64) {
        for _ in 0..n {
            self.step(lattice);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig 3 trace: 9 sites, 3-site blocks, shift −1 per step
    /// (equivalently the next step's blocks start one cell earlier).
    #[test]
    fn fig3_first_step() {
        let dims = Dims::new(9, 1);
        // Fig 3 initial row: 0 1 1 1 1 1 0 1 1  (sites 0..8).
        let mut lattice = Lattice::from_cells(dims, vec![0, 1, 1, 1, 1, 1, 0, 1, 1]);
        let mut bca = BlockCa::new(ZeroSpreadsRule, 3, 1, 0, 0);
        bca.step(&mut lattice);
        // Blocks {0,1,2},{3,4,5},{6,7,8}: zero at 0 clears 1; zero at 6
        // clears 7. Fig 3 second row: 0 0 1 1 1 1 0 0 1.
        assert_eq!(lattice.cells(), &[0, 0, 1, 1, 1, 1, 0, 0, 1]);
        assert_eq!(bca.steps_done(), 1);
    }

    #[test]
    fn fig3_shifted_second_step() {
        let dims = Dims::new(9, 1);
        let mut lattice = Lattice::from_cells(dims, vec![0, 0, 1, 1, 1, 1, 0, 0, 1]);
        // Second step uses the shifted blocks Q = {{1,2,3},{4,5,6},{7,8,0}}.
        let mut bca = BlockCa::new(ZeroSpreadsRule, 3, 1, 1, 0);
        bca.run(&mut lattice, 0); // no-op sanity
                                  // Manually advance to the shifted phase: construct with step so the
                                  // first step already uses offset 1.
        let mut shifted = BlockCa::new(ZeroSpreadsRule, 3, 1, 1, 0);
        shifted.step = 1;
        shifted.step(&mut lattice);
        // Block {1,2,3}: 0 at 1 clears 2 → 0 0 0 1 ...
        // Block {4,5,6}: 0 at 6 clears 5 → 1 0 0
        // Block {7,8,0}: 0 at 7 (from prev) clears 8; 0 at 0 stays.
        assert_eq!(lattice.cells(), &[0, 0, 0, 1, 1, 0, 0, 0, 0]);
    }

    #[test]
    fn zeros_eventually_cover_everything_with_shifting() {
        // With shifting blocks, a single zero percolates across block
        // boundaries and eventually clears the ring.
        let dims = Dims::new(9, 1);
        let mut cells = vec![1u8; 9];
        cells[4] = 0;
        let mut lattice = Lattice::from_cells(dims, cells);
        let mut bca = BlockCa::new(ZeroSpreadsRule, 3, 1, 1, 0);
        bca.run(&mut lattice, 12);
        assert_eq!(lattice.count(0), 9, "zero must spread everywhere");
    }

    #[test]
    fn without_shifting_zero_stays_inside_its_block() {
        let dims = Dims::new(9, 1);
        let mut cells = vec![1u8; 9];
        cells[4] = 0; // middle of block {3,4,5}
        let mut lattice = Lattice::from_cells(dims, cells);
        let mut bca = BlockCa::new(ZeroSpreadsRule, 3, 1, 0, 0);
        bca.run(&mut lattice, 10);
        // Blocks never move: the zero clears only its own block.
        assert_eq!(lattice.cells(), &[1, 1, 1, 0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn two_dimensional_blocks_work() {
        let dims = Dims::new(4, 4);
        let mut lattice = Lattice::filled(dims, 1);
        lattice.set(dims.site_at(0, 0), 0);
        let rule = |cells: &mut [u8]| {
            if cells.contains(&0) {
                cells.fill(0);
            }
        };
        let mut bca = BlockCa::new(rule, 2, 2, 1, 1);
        bca.run(&mut lattice, 8);
        assert_eq!(lattice.count(0), 16);
    }
}
