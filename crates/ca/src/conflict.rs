//! Conflict detection for simultaneous reaction execution (paper §4, Fig 2).
//!
//! Executing two enabled reactions "at the same time" is only meaningful
//! when their neighborhoods are disjoint; otherwise one may disable the
//! other (two particles hopping into the same vacancy). The
//! [`ConflictDetector`] checks a batch of `(site, reaction)` pairs for such
//! overlaps — used to demonstrate the Fig 2 conflict, to test partitions,
//! and (in debug builds) to verify the parallel executor's safety argument
//! at runtime.

use psr_lattice::{Dims, Site};
use psr_model::Model;

/// Detects neighborhood overlaps within a batch of simultaneous reactions.
#[derive(Clone, Debug)]
pub struct ConflictDetector {
    dims: Dims,
    /// Claim marks per lattice site: the index of the claiming batch entry
    /// + 1, or 0 when unclaimed.
    claims: Vec<u32>,
    /// Sites claimed so far (for cheap reset).
    touched: Vec<Site>,
}

impl ConflictDetector {
    /// A detector for lattices of `dims`.
    pub fn new(dims: Dims) -> Self {
        ConflictDetector {
            dims,
            claims: vec![0; dims.sites() as usize],
            touched: Vec::new(),
        }
    }

    /// Check a batch of `(anchor site, reaction index)` pairs. Returns the
    /// first conflicting pair of batch indices, or `None` if all
    /// neighborhoods are pairwise disjoint. Resets itself afterwards.
    pub fn check_batch(
        &mut self,
        model: &Model,
        batch: &[(Site, usize)],
    ) -> Option<(usize, usize)> {
        let mut conflict = None;
        'outer: for (bi, &(site, ri)) in batch.iter().enumerate() {
            for t in model.reaction(ri).transforms() {
                let covered = self.dims.translate(site, t.offset);
                let claim = self.claims[covered.0 as usize];
                if claim != 0 && claim != bi as u32 + 1 {
                    conflict = Some(((claim - 1) as usize, bi));
                    break 'outer;
                }
                self.claims[covered.0 as usize] = bi as u32 + 1;
                self.touched.push(covered);
            }
        }
        for &s in &self.touched {
            self.claims[s.0 as usize] = 0;
        }
        self.touched.clear();
        conflict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition_builder::five_coloring;
    use psr_lattice::Dims;
    use psr_model::library::diffusion::diffusion_model;
    use psr_model::library::zgb::zgb_ziff;

    #[test]
    fn fig2_diffusion_conflict_detected() {
        // Particles at n−1 and n+1, vacancy at n: "hop right" anchored at
        // n−1 and "hop left" anchored at n+1 both target site n.
        let model = diffusion_model(1.0);
        let d = Dims::new(5, 1);
        let mut det = ConflictDetector::new(d);
        let hop_right = model.reaction_index("hop[0]").expect("exists");
        let hop_left = model.reaction_index("hop[2]").expect("exists");
        let batch = [
            (d.site_at(1, 0), hop_right), // claims sites 1, 2
            (d.site_at(3, 0), hop_left),  // claims sites 3, 2 → conflict
        ];
        assert_eq!(det.check_batch(&model, &batch), Some((0, 1)));
    }

    #[test]
    fn disjoint_reactions_pass() {
        let model = diffusion_model(1.0);
        let d = Dims::new(8, 1);
        let mut det = ConflictDetector::new(d);
        let hop_right = model.reaction_index("hop[0]").expect("exists");
        let batch = [(d.site_at(0, 0), hop_right), (d.site_at(4, 0), hop_right)];
        assert_eq!(det.check_batch(&model, &batch), None);
    }

    #[test]
    fn detector_resets_between_batches() {
        let model = diffusion_model(1.0);
        let d = Dims::new(6, 1);
        let mut det = ConflictDetector::new(d);
        let hop = model.reaction_index("hop[0]").expect("exists");
        assert_eq!(det.check_batch(&model, &[(d.site_at(0, 0), hop)]), None);
        // Same site again in a fresh batch must not conflict with the past.
        assert_eq!(det.check_batch(&model, &[(d.site_at(0, 0), hop)]), None);
    }

    #[test]
    fn five_coloring_chunk_batches_never_conflict() {
        // Any combination of reactions anchored within one chunk of the
        // 5-coloring is conflict-free — the partition property, checked
        // dynamically.
        let model = zgb_ziff(0.5, 1.0);
        let d = Dims::square(10);
        let p = five_coloring(d);
        let mut det = ConflictDetector::new(d);
        for chunk in 0..p.num_chunks() {
            for ri in 0..model.num_reactions() {
                let batch: Vec<(Site, usize)> = p.chunk(chunk).iter().map(|&s| (s, ri)).collect();
                assert_eq!(
                    det.check_batch(&model, &batch),
                    None,
                    "chunk {chunk} reaction {ri}"
                );
            }
        }
    }

    #[test]
    fn cross_chunk_batch_conflicts() {
        let model = zgb_ziff(0.5, 1.0);
        let d = Dims::square(10);
        let mut det = ConflictDetector::new(d);
        let pair = model.reaction_index("RtO2[0]").expect("exists");
        // Adjacent anchors overlap at the shared site.
        let batch = [(d.site_at(0, 0), pair), (d.site_at(1, 0), pair)];
        assert!(det.check_batch(&model, &batch).is_some());
    }
}
