//! Fractional-step operator-splitting parallel KMC (Lie / Strang).
//!
//! The Arampatzis/Katsoulakis/Plecháč family (arXiv:1105.4673) sits between
//! the exact DMC algorithms and the paper's approximate PNDCA: the lattice
//! is tiled into rectangular blocks, the generator is split as
//! `L = Σ_g L_g` over *groups* of mutually non-interacting blocks, and each
//! fractional step runs **exact** VSSM-style KMC on one group's blocks for a
//! sub-interval of the time window `Δt` while every other block is frozen.
//! Events anchored in an active block may still *write* into neighbouring
//! frozen blocks (those writes apply immediately); events anchored in frozen
//! blocks are deferred to that block's own fractional step. The splitting
//! error is controlled by the window:
//!
//! - [`Schedule::Lie`] sweeps each group once per window — first-order
//!   `O(Δt)` local error;
//! - [`Schedule::Strang`] runs the palindromic half-window sweep
//!   `e^{Δt/2·L_0}…e^{Δt/2·L_{G-2}}·e^{Δt·L_{G-1}}·e^{Δt/2·L_{G-2}}…e^{Δt/2·L_0}`
//!   — second-order `O(Δt²)` error per window.
//!
//! Under either schedule every block integrates exactly `Δt` of its own
//! local clock per window (a Strang edge group splits it into two halves at
//! different interleavings), so event timestamps are `window_start + τ` with
//! `τ` the block's integrated clock — inter-event times at any fixed site
//! are exact exponential samples, which is what the validate tier's
//! waiting-time KS test measures.
//!
//! Determinism: every `(window, slot, block)` triple draws from its own
//! counter-keyed RNG stream, so the trajectory is a pure function of
//! `(seed, partition, schedule)` — resumable from `(lattice, window count)`
//! alone, with window boundaries as the checkpoint seam.

use std::sync::Arc;

use crate::partition::Partition;
use psr_dmc::events::{Event, EventHook};
use psr_dmc::recorder::Recorder;
use psr_dmc::rsm::RunStats;
use psr_dmc::sim::SimState;
use psr_dmc::vssm::SiteSet;
use psr_kernel::{CompiledModel, SiteKernel};
use psr_lattice::{Dims, Lattice, Offset, Site};
use psr_model::Model;
use psr_rng::{exponential, SimRng, StreamFactory};

/// XOR-folded into the master seed so fractional-step streams can never
/// collide with `rng_from_seed(seed)` (= stream 0 of the unsalted factory).
pub const FS_STREAM_NAMESPACE: u64 = 0xF5C0_5EED_0F5C_A11E;

/// Operator-splitting schedule: the order fractional steps visit the block
/// groups within one window, which sets the splitting-error order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// One full-window sweep of the groups per window: `O(Δt)` error.
    Lie,
    /// Symmetric half-window sweeps (palindromic composition): `O(Δt²)`.
    Strang,
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Schedule::Lie => "lie",
            Schedule::Strang => "strang",
        })
    }
}

impl std::str::FromStr for Schedule {
    type Err = String;

    /// Parse the names printed by `Display` (batch spec files).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "lie" => Ok(Schedule::Lie),
            "strang" => Ok(Schedule::Strang),
            other => Err(format!(
                "unknown splitting schedule {other:?} (expected lie or strang)"
            )),
        }
    }
}

/// The squarest `(gx, gy)` factorisation of `blocks` (`gx ≥ gy`), used by
/// engine specs that give a block *count* rather than a grid.
pub fn squarest_grid(blocks: u32) -> (u32, u32) {
    let mut gy = 1;
    let mut d = 1;
    while d * d <= blocks {
        if blocks.is_multiple_of(d) {
            gy = d;
        }
        d += 1;
    }
    (blocks / gy, gy)
}

/// A validated decomposition of the lattice into a `gx × gy` torus of
/// rectangular blocks, coloured into groups of mutually non-interacting
/// blocks (Moore-adjacency colouring, same bound as the shard grid: block
/// sides strictly greater than twice the interaction radius).
#[derive(Clone, Debug)]
pub struct SplitPlan {
    partition: Partition,
    gx: u32,
    gy: u32,
    groups: Vec<Vec<usize>>,
}

impl SplitPlan {
    /// Tile `dims` into a `gx × gy` block grid.
    ///
    /// # Errors
    ///
    /// The grid must divide both lattice dimensions, and each block side
    /// must exceed `2 · radius` so that blocks in the same colour group can
    /// never read or write a common site within a fractional step.
    pub fn new(dims: Dims, gx: u32, gy: u32, radius: u32) -> Result<Self, String> {
        if gx == 0 || gy == 0 {
            return Err("block grid dimensions must be at least 1".to_string());
        }
        let (w, h) = (dims.width(), dims.height());
        if w % gx != 0 {
            return Err(format!("block grid x = {gx} does not divide width {w}"));
        }
        if h % gy != 0 {
            return Err(format!("block grid y = {gy} does not divide height {h}"));
        }
        let (bw, bh) = (w / gx, h / gy);
        if bw <= 2 * radius || bh <= 2 * radius {
            return Err(format!(
                "{bw}x{bh} blocks are too small for interaction radius {radius} \
                 (sides must exceed {})",
                2 * radius
            ));
        }
        let labels: Vec<u32> = dims
            .iter_sites()
            .map(|s| {
                let c = dims.coord(s);
                let (bx, by) = (c.x as u32 / bw, c.y as u32 / bh);
                by * gx + bx
            })
            .collect();
        let partition = Partition::from_labels(dims, &labels);
        let groups = moore_coloring(gx as usize, gy as usize);
        Ok(SplitPlan {
            partition,
            gx,
            gy,
            groups,
        })
    }

    /// The block partition (chunk index = `by * gx + bx`, sites row-major).
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Number of blocks (`gx · gy`).
    pub fn num_blocks(&self) -> usize {
        (self.gx * self.gy) as usize
    }

    /// The block grid shape.
    pub fn grid(&self) -> (u32, u32) {
        (self.gx, self.gy)
    }

    /// The colour groups: each inner vector lists mutually non-interacting
    /// block indices, visited in ascending order within a fractional step.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }
}

/// Greedy colouring of the `gx × gy` block torus under Moore (8-neighbour)
/// adjacency with wrap-around; returns blocks grouped by colour. Degenerate
/// grids (a dimension of 1 or 2 wraps a block onto or next to itself both
/// ways) fall out naturally: a 1×1 grid is one singleton group, a 2×2 grid
/// is four.
fn moore_coloring(gx: usize, gy: usize) -> Vec<Vec<usize>> {
    let nb = gx * gy;
    let mut neighbors: Vec<Vec<usize>> = vec![Vec::new(); nb];
    for by in 0..gy {
        for bx in 0..gx {
            let b = by * gx + bx;
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let nx = (bx as i64 + dx).rem_euclid(gx as i64) as usize;
                    let ny = (by as i64 + dy).rem_euclid(gy as i64) as usize;
                    let n = ny * gx + nx;
                    if n != b && !neighbors[b].contains(&n) {
                        neighbors[b].push(n);
                    }
                }
            }
        }
    }
    let mut color = vec![usize::MAX; nb];
    let mut num_colors = 0;
    for b in 0..nb {
        let mut used = vec![false; num_colors + 1];
        for &n in &neighbors[b] {
            if color[n] != usize::MAX {
                used[color[n]] = true;
            }
        }
        let c = used.iter().position(|&u| !u).expect("a free colour exists");
        color[b] = c;
        num_colors = num_colors.max(c + 1);
    }
    let mut groups = vec![Vec::new(); num_colors];
    for (b, &c) in color.iter().enumerate() {
        groups[c].push(b);
    }
    groups
}

/// One fractional step: run group `group` for the sub-interval
/// `[lo, hi] · Δt` of each member block's local window clock.
#[derive(Clone, Copy, Debug)]
struct Slot {
    group: usize,
    lo: f64,
    hi: f64,
}

fn slot_table(schedule: Schedule, groups: usize) -> Vec<Slot> {
    match schedule {
        Schedule::Lie => (0..groups)
            .map(|group| Slot {
                group,
                lo: 0.0,
                hi: 1.0,
            })
            .collect(),
        Schedule::Strang => {
            if groups == 1 {
                // A single group is exact KMC; Strang degenerates to Lie.
                return slot_table(Schedule::Lie, 1);
            }
            let mut slots = Vec::with_capacity(2 * groups - 1);
            for group in 0..groups - 1 {
                slots.push(Slot {
                    group,
                    lo: 0.0,
                    hi: 0.5,
                });
            }
            // The innermost group runs its whole window in one slot (the
            // two palindromic halves merge).
            slots.push(Slot {
                group: groups - 1,
                lo: 0.0,
                hi: 1.0,
            });
            for group in (0..groups - 1).rev() {
                slots.push(Slot {
                    group,
                    lo: 0.5,
                    hi: 1.0,
                });
            }
            slots
        }
    }
}

/// The fractional-step executor: exact VSSM within each block for its share
/// of the window, blocks interleaved per the [`Schedule`].
///
/// One *step* (in [`SimSession`](../../psr_core) terms) is one whole window:
/// at every window boundary the state is `(lattice, w·Δt)` and nothing else
/// — the RNG streams are keyed by `(window, slot, block)` — so windows are
/// clean checkpoint seams despite the event-driven interior.
#[derive(Clone, Debug)]
pub struct FractionalStepKmc<'m, 'p> {
    model: &'m Model,
    plan: &'p SplitPlan,
    window: f64,
    factory: StreamFactory,
    slots: Vec<Slot>,
    /// Index of the next window to run (`set_start_window` on resume).
    next_window: u64,
    /// Per-reaction enabled-anchor sets, rebuilt per (slot, block) and
    /// restricted to the active block; allocations reused across blocks.
    enabled: Vec<SiteSet>,
    /// `z − offset` candidates per reaction (naive matching arm).
    anchor_offsets: Vec<Vec<Offset>>,
    /// Stencil cell per transform offset (compiled kernel arm).
    anchor_cells: Vec<Vec<u16>>,
    compiled: Option<Arc<CompiledModel>>,
    kernel: Option<SiteKernel>,
}

impl<'m, 'p> FractionalStepKmc<'m, 'p> {
    /// Build an executor over `plan` with time window `window` (> 0).
    pub fn new(
        model: &'m Model,
        plan: &'p SplitPlan,
        schedule: Schedule,
        window: f64,
        seed: u64,
    ) -> Self {
        assert!(
            window.is_finite() && window > 0.0,
            "fskmc window must be positive and finite (got {window})"
        );
        let anchor_offsets = model
            .reactions()
            .iter()
            .map(|rt| rt.transforms().iter().map(|t| t.offset.negated()).collect())
            .collect();
        let compiled = CompiledModel::try_compile(model).map(Arc::new);
        let anchor_cells = match &compiled {
            Some(c) => model
                .reactions()
                .iter()
                .map(|rt| {
                    rt.transforms()
                        .iter()
                        .map(|t| {
                            c.cells()
                                .binary_search(&t.offset)
                                .expect("offset in stencil") as u16
                        })
                        .collect()
                })
                .collect(),
            None => Vec::new(),
        };
        let slots = slot_table(schedule, plan.groups().len());
        FractionalStepKmc {
            model,
            plan,
            window,
            factory: StreamFactory::new(seed ^ FS_STREAM_NAMESPACE),
            slots,
            next_window: 0,
            enabled: Vec::new(),
            anchor_offsets,
            anchor_cells,
            compiled,
            kernel: None,
        }
    }

    /// Disable (or re-enable) the compiled kernel and match patterns with
    /// the naive per-reaction scan. Trajectories are bit-identical either
    /// way.
    pub fn with_naive_matching(mut self, naive: bool) -> Self {
        self.kernel = None;
        self.compiled = if naive {
            None
        } else {
            CompiledModel::try_compile(self.model).map(Arc::new)
        };
        self
    }

    /// Resume support: the index of the next window (= whole windows already
    /// run). Streams are keyed on it, so this fully positions the executor.
    pub fn set_start_window(&mut self, window: u64) {
        self.next_window = window;
    }

    /// The RNG stream a given `(window, slot, block)` fractional step draws
    /// from — exposed so differential tests can drive a reference VSSM with
    /// the identical stream.
    pub fn stream(&self, window: u64, slot: usize, block: usize) -> SimRng {
        let slots = self.slots.len() as u64;
        let blocks = self.plan.num_blocks() as u64;
        self.factory
            .stream((window * slots + slot as u64) * blocks + block as u64)
    }

    /// Number of fractional steps per window under the configured schedule.
    pub fn slots_per_window(&self) -> usize {
        self.slots.len()
    }

    /// `window · (w + frac)`: the one expression used for every clock value,
    /// so window boundaries are bit-stable functions of the window index.
    fn time_at(&self, window: u64, frac: f64) -> f64 {
        self.window * (window as f64 + frac)
    }

    /// (Re)bind the kernel to the state's lattice and bring it up to date.
    fn ensure_kernel(&mut self, state: &SimState) {
        let Some(compiled) = &self.compiled else {
            return;
        };
        match &mut self.kernel {
            Some(k) if k.dims() == state.lattice.dims() => {
                k.ensure_fresh(&state.lattice, state.mutation_epoch());
            }
            _ => {
                let mut k = SiteKernel::new(Arc::clone(compiled), &state.lattice);
                k.note_epoch(state.mutation_epoch());
                self.kernel = Some(k);
            }
        }
    }

    /// Rebuild the enabled sets for `block` from the current lattice. The
    /// per-set insertion order (block sites row-major) matches a fresh
    /// [`Vssm::new`](psr_dmc::Vssm::new) scan when the block is the whole
    /// lattice — the single-chunk bit-identity hinges on this.
    fn rebuild_block_sets(&mut self, state: &SimState, block: usize) {
        let n = state.lattice.len();
        let reactions = self.model.num_reactions();
        if self.enabled.len() != reactions
            || self
                .enabled
                .first()
                .is_some_and(|s| s.capacity_sites() != n)
        {
            self.enabled = vec![SiteSet::new(n); reactions];
        } else {
            for set in &mut self.enabled {
                set.clear();
            }
        }
        let sites = self.plan.partition.chunk(block);
        if let Some(kernel) = &self.kernel {
            for (ri, set) in self.enabled.iter_mut().enumerate() {
                for &site in sites {
                    if kernel.is_enabled(site, ri) {
                        set.insert(site);
                    }
                }
            }
        } else {
            for (ri, set) in self.enabled.iter_mut().enumerate() {
                let rt = self.model.reaction(ri);
                for &site in sites {
                    if rt.is_enabled(&state.lattice, site) {
                        set.insert(site);
                    }
                }
            }
        }
    }

    /// Summed rate of the active block's enabled reactions.
    fn total_propensity(&self) -> f64 {
        self.model
            .reactions()
            .iter()
            .zip(&self.enabled)
            .map(|(rt, set)| rt.rate() * set.len() as f64)
            .sum()
    }

    /// Re-examine enabledness of anchors that could touch `changed_site`,
    /// restricted to anchors inside the active `block` — anchors in frozen
    /// blocks are picked up when their own fractional step rebuilds its
    /// sets. Visits the exact `(reaction, anchor)` sequence of
    /// [`Vssm`](psr_dmc::Vssm) so the swap-remove order matches.
    fn refresh_around_in_block(&mut self, lattice: &Lattice, changed_site: Site, block: usize) {
        let partition = &self.plan.partition;
        if let Some(kernel) = &self.kernel {
            for ri in 0..self.enabled.len() {
                for &cell in &self.anchor_cells[ri] {
                    let anchor = kernel.anchor(changed_site, cell as usize);
                    if partition.chunk_of(anchor) != block {
                        continue;
                    }
                    if kernel.is_enabled(anchor, ri) {
                        self.enabled[ri].insert(anchor);
                    } else {
                        self.enabled[ri].remove(anchor);
                    }
                }
            }
        } else {
            let dims = lattice.dims();
            for ri in 0..self.enabled.len() {
                let rt = self.model.reaction(ri);
                for k in 0..self.anchor_offsets[ri].len() {
                    let anchor = dims.translate(changed_site, self.anchor_offsets[ri][k]);
                    if partition.chunk_of(anchor) != block {
                        continue;
                    }
                    if rt.is_enabled(lattice, anchor) {
                        self.enabled[ri].insert(anchor);
                    } else {
                        self.enabled[ri].remove(anchor);
                    }
                }
            }
        }
    }

    /// Exact KMC on `block` from `t_lo` to `t_hi` (absolute clock values on
    /// the block's own integrated window clock), drawing from `rng` in the
    /// exact per-event order of [`Vssm::step_until`](psr_dmc::Vssm): total →
    /// exponential → reaction scan → site sample.
    #[allow(clippy::too_many_arguments)]
    fn run_block_slot(
        &mut self,
        state: &mut SimState,
        rng: &mut SimRng,
        block: usize,
        t_lo: f64,
        t_hi: f64,
        changes: &mut Vec<(Site, u8, u8)>,
        hook: &mut impl EventHook,
    ) -> u64 {
        self.rebuild_block_sets(state, block);
        let mut t = t_lo;
        let mut events = 0u64;
        loop {
            let total = self.total_propensity();
            if total <= 0.0 {
                break;
            }
            let dt = exponential(rng, total);
            if t + dt > t_hi {
                // The overshooting draw is consumed, exactly as VSSM's
                // clamped step consumes it.
                break;
            }
            let mut x = rng.f64() * total;
            let mut chosen = self.enabled.len() - 1;
            for (ri, set) in self.enabled.iter().enumerate() {
                let w = self.model.reaction(ri).rate() * set.len() as f64;
                if x < w {
                    chosen = ri;
                    break;
                }
                x -= w;
            }
            // Guard against float drift selecting an empty set.
            if self.enabled[chosen].is_empty() {
                match self.enabled.iter().position(|s| !s.is_empty()) {
                    Some(fallback) => chosen = fallback,
                    None => break,
                }
            }
            let site = self.enabled[chosen].sample(rng);
            t += dt;
            changes.clear();
            let rt = self.model.reaction(chosen);
            debug_assert!(rt.is_enabled(&state.lattice, site));
            rt.execute(&mut state.lattice, site, changes);
            state.apply_changes(changes);
            if let Some(kernel) = &mut self.kernel {
                kernel.apply_changes(&state.lattice, changes);
                kernel.note_epoch(state.mutation_epoch());
            }
            for &(z, _, _) in changes.iter() {
                self.refresh_around_in_block(&state.lattice, z, block);
            }
            hook.on_event(Event {
                time: t,
                site,
                reaction: chosen,
                executed: true,
            });
            events += 1;
        }
        events
    }

    /// Run one whole window (index `w`); returns executed events.
    fn run_window(&mut self, state: &mut SimState, w: u64, hook: &mut impl EventHook) -> u64 {
        let mut events = 0;
        let mut changes = Vec::with_capacity(4);
        for slot_idx in 0..self.slots.len() {
            let slot = self.slots[slot_idx];
            let plan = self.plan;
            let (t_lo, t_hi) = (self.time_at(w, slot.lo), self.time_at(w, slot.hi));
            for &block in &plan.groups()[slot.group] {
                let mut rng = self.stream(w, slot_idx, block);
                events +=
                    self.run_block_slot(state, &mut rng, block, t_lo, t_hi, &mut changes, hook);
            }
        }
        // The window boundary is the checkpoint seam: the clock is a pure
        // function of the window index, never of the event history.
        state.time = self.time_at(w + 1, 0.0);
        events
    }

    /// Advance by `windows` whole windows, recording coverage at each
    /// window boundary.
    pub fn run_windows(
        &mut self,
        state: &mut SimState,
        windows: u64,
        mut recorder: Option<&mut Recorder>,
        hook: &mut impl EventHook,
    ) -> RunStats {
        self.ensure_kernel(state);
        let mut stats = RunStats::default();
        for _ in 0..windows {
            let w = self.next_window;
            let events = self.run_window(state, w, hook);
            self.next_window += 1;
            stats.trials += events;
            stats.executed += events;
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(state.time, &state.coverage);
            }
        }
        stats
    }

    /// Run whole windows until the clock reaches `t_end` (the final window
    /// may overshoot: windows are never split).
    pub fn run_until(
        &mut self,
        state: &mut SimState,
        t_end: f64,
        mut recorder: Option<&mut Recorder>,
        hook: &mut impl EventHook,
    ) -> RunStats {
        let mut stats = RunStats::default();
        while state.time < t_end {
            stats += self.run_windows(state, 1, recorder.as_deref_mut(), hook);
        }
        if let Some(rec) = recorder {
            rec.record(t_end, &state.coverage);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_dmc::events::NoHook;
    use psr_model::library::zgb::zgb_ziff;
    use psr_model::ModelBuilder;

    #[test]
    fn squarest_grid_factorisations() {
        assert_eq!(squarest_grid(1), (1, 1));
        assert_eq!(squarest_grid(2), (2, 1));
        assert_eq!(squarest_grid(4), (2, 2));
        assert_eq!(squarest_grid(6), (3, 2));
        assert_eq!(squarest_grid(7), (7, 1));
        assert_eq!(squarest_grid(16), (4, 4));
    }

    #[test]
    fn schedule_round_trips_through_strings() {
        for s in [Schedule::Lie, Schedule::Strang] {
            assert_eq!(s.to_string().parse::<Schedule>().unwrap(), s);
        }
        assert!("trotter".parse::<Schedule>().is_err());
    }

    #[test]
    fn plan_validates_divisibility_and_radius() {
        let dims = Dims::square(20);
        assert!(SplitPlan::new(dims, 3, 2, 1)
            .unwrap_err()
            .contains("divide"));
        assert!(SplitPlan::new(dims, 2, 3, 1)
            .unwrap_err()
            .contains("divide"));
        assert!(SplitPlan::new(dims, 10, 10, 1)
            .unwrap_err()
            .contains("too small"));
        assert!(SplitPlan::new(dims, 0, 2, 1).is_err());
        let plan = SplitPlan::new(dims, 2, 2, 1).expect("valid");
        assert_eq!(plan.num_blocks(), 4);
        assert_eq!(plan.grid(), (2, 2));
    }

    #[test]
    fn moore_coloring_groups_are_independent_sets() {
        for (gx, gy) in [(1, 1), (2, 1), (2, 2), (3, 3), (4, 4), (5, 3), (8, 8)] {
            let groups = moore_coloring(gx, gy);
            let blocks: usize = groups.iter().map(Vec::len).sum();
            assert_eq!(blocks, gx * gy, "{gx}x{gy}: every block coloured once");
            for group in &groups {
                for (i, &a) in group.iter().enumerate() {
                    for &b in &group[i + 1..] {
                        let (ax, ay) = (a % gx, a / gx);
                        let (bx, by) = (b % gx, b / gx);
                        let ddx = (ax as i64 - bx as i64).rem_euclid(gx as i64);
                        let ddy = (ay as i64 - by as i64).rem_euclid(gy as i64);
                        let adjacent_x = ddx <= 1 || ddx == gx as i64 - 1;
                        let adjacent_y = ddy <= 1 || ddy == gy as i64 - 1;
                        assert!(
                            !(adjacent_x && adjacent_y),
                            "{gx}x{gy}: same-group blocks {a} and {b} are Moore-adjacent"
                        );
                    }
                }
            }
        }
        // The degenerate grids: fully-connected tori fall to singletons.
        assert_eq!(moore_coloring(1, 1), vec![vec![0]]);
        assert_eq!(moore_coloring(2, 2).len(), 4);
    }

    #[test]
    fn strang_slot_table_is_palindromic() {
        let slots = slot_table(Schedule::Strang, 4);
        assert_eq!(slots.len(), 7);
        let order: Vec<usize> = slots.iter().map(|s| s.group).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 2, 1, 0]);
        // Every group integrates exactly one whole window of its own clock.
        let mut share = [0.0; 4];
        for s in &slots {
            share[s.group] += s.hi - s.lo;
        }
        assert!(share.iter().all(|&x| (x - 1.0).abs() < 1e-12));
        // One group degenerates to plain Lie.
        assert_eq!(slot_table(Schedule::Strang, 1).len(), 1);
    }

    fn run(
        schedule: Schedule,
        window: f64,
        seed: u64,
        naive: bool,
        windows: u64,
    ) -> (Lattice, f64) {
        let model = zgb_ziff(0.5, 4.0);
        let dims = Dims::square(12);
        let plan = SplitPlan::new(dims, 2, 2, model.interaction_radius()).expect("plan");
        let mut state = SimState::new(Lattice::filled(dims, 0), &model);
        let mut exec = FractionalStepKmc::new(&model, &plan, schedule, window, seed)
            .with_naive_matching(naive);
        let stats = exec.run_windows(&mut state, windows, None, &mut NoHook);
        assert!(stats.executed > 0, "no events executed");
        assert!(state.coverage.matches(&state.lattice), "coverage diverged");
        (state.lattice.clone(), state.time)
    }

    #[test]
    fn compiled_and_naive_matching_are_bit_identical() {
        for schedule in [Schedule::Lie, Schedule::Strang] {
            let (fast, tf) = run(schedule, 0.25, 42, false, 8);
            let (naive, tn) = run(schedule, 0.25, 42, true, 8);
            assert_eq!(fast, naive, "{schedule}: kernel arm diverged from naive");
            assert_eq!(tf.to_bits(), tn.to_bits());
        }
    }

    #[test]
    fn window_boundaries_are_pure_functions_of_the_window_index() {
        let (_, t) = run(Schedule::Strang, 0.25, 7, false, 8);
        assert_eq!(t.to_bits(), (0.25f64 * 8.0).to_bits());
    }

    #[test]
    fn resume_from_a_window_boundary_is_bit_identical() {
        let model = zgb_ziff(0.5, 4.0);
        let dims = Dims::square(12);
        let plan = SplitPlan::new(dims, 2, 2, model.interaction_radius()).expect("plan");
        for schedule in [Schedule::Lie, Schedule::Strang] {
            let mut whole = SimState::new(Lattice::filled(dims, 0), &model);
            FractionalStepKmc::new(&model, &plan, schedule, 0.2, 9).run_windows(
                &mut whole,
                10,
                None,
                &mut NoHook,
            );

            let mut split = SimState::new(Lattice::filled(dims, 0), &model);
            let mut first = FractionalStepKmc::new(&model, &plan, schedule, 0.2, 9);
            first.run_windows(&mut split, 4, None, &mut NoHook);
            // A brand-new executor positioned at window 4 — everything it
            // needs is (lattice, window index).
            let mut second = FractionalStepKmc::new(&model, &plan, schedule, 0.2, 9);
            second.set_start_window(4);
            second.run_windows(&mut split, 6, None, &mut NoHook);

            assert_eq!(whole.lattice, split.lattice, "{schedule}: resume diverged");
            assert_eq!(whole.time.to_bits(), split.time.to_bits());
        }
    }

    #[test]
    fn frozen_blocks_defer_but_do_not_lose_events() {
        // Pure adsorption: every site must fill exactly once even though
        // each block only runs in its own fractional steps.
        let model = ModelBuilder::new(&["*", "A"])
            .reaction("ads", 5.0, |r| {
                r.site((0, 0), "*", "A");
            })
            .build();
        let dims = Dims::square(8);
        let plan = SplitPlan::new(dims, 2, 2, 1).expect("plan");
        let mut state = SimState::new(Lattice::filled(dims, 0), &model);
        let mut exec = FractionalStepKmc::new(&model, &plan, Schedule::Strang, 0.5, 3);
        exec.run_windows(&mut state, 20, None, &mut NoHook);
        assert_eq!(state.coverage.count(1), 64, "every site adsorbed once");
    }
}
