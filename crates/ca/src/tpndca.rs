//! The Ω×T approach: partitioning reaction types as well as sites
//! (paper §5 "Another approach using partitions", Table II / Fig 6).
//!
//! Large patterns force many chunks; partitioning the reaction-type set `T`
//! into subsets `T_j` relaxes the non-overlap rule to hold only *within the
//! selected `T_j`* (in fact within the single reaction type being swept), so
//! fewer chunks suffice — two for the ZGB model's axis-pair patterns instead
//! of five. The algorithm (a generalisation of Kortlüke's):
//!
//! ```text
//! for each step
//!   for |T| times
//!     select T_j ∈ T with probability K_Tj / K;
//!     select a reaction type from T_j with probability k_i / K_Tj;
//!     select P_i ∈ P
//!     for each site s ∈ P_i
//!       1. check if the reaction is enabled at s;
//!       2. if it is, execute it;
//!       3. advance the time;
//! ```

use std::sync::Arc;

use crate::partition::Partition;
use crate::partition_builder::checkerboard;
use crate::propensity::{draw_weighted, ChunkPropensityCache};
use psr_dmc::events::{Event, EventHook};
use psr_dmc::recorder::Recorder;
use psr_dmc::rsm::{RunStats, TimeMode};
use psr_dmc::sim::SimState;
use psr_kernel::{CompiledModel, SiteKernel};
use psr_lattice::{Offset, Site};
use psr_model::Model;
use psr_rng::{exponential, AliasTable, SimRng};

/// A partition of the reaction-type set into subsets `T_j`, each paired
/// with a site partition that is conflict-free for every type in the subset.
#[derive(Clone, Debug)]
pub struct TypePartition {
    /// For each subset: the reaction-type indices it contains.
    pub subsets: Vec<Vec<usize>>,
    /// The site partition used when sweeping a type of subset `j`.
    pub partitions: Vec<Partition>,
}

impl TypePartition {
    /// Number of subsets `|T|`.
    pub fn num_subsets(&self) -> usize {
        self.subsets.len()
    }

    /// Validate: subsets cover all reaction types exactly once and each
    /// partition satisfies the per-reaction non-overlap rule for its types.
    pub fn validate(&self, model: &Model) -> Result<(), String> {
        let mut seen = vec![false; model.num_reactions()];
        for (j, subset) in self.subsets.iter().enumerate() {
            for &ri in subset {
                if ri >= model.num_reactions() {
                    return Err(format!("subset {j} references unknown reaction {ri}"));
                }
                if seen[ri] {
                    return Err(format!("reaction {ri} appears in two subsets"));
                }
                seen[ri] = true;
                if !self.partitions[j].is_valid_for_reaction(model, ri) {
                    return Err(format!(
                        "partition of subset {j} conflicts for reaction {:?}",
                        model.reaction(ri).name()
                    ));
                }
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("reaction {missing} not assigned to any subset"));
        }
        Ok(())
    }

    /// Summed rate `K_Tj` of one subset.
    pub fn subset_rate(&self, model: &Model, j: usize) -> f64 {
        self.subsets[j]
            .iter()
            .map(|&ri| model.reaction(ri).rate())
            .sum()
    }
}

/// Build the axis type partition of Table II: subset 0 holds horizontal
/// pair patterns and all single-site types, subset 1 holds vertical pair
/// patterns; both use the 2-chunk checkerboard.
///
/// # Panics
///
/// Panics if a reaction's pattern is neither single-site nor an axis pair
/// (use a custom [`TypePartition`] then), or if the checkerboard does not
/// exist (odd dimensions).
pub fn axis_type_partition(model: &Model, dims: psr_lattice::Dims) -> TypePartition {
    let mut horizontal = Vec::new();
    let mut vertical = Vec::new();
    for (ri, rt) in model.reactions().iter().enumerate() {
        let offsets: Vec<Offset> = rt.transforms().iter().map(|t| t.offset).collect();
        let is_single = offsets.len() == 1;
        let is_h_pair = offsets.len() == 2 && offsets.iter().all(|o| o.dy == 0);
        let is_v_pair = offsets.len() == 2 && offsets.iter().all(|o| o.dx == 0);
        if is_single || is_h_pair {
            horizontal.push(ri);
        } else if is_v_pair {
            vertical.push(ri);
        } else {
            panic!(
                "reaction {:?} is neither single-site nor an axis pair; \
                 build a custom TypePartition",
                rt.name()
            );
        }
    }
    let board = checkerboard(dims);
    // Models without vertical (or horizontal) patterns get a single subset;
    // empty subsets would make the K_Tj selection degenerate.
    let mut subsets = Vec::new();
    let mut partitions = Vec::new();
    for subset in [horizontal, vertical] {
        if !subset.is_empty() {
            subsets.push(subset);
            partitions.push(board.clone());
        }
    }
    TypePartition {
        subsets,
        partitions,
    }
}

/// The type-partitioned NDCA simulator.
#[derive(Clone, Debug)]
pub struct TPndca<'m> {
    model: &'m Model,
    types: TypePartition,
    subset_alias: AliasTable,
    /// Per-subset alias over its member types.
    member_alias: Vec<AliasTable>,
    time_mode: TimeMode,
    /// Draw the chunk weighted by the swept type's enabled propensity
    /// instead of uniformly (the Ω×T analogue of
    /// [`ChunkSelection::WeightedByRates`](crate::pndca::ChunkSelection)).
    weighted_chunks: bool,
    /// Per-subset incremental propensity caches, built lazily on the first
    /// weighted step. All subsets' caches are updated on every executed
    /// reaction so none goes stale mid-step.
    caches: Option<Vec<ChunkPropensityCache>>,
    /// Compiled matcher; `None` when naive matching was requested.
    compiled: Option<Arc<CompiledModel>>,
    /// Lattice-bound kernel, built lazily on the first step.
    kernel: Option<SiteKernel>,
}

impl<'m> TPndca<'m> {
    /// Build the simulator; validates the type partition.
    ///
    /// # Panics
    ///
    /// Panics if the type partition is invalid for `model`.
    pub fn new(model: &'m Model, types: TypePartition) -> Self {
        types
            .validate(model)
            .unwrap_or_else(|e| panic!("invalid type partition: {e}"));
        let subset_rates: Vec<f64> = (0..types.num_subsets())
            .map(|j| types.subset_rate(model, j))
            .collect();
        let member_alias = types
            .subsets
            .iter()
            .map(|subset| {
                AliasTable::new(
                    &subset
                        .iter()
                        .map(|&ri| model.reaction(ri).rate())
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        TPndca {
            model,
            subset_alias: AliasTable::new(&subset_rates),
            member_alias,
            types,
            time_mode: TimeMode::Discretized,
            weighted_chunks: false,
            caches: None,
            compiled: CompiledModel::try_compile(model).map(Arc::new),
            kernel: None,
        }
    }

    /// Select the time-advance mode.
    pub fn with_time_mode(mut self, mode: TimeMode) -> Self {
        self.time_mode = mode;
        self
    }

    /// Disable (or re-enable) the compiled kernel and match patterns with
    /// the naive per-reaction scan. Trajectories are bit-identical either
    /// way; this is the escape hatch and the benchmark baseline.
    pub fn with_naive_matching(mut self, naive: bool) -> Self {
        self.kernel = None;
        self.compiled = if naive {
            None
        } else {
            CompiledModel::try_compile(self.model).map(Arc::new)
        };
        self
    }

    /// Draw each swept chunk weighted by `count·k` of the selected reaction
    /// type (served from per-subset [`ChunkPropensityCache`]s) instead of
    /// uniformly. Subset and member-type draws are unchanged; only the
    /// chunk draw gains the weighting, concentrating sweeps where the
    /// chosen type is actually enabled.
    pub fn with_weighted_chunks(mut self, yes: bool) -> Self {
        self.weighted_chunks = yes;
        self
    }

    /// The type partition in use.
    pub fn types(&self) -> &TypePartition {
        &self.types
    }

    #[inline]
    fn advance(&self, state: &mut SimState, rng: &mut SimRng) {
        let nk = state.num_sites() as f64 * self.model.total_rate();
        state.time += match self.time_mode {
            TimeMode::Stochastic => exponential(rng, nk),
            TimeMode::Discretized => 1.0 / nk,
        };
    }

    /// Build (or refresh) the per-subset propensity caches.
    fn take_fresh_caches(&mut self, state: &SimState) -> Vec<ChunkPropensityCache> {
        let mut caches = self.caches.take().unwrap_or_else(|| {
            (0..self.types.num_subsets())
                .map(|j| {
                    let mut c = ChunkPropensityCache::for_reactions(
                        self.model,
                        &self.types.subsets[j],
                        &self.types.partitions[j],
                        &state.lattice,
                    );
                    c.note_epoch(state.mutation_epoch());
                    c
                })
                .collect()
        });
        for (j, c) in caches.iter_mut().enumerate() {
            c.ensure_fresh(
                self.model,
                &self.types.partitions[j],
                &state.lattice,
                state.mutation_epoch(),
            );
        }
        caches
    }

    /// Take the lattice-bound kernel out of `self`, building or refreshing
    /// it for the current lattice; `None` when naive matching was requested.
    fn take_fresh_kernel(&mut self, state: &SimState) -> Option<SiteKernel> {
        let compiled = self.compiled.as_ref()?;
        let mut kernel = match self.kernel.take() {
            Some(k) if k.dims() == state.lattice.dims() => k,
            _ => {
                let mut k = SiteKernel::new(Arc::clone(compiled), &state.lattice);
                k.note_epoch(state.mutation_epoch());
                k
            }
        };
        kernel.ensure_fresh(&state.lattice, state.mutation_epoch());
        Some(kernel)
    }

    /// One step: `|T|` subset draws, each sweeping one chunk with one
    /// reaction type.
    pub fn step(
        &mut self,
        state: &mut SimState,
        rng: &mut SimRng,
        hook: &mut impl EventHook,
    ) -> RunStats {
        let mut stats = RunStats::default();
        let mut changes: Vec<(Site, u8, u8)> = Vec::with_capacity(4);
        let mut caches = if self.weighted_chunks {
            Some(self.take_fresh_caches(state))
        } else {
            None
        };
        let mut kernel = self.take_fresh_kernel(state);
        let mut weights: Vec<f64> = Vec::new();
        for _ in 0..self.types.num_subsets() {
            let j = self.subset_alias.sample(rng);
            let member = self.member_alias[j].sample(rng);
            let ri = self.types.subsets[j][member];
            let rt = self.model.reaction(ri);
            let partition = &self.types.partitions[j];
            let chunk = match caches.as_ref() {
                Some(cs) => {
                    cs[j].member_weights_into(member, &mut weights);
                    draw_weighted(rng, &weights)
                }
                None => rng.index(partition.num_chunks()),
            };
            for idx in 0..partition.chunk(chunk).len() {
                let site = partition.chunk(chunk)[idx];
                changes.clear();
                // The enabled check consumes no randomness, so the compiled
                // and naive arms produce bit-identical trajectories.
                let executed = if let Some(k) = kernel.as_mut() {
                    let enabled = k.is_enabled(site, ri);
                    if enabled {
                        rt.execute(&mut state.lattice, site, &mut changes);
                        state.apply_changes(&changes);
                        k.apply_changes(&state.lattice, &changes);
                        k.note_epoch(state.mutation_epoch());
                    }
                    enabled
                } else {
                    let executed = rt.try_execute(&mut state.lattice, site, &mut changes);
                    if executed {
                        state.apply_changes(&changes);
                    }
                    executed
                };
                if executed {
                    if let Some(cs) = caches.as_mut() {
                        // A change can flip enabledness of types in every
                        // subset, so all caches absorb it.
                        for (jj, c) in cs.iter_mut().enumerate() {
                            match kernel.as_ref() {
                                Some(k) => c.apply_changes_with_kernel(
                                    k,
                                    &self.types.partitions[jj],
                                    &changes,
                                ),
                                None => c.apply_changes(
                                    self.model,
                                    &self.types.partitions[jj],
                                    &state.lattice,
                                    &changes,
                                ),
                            }
                            c.note_epoch(state.mutation_epoch());
                        }
                    }
                }
                self.advance(state, rng);
                stats.trials += 1;
                stats.executed += executed as u64;
                hook.on_event(Event {
                    time: state.time,
                    site,
                    reaction: ri,
                    executed,
                });
            }
        }
        if let Some(cs) = caches {
            #[cfg(debug_assertions)]
            for (j, c) in cs.iter().enumerate() {
                c.assert_matches_scan(self.model, &self.types.partitions[j], &state.lattice);
            }
            self.caches = Some(cs);
        }
        self.kernel = kernel;
        stats
    }

    /// Run `steps` steps with optional recording.
    pub fn run_steps(
        &mut self,
        state: &mut SimState,
        rng: &mut SimRng,
        steps: u64,
        mut recorder: Option<&mut Recorder>,
        hook: &mut impl EventHook,
    ) -> RunStats {
        let mut stats = RunStats::default();
        if let Some(rec) = recorder.as_deref_mut() {
            rec.record(state.time, &state.coverage);
        }
        for _ in 0..steps {
            let s = self.step(state, rng, hook);
            stats.trials += s.trials;
            stats.executed += s.executed;
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(state.time, &state.coverage);
            }
        }
        stats
    }

    /// Run whole steps until `t_end`.
    pub fn run_until(
        &mut self,
        state: &mut SimState,
        rng: &mut SimRng,
        t_end: f64,
        mut recorder: Option<&mut Recorder>,
        hook: &mut impl EventHook,
    ) -> RunStats {
        let mut stats = RunStats::default();
        if let Some(rec) = recorder.as_deref_mut() {
            rec.record(state.time, &state.coverage);
        }
        // Half-a-trial tolerance: with discretised time, N float additions
        // of 1/(N K) can land just below t_end and would trigger a spurious
        // extra step.
        let eps = 0.5 / (state.num_sites() as f64 * self.model.total_rate());
        while state.time < t_end - eps {
            let s = self.step(state, rng, hook);
            stats.trials += s.trials;
            stats.executed += s.executed;
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(state.time.min(t_end), &state.coverage);
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_dmc::events::NoHook;
    use psr_lattice::{Dims, Lattice};
    use psr_model::library::zgb::zgb_ziff;
    use psr_rng::rng_from_seed;

    #[test]
    fn zgb_axis_partition_matches_table2() {
        // Table II: T0 = {RtCO+O[0], RtCO+O[2], RtO2[0], RtCO},
        //           T1 = {RtCO+O[1], RtCO+O[3], RtO2[1]}.
        let model = zgb_ziff(0.5, 1.0);
        let tp = axis_type_partition(&model, Dims::square(10));
        assert_eq!(tp.num_subsets(), 2);
        let names = |j: usize| -> Vec<&str> {
            tp.subsets[j]
                .iter()
                .map(|&ri| model.reaction(ri).name())
                .collect()
        };
        let t0 = names(0);
        let t1 = names(1);
        assert!(t0.contains(&"RtCO"));
        assert!(t0.contains(&"RtO2[0]"));
        assert!(t0.contains(&"RtCO+O[0]"));
        assert!(t0.contains(&"RtCO+O[2]"));
        assert!(t1.contains(&"RtO2[1]"));
        assert!(t1.contains(&"RtCO+O[1]"));
        assert!(t1.contains(&"RtCO+O[3]"));
        assert_eq!(t0.len() + t1.len(), 7);
        assert!(tp.validate(&model).is_ok());
    }

    #[test]
    fn two_chunks_suffice() {
        let model = zgb_ziff(0.5, 1.0);
        let tp = axis_type_partition(&model, Dims::square(10));
        assert_eq!(tp.partitions[0].num_chunks(), 2);
    }

    #[test]
    fn subset_rates_sum_to_k() {
        let model = zgb_ziff(0.4, 2.0);
        let tp = axis_type_partition(&model, Dims::square(10));
        let total: f64 = (0..2).map(|j| tp.subset_rate(&model, j)).sum();
        assert!((total - model.total_rate()).abs() < 1e-12);
    }

    #[test]
    fn step_sweeps_half_lattice_per_subset_draw() {
        let model = zgb_ziff(0.5, 1.0);
        let d = Dims::square(10);
        let tp = axis_type_partition(&model, d);
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        let mut rng = rng_from_seed(1);
        let mut sim = TPndca::new(&model, tp);
        let stats = sim.step(&mut state, &mut rng, &mut NoHook);
        // 2 subset draws × one 50-site chunk each = 100 trials = N.
        assert_eq!(stats.trials, 100);
    }

    #[test]
    fn zgb_kinetics_reach_mixed_coverage() {
        let model = zgb_ziff(0.5, 5.0);
        let d = Dims::square(20);
        let tp = axis_type_partition(&model, d);
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        let mut rng = rng_from_seed(2);
        let mut sim = TPndca::new(&model, tp);
        sim.run_steps(&mut state, &mut rng, 30, None, &mut NoHook);
        assert!(state.coverage.matches(&state.lattice));
        let occupied = 1.0 - state.coverage.fraction(0);
        assert!(occupied > 0.1, "surface stayed empty");
    }

    #[test]
    fn weighted_chunks_reach_mixed_coverage_with_exact_caches() {
        // Exercises the per-subset caches (and, in debug builds, the
        // assert_matches_scan consistency check after every step).
        let model = zgb_ziff(0.5, 5.0);
        let d = Dims::square(20);
        let tp = axis_type_partition(&model, d);
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        let mut rng = rng_from_seed(3);
        let mut sim = TPndca::new(&model, tp).with_weighted_chunks(true);
        let stats = sim.run_steps(&mut state, &mut rng, 30, None, &mut NoHook);
        assert!(stats.executed > 0);
        assert!(state.coverage.matches(&state.lattice));
        let occupied = 1.0 - state.coverage.fraction(0);
        assert!(occupied > 0.1, "surface stayed empty");
    }

    #[test]
    fn invalid_type_partition_rejected() {
        // Claiming a row partition is safe for vertical pairs must fail.
        let model = zgb_ziff(0.5, 1.0);
        let d = Dims::square(4);
        let labels: Vec<u32> = (0..16).map(|i| i / 4).collect();
        let rows = Partition::from_labels(d, &labels);
        let tp = TypePartition {
            subsets: vec![(0..model.num_reactions()).collect()],
            partitions: vec![rows],
        };
        assert!(tp.validate(&model).is_err());
    }

    #[test]
    fn validate_catches_missing_and_duplicate_types() {
        let model = zgb_ziff(0.5, 1.0);
        let d = Dims::square(4);
        let board = checkerboard(d);
        let missing = TypePartition {
            subsets: vec![vec![0, 1]],
            partitions: vec![board.clone()],
        };
        assert!(missing
            .validate(&model)
            .unwrap_err()
            .contains("not assigned"));
        let duplicate = TypePartition {
            subsets: vec![vec![0, 0, 1, 2, 3, 4, 5, 6]],
            partitions: vec![board],
        };
        assert!(duplicate
            .validate(&model)
            .unwrap_err()
            .contains("two subsets"));
    }
}
