//! L-PNDCA: the general partitioned structure with a trial budget `L`
//! (paper §5, "Opportunities for improvements").
//!
//! ```text
//! for each step
//!   choose a partition P;
//!   set trials to 0;
//!   repeat
//!     select P_i ∈ P (probability |P_i| / N);
//!     select L, 1 ≤ L ≤ (N − trials);
//!     set trials to trials + L;
//!     for L sites ∈ P_i           // sites drawn randomly within the chunk
//!       1. select a reaction type with probability k_i / K;
//!       2. check if the reaction is enabled at the site;
//!       3. if it is, execute it;
//!       4. advance the time;
//!   until trials = N
//! ```
//!
//! Special parameter choices recover the other algorithms (paper §5/§6):
//!
//! - `m = 1, L = N` (one chunk holding the whole lattice) — every trial
//!   picks a uniformly random site: **exactly RSM** (Fig 8);
//! - `m = N, L = 1` (singleton chunks, random chunk per trial) — again
//!   uniformly random sites: **exactly RSM** (Fig 8);
//! - `L = 1` with any partition — chunk choice weighted by size makes each
//!   trial's site uniform: matches RSM closely (Fig 9a);
//! - large `L` — long bursts inside one chunk postpone the other chunks and
//!   bias the kinetics (Fig 9b);
//! - [`ChunkVisit::RandomOnce`] with `L = N/m` — every chunk exactly once
//!   per step in random order; preserves oscillations even for the maximal
//!   `L` (Fig 10).

use std::sync::Arc;

use crate::partition::Partition;
use psr_dmc::events::{Event, EventHook};
use psr_dmc::recorder::Recorder;
use psr_dmc::rsm::{RunStats, TimeMode};
use psr_dmc::sim::SimState;
use psr_kernel::{CompiledModel, SiteKernel};
use psr_lattice::Site;
use psr_model::Model;
use psr_rng::{exponential, sample::shuffle, AliasTable, SimRng};

/// How chunks are chosen within a step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkVisit {
    /// Draw a chunk with probability `|P_i| / N` for each burst (the
    /// paper's default L-PNDCA reading).
    SizeWeighted,
    /// Visit every chunk exactly once per step, in a fresh random order,
    /// with `L = |P_i|` trials each (the Fig 10 variant).
    RandomOnce,
}

impl std::fmt::Display for ChunkVisit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ChunkVisit::SizeWeighted => "size-weighted",
            ChunkVisit::RandomOnce => "random-once",
        })
    }
}

impl std::str::FromStr for ChunkVisit {
    type Err = String;

    /// Parse the kebab-case names printed by `Display` (batch spec files).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "size-weighted" => Ok(ChunkVisit::SizeWeighted),
            "random-once" => Ok(ChunkVisit::RandomOnce),
            other => Err(format!(
                "unknown chunk visit {other:?} (expected size-weighted or random-once)"
            )),
        }
    }
}

/// L-PNDCA simulator.
#[derive(Clone, Debug)]
pub struct LPndca<'m, 'p> {
    model: &'m Model,
    partition: &'p Partition,
    alias: AliasTable,
    /// Trial budget per chunk visit (clamped to the remaining step budget).
    l: usize,
    visit: ChunkVisit,
    time_mode: TimeMode,
    /// Cumulative chunk-size weights for size-proportional selection.
    size_cumulative: Vec<f64>,
    /// Compiled matcher; `None` when naive matching was requested.
    compiled: Option<Arc<CompiledModel>>,
    /// Lattice-bound kernel, built lazily on the first step.
    kernel: Option<SiteKernel>,
}

impl<'m, 'p> LPndca<'m, 'p> {
    /// L-PNDCA with trial budget `l` per chunk visit.
    ///
    /// The partition is *not* required to satisfy the non-overlap
    /// restriction here: sequential L-PNDCA is well defined on any cover,
    /// and the paper's limit cases (`m = 1`, the whole lattice as one
    /// chunk) deliberately violate it. Conflict-freedom only becomes a
    /// hard precondition in `psr-parallel`, which enforces it.
    ///
    /// # Panics
    ///
    /// Panics if `l == 0`.
    pub fn new(model: &'m Model, partition: &'p Partition, l: usize) -> Self {
        assert!(l > 0, "L must be at least 1");
        let mut acc = 0.0;
        let size_cumulative = partition
            .chunks()
            .iter()
            .map(|c| {
                acc += c.len() as f64;
                acc
            })
            .collect();
        LPndca {
            model,
            partition,
            alias: AliasTable::new(&model.rate_weights()),
            l,
            visit: ChunkVisit::SizeWeighted,
            time_mode: TimeMode::Discretized,
            size_cumulative,
            compiled: CompiledModel::try_compile(model).map(Arc::new),
            kernel: None,
        }
    }

    /// Disable (or re-enable) the compiled kernel and match patterns with
    /// the naive per-reaction scan. Trajectories are bit-identical either
    /// way; this is the escape hatch and the benchmark baseline.
    pub fn with_naive_matching(mut self, naive: bool) -> Self {
        self.kernel = None;
        self.compiled = if naive {
            None
        } else {
            CompiledModel::try_compile(self.model).map(Arc::new)
        };
        self
    }

    /// Select the chunk-visit mode.
    pub fn with_visit(mut self, visit: ChunkVisit) -> Self {
        self.visit = visit;
        self
    }

    /// Select the time-advance mode.
    pub fn with_time_mode(mut self, mode: TimeMode) -> Self {
        self.time_mode = mode;
        self
    }

    /// The trial budget `L`.
    pub fn l(&self) -> usize {
        self.l
    }

    fn pick_chunk_by_size(&self, rng: &mut SimRng) -> usize {
        let total = *self.size_cumulative.last().expect("non-empty partition");
        let x = rng.f64() * total;
        self.size_cumulative.partition_point(|&c| c <= x)
    }

    /// Take the lattice-bound kernel out of `self`, building or refreshing
    /// it for the current lattice; `None` when naive matching was requested.
    fn take_fresh_kernel(&mut self, state: &SimState) -> Option<SiteKernel> {
        let compiled = self.compiled.as_ref()?;
        let mut kernel = match self.kernel.take() {
            Some(k) if k.dims() == state.lattice.dims() => k,
            _ => {
                let mut k = SiteKernel::new(Arc::clone(compiled), &state.lattice);
                k.note_epoch(state.mutation_epoch());
                k
            }
        };
        kernel.ensure_fresh(&state.lattice, state.mutation_epoch());
        Some(kernel)
    }

    /// `count` trials at random sites of `chunk`. `nk` and `dt_disc` are the
    /// loop-invariant `N·K` and `1/(N·K)` hoisted by the caller.
    #[allow(clippy::too_many_arguments)]
    fn burst(
        &self,
        chunk: usize,
        count: usize,
        state: &mut SimState,
        rng: &mut SimRng,
        changes: &mut Vec<(Site, u8, u8)>,
        stats: &mut RunStats,
        hook: &mut impl EventHook,
        mut kernel: Option<&mut SiteKernel>,
        nk: f64,
        dt_disc: f64,
    ) {
        let sites = self.partition.chunk(chunk);
        for _ in 0..count {
            let site = sites[rng.index(sites.len())];
            let reaction = self.alias.sample(rng);
            changes.clear();
            // The enabled check consumes no randomness, so the compiled and
            // naive arms produce bit-identical trajectories.
            let executed = if let Some(k) = kernel.as_deref_mut() {
                let enabled = k.is_enabled(site, reaction);
                if enabled {
                    self.model
                        .reaction(reaction)
                        .execute(&mut state.lattice, site, changes);
                    state.apply_changes(changes);
                    k.apply_changes(&state.lattice, changes);
                    k.note_epoch(state.mutation_epoch());
                }
                enabled
            } else {
                let executed =
                    self.model
                        .reaction(reaction)
                        .try_execute(&mut state.lattice, site, changes);
                if executed {
                    state.apply_changes(changes);
                }
                executed
            };
            state.time += match self.time_mode {
                TimeMode::Stochastic => exponential(rng, nk),
                TimeMode::Discretized => dt_disc,
            };
            stats.trials += 1;
            stats.executed += executed as u64;
            hook.on_event(Event {
                time: state.time,
                site,
                reaction,
                executed,
            });
        }
    }

    /// Run one step (`N` trials in total).
    pub fn step(
        &mut self,
        state: &mut SimState,
        rng: &mut SimRng,
        hook: &mut impl EventHook,
    ) -> RunStats {
        let mut stats = RunStats::default();
        let mut changes = Vec::with_capacity(4);
        let n = state.num_sites();
        let nk = n as f64 * self.model.total_rate();
        let dt_disc = 1.0 / nk;
        let mut kernel = self.take_fresh_kernel(state);
        match self.visit {
            ChunkVisit::SizeWeighted => {
                let mut trials = 0usize;
                while trials < n {
                    let chunk = self.pick_chunk_by_size(rng);
                    let l = self.l.min(n - trials);
                    trials += l;
                    self.burst(
                        chunk,
                        l,
                        state,
                        rng,
                        &mut changes,
                        &mut stats,
                        hook,
                        kernel.as_mut(),
                        nk,
                        dt_disc,
                    );
                }
            }
            ChunkVisit::RandomOnce => {
                let m = self.partition.num_chunks();
                let mut order: Vec<usize> = (0..m).collect();
                shuffle(rng, &mut order);
                for &chunk in &order {
                    let l = self.partition.chunk(chunk).len();
                    self.burst(
                        chunk,
                        l,
                        state,
                        rng,
                        &mut changes,
                        &mut stats,
                        hook,
                        kernel.as_mut(),
                        nk,
                        dt_disc,
                    );
                }
            }
        }
        self.kernel = kernel;
        stats
    }

    /// Run `steps` steps with optional recording.
    pub fn run_steps(
        &mut self,
        state: &mut SimState,
        rng: &mut SimRng,
        steps: u64,
        mut recorder: Option<&mut Recorder>,
        hook: &mut impl EventHook,
    ) -> RunStats {
        let mut stats = RunStats::default();
        if let Some(rec) = recorder.as_deref_mut() {
            rec.record(state.time, &state.coverage);
        }
        for _ in 0..steps {
            let s = self.step(state, rng, hook);
            stats.trials += s.trials;
            stats.executed += s.executed;
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(state.time, &state.coverage);
            }
        }
        stats
    }

    /// Run whole steps until `t_end`.
    pub fn run_until(
        &mut self,
        state: &mut SimState,
        rng: &mut SimRng,
        t_end: f64,
        mut recorder: Option<&mut Recorder>,
        hook: &mut impl EventHook,
    ) -> RunStats {
        let mut stats = RunStats::default();
        if let Some(rec) = recorder.as_deref_mut() {
            rec.record(state.time, &state.coverage);
        }
        // Half-a-trial tolerance: with discretised time, N float additions
        // of 1/(N K) can land just below t_end and would trigger a spurious
        // extra step.
        let eps = 0.5 / (state.num_sites() as f64 * self.model.total_rate());
        while state.time < t_end - eps {
            let s = self.step(state, rng, hook);
            stats.trials += s.trials;
            stats.executed += s.executed;
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(state.time.min(t_end), &state.coverage);
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition_builder::{five_coloring, single_chunk, singleton_chunks};
    use psr_dmc::events::NoHook;
    use psr_lattice::{Dims, Lattice};
    use psr_model::library::zgb::zgb_ziff;
    use psr_model::ModelBuilder;
    use psr_rng::rng_from_seed;

    fn adsorption(rate: f64) -> Model {
        ModelBuilder::new(&["*", "A"])
            .reaction("ads", rate, |r| {
                r.site((0, 0), "*", "A");
            })
            .build()
    }

    #[test]
    fn step_always_does_n_trials() {
        let model = zgb_ziff(0.5, 2.0);
        let d = Dims::square(10);
        let p = five_coloring(d);
        for l in [1usize, 7, 20, 100] {
            let mut state = SimState::new(Lattice::filled(d, 0), &model);
            let mut rng = rng_from_seed(l as u64);
            let stats = LPndca::new(&model, &p, l).step(&mut state, &mut rng, &mut NoHook);
            assert_eq!(stats.trials, 100, "L = {l}");
        }
    }

    #[test]
    fn random_once_does_n_trials_and_visits_all_chunks() {
        let model = zgb_ziff(0.5, 2.0);
        let d = Dims::square(10);
        let p = five_coloring(d);
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        let mut rng = rng_from_seed(9);
        let mut lp = LPndca::new(&model, &p, 20).with_visit(ChunkVisit::RandomOnce);
        let mut chunk_hits = vec![0u32; 5];
        let stats = lp.step(&mut state, &mut rng, &mut |e: Event| {
            chunk_hits[p.chunk_of(e.site)] += 1;
        });
        assert_eq!(stats.trials, 100);
        assert!(chunk_hits.iter().all(|&h| h == 20), "{chunk_hits:?}");
    }

    #[test]
    fn singleton_partition_with_l1_matches_rsm_statistics() {
        // m = N, L = 1: every trial picks a uniform random site — that IS
        // RSM. Verify the Langmuir curve.
        let model = adsorption(1.0);
        let d = Dims::square(40);
        let p = singleton_chunks(d);
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        let mut rng = rng_from_seed(10);
        LPndca::new(&model, &p, 1).run_until(&mut state, &mut rng, 1.0, None, &mut NoHook);
        let theta = state.coverage.fraction(1);
        let expected = 1.0 - (-1.0f64).exp();
        assert!((theta - expected).abs() < 0.03, "coverage {theta}");
    }

    #[test]
    fn single_chunk_with_full_l_matches_rsm_statistics() {
        // m = 1, L = N: one burst of N uniform draws — also RSM.
        let model = adsorption(1.0);
        let d = Dims::square(40);
        let p = single_chunk(d);
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        let mut rng = rng_from_seed(11);
        LPndca::new(&model, &p, 1600).run_until(&mut state, &mut rng, 1.0, None, &mut NoHook);
        let theta = state.coverage.fraction(1);
        let expected = 1.0 - (-1.0f64).exp();
        assert!((theta - expected).abs() < 0.03, "coverage {theta}");
    }

    #[test]
    fn l_clamps_to_remaining_budget() {
        // L = 64 on N = 100: bursts 64 + 36.
        let model = zgb_ziff(0.5, 2.0);
        let d = Dims::square(10);
        let p = five_coloring(d);
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        let mut rng = rng_from_seed(12);
        let stats = LPndca::new(&model, &p, 64).step(&mut state, &mut rng, &mut NoHook);
        assert_eq!(stats.trials, 100);
    }

    #[test]
    fn coverage_stays_consistent() {
        let model = zgb_ziff(0.4, 3.0);
        let d = Dims::square(15);
        let p = singleton_chunks(d);
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        let mut rng = rng_from_seed(13);
        LPndca::new(&model, &p, 5).run_steps(&mut state, &mut rng, 10, None, &mut NoHook);
        assert!(state.coverage.matches(&state.lattice));
    }

    #[test]
    #[should_panic(expected = "L must be at least 1")]
    fn zero_l_panics() {
        let model = adsorption(1.0);
        let d = Dims::square(5);
        let p = five_coloring(d);
        LPndca::new(&model, &p, 0);
    }
}
