//! Cellular-automaton simulation methods with partitions — the paper's
//! contribution (§4–5).
//!
//! The Master-Equation algorithms in `psr-dmc` are inherently sequential;
//! the CA family trades kinetic accuracy for parallel structure:
//!
//! - [`ndca`] — the Non-Deterministic Cellular Automaton: every site is
//!   visited once per step, reaction types chosen with probability
//!   `k_i / K` (§4);
//! - [`bca`] — Block Cellular Automata with shifting block boundaries, the
//!   classical conflict-avoidance scheme the partition concept generalises
//!   (§5, Fig 3);
//! - [`partition`] — partitions of the lattice into conflict-free chunks and
//!   their validation (§5, the non-overlap restriction);
//! - [`partition_builder`] — the 5-chunk von Neumann partition of Fig 4
//!   (a perfect Lee code), greedy graph-coloring for arbitrary models,
//!   checkerboards, and the degenerate `m = 1` / `m = N` partitions;
//! - [`pndca`] — the Partitioned NDCA with the four chunk-selection
//!   strategies of §5;
//! - [`propensity`] — the incremental per-chunk propensity cache that makes
//!   the weighted chunk selection O(affected) per event instead of
//!   O(N·|T|) per draw;
//! - [`lpndca`] — L-PNDCA: the general structure with a per-chunk trial
//!   budget `L` interpolating between PNDCA and RSM;
//! - [`tpndca`] — the Ω×T approach: partitioning the *reaction types* too,
//!   which shrinks the partition to 2 chunks for pair-reaction models
//!   (§5, Table II / Fig 6, the Kortlüke generalisation);
//! - [`conflict`] — the conflict detector used to demonstrate Fig 2 and to
//!   check partition safety in tests and in the parallel executor;
//! - [`splitting`] — fractional-step operator-splitting KMC
//!   (Arampatzis/Katsoulakis/Plecháč): exact VSSM within rectangular blocks
//!   for a window Δt, Lie or Strang group schedule — a *tunably accurate*
//!   point between exact DMC and the approximate CA family.

#![warn(missing_docs)]

pub mod bca;
pub mod conflict;
pub mod lpndca;
pub mod ndca;
pub mod partition;
pub mod partition_builder;
pub mod pndca;
pub mod propensity;
pub mod splitting;
pub mod tpndca;

pub use conflict::ConflictDetector;
pub use lpndca::{ChunkVisit, LPndca};
pub use ndca::Ndca;
pub use partition::Partition;
pub use partition_builder::{
    checkerboard, five_coloring, five_coloring_alt, greedy_coloring, seven_coloring, single_chunk,
    singleton_chunks,
};
pub use pndca::{run_alternating, ChunkSelection, Pndca};
pub use propensity::ChunkPropensityCache;
pub use splitting::{squarest_grid, FractionalStepKmc, Schedule, SplitPlan, FS_STREAM_NAMESPACE};
pub use tpndca::{axis_type_partition, TPndca, TypePartition};
