//! The Partitioned NDCA (paper §5).
//!
//! ```text
//! for each step
//!   choose a partition P;
//!   for all P_i ∈ P
//!     for each site s ∈ P_i
//!       1. select a reaction type with probability k_i / K;
//!       2. check if the reaction is enabled at s;
//!       3. if it is, execute it;
//!       4. advance the time;
//! ```
//!
//! Because the chunk is conflict-free, "for each site s ∈ P_i" can run in
//! parallel — that is what `psr-parallel` exploits. This module is the
//! sequential reference implementation, with the four chunk-selection
//! strategies of §5 ("Opportunities for improvements"):
//!
//! 1. all chunks in a predefined order,
//! 2. all chunks in random order,
//! 3. `|P|` random chunk draws with replacement (probability `1/|P|` each),
//! 4. weighted selection by the summed rates of enabled reactions per chunk.

use std::sync::Arc;

use crate::partition::Partition;
use crate::propensity::ChunkPropensityCache;
use psr_dmc::events::{Event, EventHook};
use psr_dmc::recorder::Recorder;
use psr_dmc::rsm::{RunStats, TimeMode};
use psr_dmc::sim::SimState;
use psr_kernel::{CompiledModel, SiteKernel};
use psr_lattice::Site;
use psr_model::Model;
use psr_rng::{exponential, sample::shuffle, AliasTable, SimRng};

/// Chunk-selection strategy (§5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkSelection {
    /// All chunks in index order, once per step.
    InOrder,
    /// All chunks exactly once per step, in a fresh random order.
    RandomOrder,
    /// `|P|` independent uniform draws per step (chunks may repeat/skip).
    RandomWithReplacement,
    /// `|P|` draws weighted by each chunk's summed enabled-reaction rate,
    /// served from the incremental [`ChunkPropensityCache`] (O(|P|) per
    /// draw, O(affected) per executed event). See
    /// [`Pndca::with_scanned_weights`] for the scanning baseline.
    WeightedByRates,
}

impl std::fmt::Display for ChunkSelection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ChunkSelection::InOrder => "in-order",
            ChunkSelection::RandomOrder => "random-order",
            ChunkSelection::RandomWithReplacement => "random-with-replacement",
            ChunkSelection::WeightedByRates => "weighted",
        })
    }
}

impl std::str::FromStr for ChunkSelection {
    type Err = String;

    /// Parse the kebab-case names printed by `Display` (batch spec files).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "in-order" => Ok(ChunkSelection::InOrder),
            "random-order" => Ok(ChunkSelection::RandomOrder),
            "random-with-replacement" => Ok(ChunkSelection::RandomWithReplacement),
            "weighted" => Ok(ChunkSelection::WeightedByRates),
            other => Err(format!(
                "unknown chunk selection {other:?} (expected in-order, random-order, \
                 random-with-replacement or weighted)"
            )),
        }
    }
}

/// PNDCA simulator over a fixed partition.
#[derive(Clone, Debug)]
pub struct Pndca<'m, 'p> {
    model: &'m Model,
    partition: &'p Partition,
    alias: AliasTable,
    time_mode: TimeMode,
    selection: ChunkSelection,
    /// Incremental chunk weights, built lazily on the first weighted step.
    cache: Option<ChunkPropensityCache>,
    /// Recompute weights by chunk scans instead of the cache (the
    /// O(N·|T|)-per-draw baseline; kept for benchmarking the cache).
    scan_weights: bool,
    /// Compiled matcher; `None` when naive matching was requested.
    compiled: Option<Arc<CompiledModel>>,
    /// Lattice-bound kernel, built lazily on the first step.
    kernel: Option<SiteKernel>,
}

impl<'m, 'p> Pndca<'m, 'p> {
    /// PNDCA with in-order chunk sweeps and discretised time.
    ///
    /// The partition is not required to satisfy the non-overlap
    /// restriction: this sequential reference implementation is well
    /// defined on any cover. Conflict-freedom is what makes the chunk
    /// sweep *parallelisable*, and `psr-parallel` enforces it before
    /// spawning threads.
    pub fn new(model: &'m Model, partition: &'p Partition) -> Self {
        Pndca {
            model,
            partition,
            alias: AliasTable::new(&model.rate_weights()),
            time_mode: TimeMode::Discretized,
            selection: ChunkSelection::InOrder,
            cache: None,
            scan_weights: false,
            compiled: CompiledModel::try_compile(model).map(Arc::new),
            kernel: None,
        }
    }

    /// Disable (or re-enable) the compiled kernel and match patterns with
    /// the naive per-reaction scan. Trajectories are bit-identical either
    /// way; this is the escape hatch and the benchmark baseline.
    pub fn with_naive_matching(mut self, naive: bool) -> Self {
        self.kernel = None;
        self.compiled = if naive {
            None
        } else {
            CompiledModel::try_compile(self.model).map(Arc::new)
        };
        self
    }

    /// Select the chunk-selection strategy.
    pub fn with_selection(mut self, selection: ChunkSelection) -> Self {
        self.selection = selection;
        self
    }

    /// Force [`ChunkSelection::WeightedByRates`] to rescan every chunk for
    /// every draw instead of using the incremental cache.
    ///
    /// Both paths compute each weight as `Σ_Rt count·k_Rt` in reaction
    /// order, so they consume identical random numbers and sweep identical
    /// chunk sequences — this switch trades speed only, never trajectories,
    /// which is what makes it a meaningful benchmark baseline.
    pub fn with_scanned_weights(mut self, yes: bool) -> Self {
        self.scan_weights = yes;
        self
    }

    /// Select the time-advance mode.
    pub fn with_time_mode(mut self, mode: TimeMode) -> Self {
        self.time_mode = mode;
        self
    }

    /// The partition in use.
    pub fn partition(&self) -> &Partition {
        self.partition
    }

    /// Simulate one chunk: one trial per site, sweeping the chunk.
    ///
    /// When a kernel is passed, the enabled check is one table load and the
    /// changes are folded back into the kernel; when a propensity cache is
    /// passed, every executed reaction's changes are folded into it too,
    /// keeping the chunk weights exact as the sweep proceeds. `nk` and
    /// `dt_disc` are the loop-invariant `N·K` and `1/(N·K)` hoisted by the
    /// caller.
    #[allow(clippy::too_many_arguments)]
    fn sweep_chunk(
        &self,
        chunk: usize,
        state: &mut SimState,
        rng: &mut SimRng,
        changes: &mut Vec<(Site, u8, u8)>,
        stats: &mut RunStats,
        hook: &mut impl EventHook,
        mut cache: Option<&mut ChunkPropensityCache>,
        mut kernel: Option<&mut SiteKernel>,
        nk: f64,
        dt_disc: f64,
    ) {
        let sites = self.partition.chunk(chunk);
        for &site in sites {
            let reaction = self.alias.sample(rng);
            changes.clear();
            // The enabled check consumes no randomness, so the compiled and
            // naive arms produce bit-identical trajectories.
            let executed = if let Some(k) = kernel.as_deref_mut() {
                let enabled = k.is_enabled(site, reaction);
                if enabled {
                    self.model
                        .reaction(reaction)
                        .execute(&mut state.lattice, site, changes);
                    state.apply_changes(changes);
                    k.apply_changes(&state.lattice, changes);
                    k.note_epoch(state.mutation_epoch());
                }
                enabled
            } else {
                let executed =
                    self.model
                        .reaction(reaction)
                        .try_execute(&mut state.lattice, site, changes);
                if executed {
                    state.apply_changes(changes);
                }
                executed
            };
            if executed {
                if let Some(c) = cache.as_deref_mut() {
                    match kernel.as_deref() {
                        Some(k) => c.apply_changes_with_kernel(k, self.partition, changes),
                        None => {
                            c.apply_changes(self.model, self.partition, &state.lattice, changes)
                        }
                    }
                    c.note_epoch(state.mutation_epoch());
                }
            }
            state.time += match self.time_mode {
                TimeMode::Stochastic => exponential(rng, nk),
                TimeMode::Discretized => dt_disc,
            };
            stats.trials += 1;
            stats.executed += executed as u64;
            hook.on_event(Event {
                time: state.time,
                site,
                reaction,
                executed,
            });
        }
    }

    /// Summed rate of enabled reactions within one chunk (strategy 4),
    /// recomputed by scanning the chunk. Counts enabled sites per reaction
    /// and sums `count·k` in reaction order — the exact formula the cache
    /// uses, so scan and cache weights agree bit-for-bit.
    fn chunk_propensity(&self, chunk: usize, state: &SimState) -> f64 {
        ChunkPropensityCache::scan_chunk_weight_all(
            self.model,
            self.partition,
            &state.lattice,
            chunk,
        )
    }

    /// Build (or refresh) the propensity cache for the current lattice.
    fn take_fresh_cache(&mut self, state: &SimState) -> ChunkPropensityCache {
        let mut cache = self.cache.take().unwrap_or_else(|| {
            let mut c = ChunkPropensityCache::new(self.model, self.partition, &state.lattice);
            c.note_epoch(state.mutation_epoch());
            c
        });
        cache.ensure_fresh(
            self.model,
            self.partition,
            &state.lattice,
            state.mutation_epoch(),
        );
        cache
    }

    /// Take the lattice-bound kernel out of `self`, building or refreshing
    /// it for the current lattice; `None` when naive matching was requested.
    fn take_fresh_kernel(&mut self, state: &SimState) -> Option<SiteKernel> {
        let compiled = self.compiled.as_ref()?;
        let mut kernel = match self.kernel.take() {
            Some(k) if k.dims() == state.lattice.dims() => k,
            _ => {
                let mut k = SiteKernel::new(Arc::clone(compiled), &state.lattice);
                k.note_epoch(state.mutation_epoch());
                k
            }
        };
        kernel.ensure_fresh(&state.lattice, state.mutation_epoch());
        Some(kernel)
    }

    /// Run one PNDCA step (each strategy performs `|P|` chunk sweeps).
    pub fn step(
        &mut self,
        state: &mut SimState,
        rng: &mut SimRng,
        hook: &mut impl EventHook,
    ) -> RunStats {
        let mut stats = RunStats::default();
        let mut changes = Vec::with_capacity(4);
        let m = self.partition.num_chunks();
        let nk = state.num_sites() as f64 * self.model.total_rate();
        let dt_disc = 1.0 / nk;
        let mut kernel = self.take_fresh_kernel(state);
        match self.selection {
            ChunkSelection::InOrder => {
                for c in 0..m {
                    self.sweep_chunk(
                        c,
                        state,
                        rng,
                        &mut changes,
                        &mut stats,
                        hook,
                        None,
                        kernel.as_mut(),
                        nk,
                        dt_disc,
                    );
                }
            }
            ChunkSelection::RandomOrder => {
                let mut order: Vec<usize> = (0..m).collect();
                shuffle(rng, &mut order);
                for &c in &order {
                    self.sweep_chunk(
                        c,
                        state,
                        rng,
                        &mut changes,
                        &mut stats,
                        hook,
                        None,
                        kernel.as_mut(),
                        nk,
                        dt_disc,
                    );
                }
            }
            ChunkSelection::RandomWithReplacement => {
                for _ in 0..m {
                    let c = rng.index(m);
                    self.sweep_chunk(
                        c,
                        state,
                        rng,
                        &mut changes,
                        &mut stats,
                        hook,
                        None,
                        kernel.as_mut(),
                        nk,
                        dt_disc,
                    );
                }
            }
            ChunkSelection::WeightedByRates if self.scan_weights => {
                for _ in 0..m {
                    let weights: Vec<f64> =
                        (0..m).map(|c| self.chunk_propensity(c, state)).collect();
                    let c = crate::propensity::draw_weighted(rng, &weights);
                    self.sweep_chunk(
                        c,
                        state,
                        rng,
                        &mut changes,
                        &mut stats,
                        hook,
                        None,
                        kernel.as_mut(),
                        nk,
                        dt_disc,
                    );
                }
            }
            ChunkSelection::WeightedByRates => {
                let mut cache = self.take_fresh_cache(state);
                let mut weights = Vec::with_capacity(m);
                for _ in 0..m {
                    cache.weights_into(&mut weights);
                    let c = crate::propensity::draw_weighted(rng, &weights);
                    self.sweep_chunk(
                        c,
                        state,
                        rng,
                        &mut changes,
                        &mut stats,
                        hook,
                        Some(&mut cache),
                        kernel.as_mut(),
                        nk,
                        dt_disc,
                    );
                }
                #[cfg(debug_assertions)]
                cache.assert_matches_scan(self.model, self.partition, &state.lattice);
                self.cache = Some(cache);
            }
        }
        self.kernel = kernel;
        stats
    }

    /// Run `steps` PNDCA steps with optional coverage recording.
    pub fn run_steps(
        &mut self,
        state: &mut SimState,
        rng: &mut SimRng,
        steps: u64,
        mut recorder: Option<&mut Recorder>,
        hook: &mut impl EventHook,
    ) -> RunStats {
        let mut stats = RunStats::default();
        if let Some(rec) = recorder.as_deref_mut() {
            rec.record(state.time, &state.coverage);
        }
        for _ in 0..steps {
            let s = self.step(state, rng, hook);
            stats.trials += s.trials;
            stats.executed += s.executed;
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(state.time, &state.coverage);
            }
        }
        stats
    }

    /// Run whole steps until the clock reaches `t_end`.
    pub fn run_until(
        &mut self,
        state: &mut SimState,
        rng: &mut SimRng,
        t_end: f64,
        mut recorder: Option<&mut Recorder>,
        hook: &mut impl EventHook,
    ) -> RunStats {
        let mut stats = RunStats::default();
        if let Some(rec) = recorder.as_deref_mut() {
            rec.record(state.time, &state.coverage);
        }
        // Half-a-trial tolerance: with discretised time, N float additions
        // of 1/(N K) can land just below t_end and would trigger a spurious
        // extra step.
        let eps = 0.5 / (state.num_sites() as f64 * self.model.total_rate());
        while state.time < t_end - eps {
            let s = self.step(state, rng, hook);
            stats.trials += s.trials;
            stats.executed += s.executed;
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(state.time.min(t_end), &state.coverage);
            }
        }
        stats
    }
}

/// Run `steps` steps cycling through several PNDCA instances (one per
/// partition) — the paper's "choose a partition P" step (§5), analogous to
/// the shifting blocks of a BCA. Step `k` uses `pndcas[k % len]`.
///
/// # Panics
///
/// Panics if `pndcas` is empty.
pub fn run_alternating(
    pndcas: &mut [Pndca<'_, '_>],
    state: &mut SimState,
    rng: &mut SimRng,
    steps: u64,
    mut recorder: Option<&mut Recorder>,
    hook: &mut impl EventHook,
) -> RunStats {
    assert!(!pndcas.is_empty(), "need at least one partition");
    let mut stats = RunStats::default();
    if let Some(rec) = recorder.as_deref_mut() {
        rec.record(state.time, &state.coverage);
    }
    for k in 0..steps {
        let s = pndcas[(k % pndcas.len() as u64) as usize].step(state, rng, hook);
        stats.trials += s.trials;
        stats.executed += s.executed;
        if let Some(rec) = recorder.as_deref_mut() {
            rec.record(state.time, &state.coverage);
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition_builder::five_coloring;
    use psr_dmc::events::NoHook;
    use psr_lattice::{Dims, Lattice};
    use psr_model::library::zgb::zgb_ziff;
    use psr_model::ModelBuilder;
    use psr_rng::rng_from_seed;

    fn adsorption(rate: f64) -> Model {
        ModelBuilder::new(&["*", "A"])
            .reaction("ads", rate, |r| {
                r.site((0, 0), "*", "A");
            })
            .build()
    }

    #[test]
    fn ordered_step_visits_each_site_once() {
        let model = zgb_ziff(0.5, 2.0);
        let d = Dims::square(10);
        let partition = five_coloring(d);
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        let mut rng = rng_from_seed(1);
        let mut pndca = Pndca::new(&model, &partition);
        let mut visits = vec![0u32; 100];
        pndca.step(&mut state, &mut rng, &mut |e: Event| {
            visits[e.site.0 as usize] += 1;
        });
        assert!(visits.iter().all(|&v| v == 1));
    }

    #[test]
    fn random_order_visits_each_site_once_per_step() {
        let model = zgb_ziff(0.5, 2.0);
        let d = Dims::square(10);
        let partition = five_coloring(d);
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        let mut rng = rng_from_seed(2);
        let mut pndca = Pndca::new(&model, &partition).with_selection(ChunkSelection::RandomOrder);
        let mut visits = vec![0u32; 100];
        pndca.step(&mut state, &mut rng, &mut |e: Event| {
            visits[e.site.0 as usize] += 1;
        });
        assert!(visits.iter().all(|&v| v == 1));
    }

    #[test]
    fn with_replacement_does_n_trials_but_may_skip_chunks() {
        let model = zgb_ziff(0.5, 2.0);
        let d = Dims::square(10);
        let partition = five_coloring(d);
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        let mut rng = rng_from_seed(3);
        let mut pndca =
            Pndca::new(&model, &partition).with_selection(ChunkSelection::RandomWithReplacement);
        let stats = pndca.step(&mut state, &mut rng, &mut NoHook);
        assert_eq!(stats.trials, 100, "5 draws × 20-site chunks");
    }

    #[test]
    fn weighted_selection_runs() {
        let model = zgb_ziff(0.5, 2.0);
        let d = Dims::square(10);
        let partition = five_coloring(d);
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        let mut rng = rng_from_seed(4);
        let mut pndca =
            Pndca::new(&model, &partition).with_selection(ChunkSelection::WeightedByRates);
        let stats = pndca.run_steps(&mut state, &mut rng, 3, None, &mut NoHook);
        assert_eq!(stats.trials, 300);
        assert!(state.coverage.matches(&state.lattice));
    }

    #[test]
    fn langmuir_kinetics_close_to_analytic_with_diluted_rates() {
        // Like NDCA, PNDCA visits each site once per step; its kinetics
        // approach the ME when k_i/K per visit is small. Dilute with a
        // null reaction so the per-visit success probability is 0.01.
        let model = ModelBuilder::new(&["*", "A"])
            .reaction("ads", 1.0, |r| {
                r.site((0, 0), "*", "A");
            })
            .reaction("null", 99.0, |r| {
                r.site((0, 0), "*", "*");
            })
            .build();
        let d = Dims::square(50);
        let partition = five_coloring(d);
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        let mut rng = rng_from_seed(5);
        let mut pndca = Pndca::new(&model, &partition);
        pndca.run_until(&mut state, &mut rng, 1.0, None, &mut NoHook);
        let theta = state.coverage.fraction(1);
        let expected = 1.0 - (-1.0f64).exp();
        assert!(
            (theta - expected).abs() < 0.03,
            "PNDCA coverage {theta} vs analytic {expected}"
        );
    }

    #[test]
    fn one_step_advances_one_over_k() {
        let model = adsorption(4.0);
        let d = Dims::square(10);
        let partition = five_coloring(d);
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        let mut rng = rng_from_seed(6);
        Pndca::new(&model, &partition).run_steps(&mut state, &mut rng, 8, None, &mut NoHook);
        assert!((state.time - 8.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn zgb_coverage_consistent_after_run() {
        let model = zgb_ziff(0.45, 3.0);
        let d = Dims::square(20);
        let partition = five_coloring(d);
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        let mut rng = rng_from_seed(7);
        let mut pndca = Pndca::new(&model, &partition).with_selection(ChunkSelection::RandomOrder);
        pndca.run_steps(&mut state, &mut rng, 20, None, &mut NoHook);
        assert!(state.coverage.matches(&state.lattice));
    }

    #[test]
    fn alternating_partitions_cycle() {
        let model = zgb_ziff(0.5, 2.0);
        let d = Dims::square(10);
        let p1 = five_coloring(d);
        let p2 = crate::partition_builder::five_coloring_alt(d);
        let mut pndcas = [Pndca::new(&model, &p1), Pndca::new(&model, &p2)];
        let mut state = SimState::new(Lattice::filled(d, 0), &model);
        let mut rng = rng_from_seed(8);
        let stats = run_alternating(&mut pndcas, &mut state, &mut rng, 4, None, &mut NoHook);
        assert_eq!(stats.trials, 400);
        assert!(state.coverage.matches(&state.lattice));
    }
}
