//! The Non-Deterministic Cellular Automaton (paper §4).
//!
//! ```text
//! for each step
//!   for each site s
//!     1. select a reaction type i with probability k_i / K;
//!     2. check whether the reaction is enabled at s;
//!     3. if it is, execute it;
//!     4. advance the time;
//! ```
//!
//! Compared with RSM the *site selection* differs: every site is visited
//! exactly once per step, so a site can never be selected twice in
//! succession within a step — the source of the NDCA's kinetic bias (§4).
//! The visit order is configurable: the plain row-major sweep (the CA
//! reading) or a freshly shuffled order per step, which reduces (but does
//! not remove) sweep-direction correlations.

use std::sync::Arc;

use psr_dmc::events::{Event, EventHook};
use psr_dmc::recorder::Recorder;
use psr_dmc::rsm::{RunStats, TimeMode};
use psr_dmc::sim::SimState;
use psr_kernel::{CompiledModel, SiteKernel};
use psr_lattice::Site;
use psr_model::Model;
use psr_rng::{exponential, sample::shuffle, AliasTable, SimRng};

/// Site visit order within a step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepOrder {
    /// Row-major sweep, the standard CA scan.
    RowMajor,
    /// A new random permutation of the sites every step.
    Shuffled,
}

/// NDCA simulator.
#[derive(Clone, Debug)]
pub struct Ndca<'m> {
    model: &'m Model,
    alias: AliasTable,
    time_mode: TimeMode,
    order: SweepOrder,
    /// Compiled matcher; `None` when naive matching was requested.
    compiled: Option<Arc<CompiledModel>>,
    /// Lattice-bound kernel, built lazily on the first run (the geometry is
    /// only known then) and kept fresh via the mutation-epoch protocol.
    kernel: Option<SiteKernel>,
}

impl<'m> Ndca<'m> {
    /// NDCA with row-major sweeps, discretised time, and compiled matching.
    pub fn new(model: &'m Model) -> Self {
        Ndca {
            model,
            alias: AliasTable::new(&model.rate_weights()),
            time_mode: TimeMode::Discretized,
            order: SweepOrder::RowMajor,
            compiled: CompiledModel::try_compile(model).map(Arc::new),
            kernel: None,
        }
    }

    /// Select the time-advance mode.
    pub fn with_time_mode(mut self, mode: TimeMode) -> Self {
        self.time_mode = mode;
        self
    }

    /// Select the sweep order.
    pub fn with_order(mut self, order: SweepOrder) -> Self {
        self.order = order;
        self
    }

    /// Disable (or re-enable) the compiled kernel and match patterns with
    /// the naive per-reaction scan. Trajectories are bit-identical either
    /// way; this is the escape hatch and the benchmark baseline.
    pub fn with_naive_matching(mut self, naive: bool) -> Self {
        self.kernel = None;
        self.compiled = if naive {
            None
        } else {
            CompiledModel::try_compile(self.model).map(Arc::new)
        };
        self
    }

    /// (Re)bind the kernel to the state's lattice and bring it up to date.
    fn ensure_kernel(&mut self, state: &SimState) {
        let Some(compiled) = &self.compiled else {
            return;
        };
        match &mut self.kernel {
            Some(k) if k.dims() == state.lattice.dims() => {
                k.ensure_fresh(&state.lattice, state.mutation_epoch());
            }
            _ => {
                let mut k = SiteKernel::new(Arc::clone(compiled), &state.lattice);
                k.note_epoch(state.mutation_epoch());
                self.kernel = Some(k);
            }
        }
    }

    /// Run `steps` CA steps (each visits all N sites once).
    pub fn run_steps(
        &mut self,
        state: &mut SimState,
        rng: &mut SimRng,
        steps: u64,
        mut recorder: Option<&mut Recorder>,
        hook: &mut impl EventHook,
    ) -> RunStats {
        self.ensure_kernel(state);
        let mut stats = RunStats::default();
        let mut changes = Vec::with_capacity(4);
        let n = state.num_sites();
        // Hoisted out of the trial loop: same operands, same values, so the
        // trajectory is unchanged.
        let nk = n as f64 * self.model.total_rate();
        let dt_disc = 1.0 / nk;
        let mut order: Vec<u32> = (0..n as u32).collect();
        if let Some(rec) = recorder.as_deref_mut() {
            rec.record(state.time, &state.coverage);
        }
        for _ in 0..steps {
            if self.order == SweepOrder::Shuffled {
                // Shuffle from the identity each step so the sweep order is
                // a pure function of the RNG state — `run_steps(a)` then
                // `run_steps(b)` must match `run_steps(a + b)` exactly
                // (checkpoint/resume relies on this).
                for (i, v) in order.iter_mut().enumerate() {
                    *v = i as u32;
                }
                shuffle(rng, &mut order);
            }
            // The enabled check consumes no randomness, so the compiled and
            // naive arms produce bit-identical trajectories. Row-major
            // sweeps take the monomorphized sequential path: no per-trial
            // indirection through the order array.
            match &mut self.kernel {
                Some(kernel) if self.order == SweepOrder::RowMajor => Self::sweep_kernel(
                    self.model,
                    &self.alias,
                    self.time_mode,
                    kernel,
                    Sequential(n),
                    state,
                    rng,
                    &mut changes,
                    &mut stats,
                    hook,
                    nk,
                    dt_disc,
                ),
                Some(kernel) => Self::sweep_kernel(
                    self.model,
                    &self.alias,
                    self.time_mode,
                    kernel,
                    order.as_slice(),
                    state,
                    rng,
                    &mut changes,
                    &mut stats,
                    hook,
                    nk,
                    dt_disc,
                ),
                None => {
                    for &site_id in &order {
                        let site = Site(site_id);
                        let reaction = self.alias.sample(rng);
                        changes.clear();
                        let executed = self.model.reaction(reaction).try_execute(
                            &mut state.lattice,
                            site,
                            &mut changes,
                        );
                        if executed {
                            state.apply_changes(&changes);
                        }
                        state.time += match self.time_mode {
                            TimeMode::Stochastic => exponential(rng, nk),
                            TimeMode::Discretized => dt_disc,
                        };
                        stats.trials += 1;
                        stats.executed += executed as u64;
                        hook.on_event(Event {
                            time: state.time,
                            site,
                            reaction,
                            executed,
                        });
                    }
                }
            }
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(state.time, &state.coverage);
            }
        }
        stats
    }

    /// One compiled-matcher sweep over `order`.
    ///
    /// Trial-for-trial this performs the exact operations of the naive
    /// sweep — same RNG draws in the same order, same event sequence — but
    /// the enabled check is one mask load instead of a per-transform
    /// translate-and-compare walk.
    #[allow(clippy::too_many_arguments)]
    fn sweep_kernel(
        model: &Model,
        alias: &psr_rng::AliasTable,
        time_mode: TimeMode,
        kernel: &mut SiteKernel,
        order: impl SweepSites,
        state: &mut SimState,
        rng: &mut SimRng,
        changes: &mut Vec<(Site, u8, u8)>,
        stats: &mut RunStats,
        hook: &mut impl EventHook,
        nk: f64,
        dt_disc: f64,
    ) {
        // A register-local clone of the generator and clock: borrows through
        // `rng`/`state` would otherwise force both serial chains through
        // memory every trial.
        let mut local_rng = rng.clone();
        let mut time = state.time;
        let n = order.len();
        let mut i = 0usize;
        'sweep: while i < n {
            // Fast scan over non-executing trials: the masks slice is
            // borrowed once, so the check is one load with no per-trial
            // bounds check, and the kernel stays immutable until a hit.
            let hit_site;
            let hit_reaction;
            {
                let masks = kernel.enabled_masks();
                loop {
                    if i >= n {
                        break 'sweep;
                    }
                    let site = Site(order.site(i));
                    i += 1;
                    let reaction = alias.sample(&mut local_rng);
                    if (masks[site.0 as usize] >> reaction) & 1 != 0 {
                        hit_site = site;
                        hit_reaction = reaction;
                        break;
                    }
                    time += match time_mode {
                        TimeMode::Stochastic => exponential(&mut local_rng, nk),
                        TimeMode::Discretized => dt_disc,
                    };
                    hook.on_event(Event {
                        time,
                        site,
                        reaction,
                        executed: false,
                    });
                }
            }
            changes.clear();
            model
                .reaction(hit_reaction)
                .execute(&mut state.lattice, hit_site, changes);
            state.apply_changes(changes);
            kernel.apply_changes(&state.lattice, changes);
            kernel.note_epoch(state.mutation_epoch());
            stats.executed += 1;
            time += match time_mode {
                TimeMode::Stochastic => exponential(&mut local_rng, nk),
                TimeMode::Discretized => dt_disc,
            };
            hook.on_event(Event {
                time,
                site: hit_site,
                reaction: hit_reaction,
                executed: true,
            });
        }
        // Every site is trialed exactly once per sweep; counting them here
        // instead of per trial leaves the scan loop two instructions lighter
        // and the total is identical.
        stats.trials += n as u64;
        state.time = time;
        *rng = local_rng;
    }

    /// Run until the simulated clock reaches `t_end` (whole steps).
    pub fn run_until(
        &mut self,
        state: &mut SimState,
        rng: &mut SimRng,
        t_end: f64,
        mut recorder: Option<&mut Recorder>,
        hook: &mut impl EventHook,
    ) -> RunStats {
        let mut stats = RunStats::default();
        // Half-a-trial tolerance: with discretised time, N float additions
        // of 1/(N K) can land just below t_end and would trigger a spurious
        // extra step.
        let eps = 0.5 / (state.num_sites() as f64 * self.model.total_rate());
        while state.time < t_end - eps {
            let s = self.run_steps(state, rng, 1, recorder.as_deref_mut(), hook);
            stats.trials += s.trials;
            stats.executed += s.executed;
        }
        stats
    }
}

/// Site-visit order for a compiled sweep, monomorphized so the row-major
/// case compiles to `site = i` with no load from the order array.
trait SweepSites {
    fn len(&self) -> usize;
    fn site(&self, i: usize) -> u32;
}

/// Row-major order: site `i` is just `i`.
struct Sequential(usize);

impl SweepSites for Sequential {
    #[inline(always)]
    fn len(&self) -> usize {
        self.0
    }
    #[inline(always)]
    fn site(&self, i: usize) -> u32 {
        i as u32
    }
}

impl SweepSites for &[u32] {
    #[inline(always)]
    fn len(&self) -> usize {
        (*self).len()
    }
    #[inline(always)]
    fn site(&self, i: usize) -> u32 {
        self[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_dmc::events::NoHook;
    use psr_lattice::{Dims, Lattice};
    use psr_model::library::zgb::zgb_ziff;
    use psr_model::ModelBuilder;
    use psr_rng::rng_from_seed;

    fn adsorption(rate: f64) -> Model {
        ModelBuilder::new(&["*", "A"])
            .reaction("ads", rate, |r| {
                r.site((0, 0), "*", "A");
            })
            .build()
    }

    #[test]
    fn each_step_visits_every_site_once() {
        let model = adsorption(1.0);
        let mut state = SimState::new(Lattice::filled(Dims::new(4, 4), 0), &model);
        let mut rng = rng_from_seed(1);
        let mut ndca = Ndca::new(&model);
        let mut visits = vec![0u32; 16];
        ndca.run_steps(&mut state, &mut rng, 3, None, &mut |e: Event| {
            visits[e.site.0 as usize] += 1;
        });
        assert!(visits.iter().all(|&v| v == 3), "visits {visits:?}");
    }

    #[test]
    fn shuffled_order_also_visits_every_site_once() {
        let model = adsorption(1.0);
        let mut state = SimState::new(Lattice::filled(Dims::new(4, 4), 0), &model);
        let mut rng = rng_from_seed(2);
        let mut ndca = Ndca::new(&model).with_order(SweepOrder::Shuffled);
        let mut visits = [0u32; 16];
        ndca.run_steps(&mut state, &mut rng, 5, None, &mut |e: Event| {
            visits[e.site.0 as usize] += 1;
        });
        assert!(visits.iter().all(|&v| v == 5));
    }

    #[test]
    fn single_type_ndca_is_maximally_biased() {
        // With one reaction type, k_i/K = 1: every site executes every
        // step — the degenerate limit the paper warns about (§4). After one
        // step (t = 1/K) the lattice is full, while the ME gives 1 − e^(−1).
        let model = adsorption(1.0);
        let mut state = SimState::new(Lattice::filled(Dims::new(16, 16), 0), &model);
        let mut rng = rng_from_seed(3);
        Ndca::new(&model).run_steps(&mut state, &mut rng, 1, None, &mut NoHook);
        assert_eq!(state.coverage.fraction(1), 1.0);
    }

    #[test]
    fn langmuir_bias_shrinks_with_rate_ratio() {
        // Diluting adsorption with a high-rate null reaction makes
        // k_ads/K → 0 per visit; the NDCA kinetics then converge to the ME:
        // θ(1) = 1 − (1 − p)^(1/(p)) → 1 − e^(−1) as p = k/K → 0.
        let expected = 1.0 - (-1.0f64).exp();
        let mut errors = Vec::new();
        for null_rate in [3.0, 9.0, 99.0] {
            let model = ModelBuilder::new(&["*", "A"])
                .reaction("ads", 1.0, |r| {
                    r.site((0, 0), "*", "A");
                })
                .reaction("null", null_rate, |r| {
                    r.site((0, 0), "*", "*");
                })
                .build();
            let mut state = SimState::new(Lattice::filled(Dims::new(64, 64), 0), &model);
            let mut rng = rng_from_seed(3);
            Ndca::new(&model).run_until(&mut state, &mut rng, 1.0, None, &mut NoHook);
            errors.push((state.coverage.fraction(1) - expected).abs());
        }
        assert!(
            errors[2] < 0.02,
            "bias should be small at k/K = 0.01, got {}",
            errors[2]
        );
        assert!(
            errors[2] < errors[0],
            "bias should shrink with the rate ratio: {errors:?}"
        );
    }

    #[test]
    fn one_step_advances_one_over_k() {
        // N trials, each 1/(N·K): a step advances exactly 1/K.
        let model = adsorption(2.0);
        let mut state = SimState::new(Lattice::filled(Dims::new(6, 6), 0), &model);
        let mut rng = rng_from_seed(4);
        Ndca::new(&model).run_steps(&mut state, &mut rng, 4, None, &mut NoHook);
        assert!((state.time - 4.0 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn zgb_runs_consistently() {
        let model = zgb_ziff(0.5, 5.0);
        let mut state = SimState::new(Lattice::filled(Dims::new(20, 20), 0), &model);
        let mut rng = rng_from_seed(5);
        let mut ndca = Ndca::new(&model);
        let stats = ndca.run_steps(&mut state, &mut rng, 10, None, &mut NoHook);
        assert_eq!(stats.trials, 10 * 400);
        assert!(state.coverage.matches(&state.lattice));
    }

    #[test]
    fn recorder_gets_step_samples() {
        let model = adsorption(1.0);
        let mut state = SimState::new(Lattice::filled(Dims::new(10, 10), 0), &model);
        let mut rng = rng_from_seed(6);
        let mut rec = Recorder::new(2, 0.5);
        Ndca::new(&model).run_steps(&mut state, &mut rng, 3, Some(&mut rec), &mut NoHook);
        // 3 steps at K=1 → t≈3; grid 0, 0.5, ..., 3.0 (the recorder's
        // epsilon absorbs the float accumulation at the last grid point).
        assert_eq!(rec.series(0).len(), 7);
    }
}
