//! The Non-Deterministic Cellular Automaton (paper §4).
//!
//! ```text
//! for each step
//!   for each site s
//!     1. select a reaction type i with probability k_i / K;
//!     2. check whether the reaction is enabled at s;
//!     3. if it is, execute it;
//!     4. advance the time;
//! ```
//!
//! Compared with RSM the *site selection* differs: every site is visited
//! exactly once per step, so a site can never be selected twice in
//! succession within a step — the source of the NDCA's kinetic bias (§4).
//! The visit order is configurable: the plain row-major sweep (the CA
//! reading) or a freshly shuffled order per step, which reduces (but does
//! not remove) sweep-direction correlations.

use psr_dmc::events::{Event, EventHook};
use psr_dmc::recorder::Recorder;
use psr_dmc::rsm::{RunStats, TimeMode};
use psr_dmc::sim::SimState;
use psr_lattice::Site;
use psr_model::Model;
use psr_rng::{exponential, sample::shuffle, AliasTable, SimRng};

/// Site visit order within a step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepOrder {
    /// Row-major sweep, the standard CA scan.
    RowMajor,
    /// A new random permutation of the sites every step.
    Shuffled,
}

/// NDCA simulator.
#[derive(Clone, Debug)]
pub struct Ndca<'m> {
    model: &'m Model,
    alias: AliasTable,
    time_mode: TimeMode,
    order: SweepOrder,
}

impl<'m> Ndca<'m> {
    /// NDCA with row-major sweeps and discretised time.
    pub fn new(model: &'m Model) -> Self {
        Ndca {
            model,
            alias: AliasTable::new(&model.rate_weights()),
            time_mode: TimeMode::Discretized,
            order: SweepOrder::RowMajor,
        }
    }

    /// Select the time-advance mode.
    pub fn with_time_mode(mut self, mode: TimeMode) -> Self {
        self.time_mode = mode;
        self
    }

    /// Select the sweep order.
    pub fn with_order(mut self, order: SweepOrder) -> Self {
        self.order = order;
        self
    }

    #[inline]
    fn advance(&self, state: &mut SimState, rng: &mut SimRng) {
        let nk = state.num_sites() as f64 * self.model.total_rate();
        state.time += match self.time_mode {
            TimeMode::Stochastic => exponential(rng, nk),
            TimeMode::Discretized => 1.0 / nk,
        };
    }

    /// Run `steps` CA steps (each visits all N sites once).
    pub fn run_steps(
        &self,
        state: &mut SimState,
        rng: &mut SimRng,
        steps: u64,
        mut recorder: Option<&mut Recorder>,
        hook: &mut impl EventHook,
    ) -> RunStats {
        let mut stats = RunStats::default();
        let mut changes = Vec::with_capacity(4);
        let n = state.num_sites();
        let mut order: Vec<u32> = (0..n as u32).collect();
        if let Some(rec) = recorder.as_deref_mut() {
            rec.record(state.time, &state.coverage);
        }
        for _ in 0..steps {
            if self.order == SweepOrder::Shuffled {
                // Shuffle from the identity each step so the sweep order is
                // a pure function of the RNG state — `run_steps(a)` then
                // `run_steps(b)` must match `run_steps(a + b)` exactly
                // (checkpoint/resume relies on this).
                for (i, v) in order.iter_mut().enumerate() {
                    *v = i as u32;
                }
                shuffle(rng, &mut order);
            }
            for &site_id in &order {
                let site = Site(site_id);
                let reaction = self.alias.sample(rng);
                changes.clear();
                let executed = self.model.reaction(reaction).try_execute(
                    &mut state.lattice,
                    site,
                    &mut changes,
                );
                if executed {
                    state.apply_changes(&changes);
                }
                self.advance(state, rng);
                stats.trials += 1;
                stats.executed += executed as u64;
                hook.on_event(Event {
                    time: state.time,
                    site,
                    reaction,
                    executed,
                });
            }
            if let Some(rec) = recorder.as_deref_mut() {
                rec.record(state.time, &state.coverage);
            }
        }
        stats
    }

    /// Run until the simulated clock reaches `t_end` (whole steps).
    pub fn run_until(
        &self,
        state: &mut SimState,
        rng: &mut SimRng,
        t_end: f64,
        mut recorder: Option<&mut Recorder>,
        hook: &mut impl EventHook,
    ) -> RunStats {
        let mut stats = RunStats::default();
        // Half-a-trial tolerance: with discretised time, N float additions
        // of 1/(N K) can land just below t_end and would trigger a spurious
        // extra step.
        let eps = 0.5 / (state.num_sites() as f64 * self.model.total_rate());
        while state.time < t_end - eps {
            let s = self.run_steps(state, rng, 1, recorder.as_deref_mut(), hook);
            stats.trials += s.trials;
            stats.executed += s.executed;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_dmc::events::NoHook;
    use psr_lattice::{Dims, Lattice};
    use psr_model::library::zgb::zgb_ziff;
    use psr_model::ModelBuilder;
    use psr_rng::rng_from_seed;

    fn adsorption(rate: f64) -> Model {
        ModelBuilder::new(&["*", "A"])
            .reaction("ads", rate, |r| {
                r.site((0, 0), "*", "A");
            })
            .build()
    }

    #[test]
    fn each_step_visits_every_site_once() {
        let model = adsorption(1.0);
        let mut state = SimState::new(Lattice::filled(Dims::new(4, 4), 0), &model);
        let mut rng = rng_from_seed(1);
        let ndca = Ndca::new(&model);
        let mut visits = vec![0u32; 16];
        ndca.run_steps(&mut state, &mut rng, 3, None, &mut |e: Event| {
            visits[e.site.0 as usize] += 1;
        });
        assert!(visits.iter().all(|&v| v == 3), "visits {visits:?}");
    }

    #[test]
    fn shuffled_order_also_visits_every_site_once() {
        let model = adsorption(1.0);
        let mut state = SimState::new(Lattice::filled(Dims::new(4, 4), 0), &model);
        let mut rng = rng_from_seed(2);
        let ndca = Ndca::new(&model).with_order(SweepOrder::Shuffled);
        let mut visits = [0u32; 16];
        ndca.run_steps(&mut state, &mut rng, 5, None, &mut |e: Event| {
            visits[e.site.0 as usize] += 1;
        });
        assert!(visits.iter().all(|&v| v == 5));
    }

    #[test]
    fn single_type_ndca_is_maximally_biased() {
        // With one reaction type, k_i/K = 1: every site executes every
        // step — the degenerate limit the paper warns about (§4). After one
        // step (t = 1/K) the lattice is full, while the ME gives 1 − e^(−1).
        let model = adsorption(1.0);
        let mut state = SimState::new(Lattice::filled(Dims::new(16, 16), 0), &model);
        let mut rng = rng_from_seed(3);
        Ndca::new(&model).run_steps(&mut state, &mut rng, 1, None, &mut NoHook);
        assert_eq!(state.coverage.fraction(1), 1.0);
    }

    #[test]
    fn langmuir_bias_shrinks_with_rate_ratio() {
        // Diluting adsorption with a high-rate null reaction makes
        // k_ads/K → 0 per visit; the NDCA kinetics then converge to the ME:
        // θ(1) = 1 − (1 − p)^(1/(p)) → 1 − e^(−1) as p = k/K → 0.
        let expected = 1.0 - (-1.0f64).exp();
        let mut errors = Vec::new();
        for null_rate in [3.0, 9.0, 99.0] {
            let model = ModelBuilder::new(&["*", "A"])
                .reaction("ads", 1.0, |r| {
                    r.site((0, 0), "*", "A");
                })
                .reaction("null", null_rate, |r| {
                    r.site((0, 0), "*", "*");
                })
                .build();
            let mut state = SimState::new(Lattice::filled(Dims::new(64, 64), 0), &model);
            let mut rng = rng_from_seed(3);
            Ndca::new(&model).run_until(&mut state, &mut rng, 1.0, None, &mut NoHook);
            errors.push((state.coverage.fraction(1) - expected).abs());
        }
        assert!(
            errors[2] < 0.02,
            "bias should be small at k/K = 0.01, got {}",
            errors[2]
        );
        assert!(
            errors[2] < errors[0],
            "bias should shrink with the rate ratio: {errors:?}"
        );
    }

    #[test]
    fn one_step_advances_one_over_k() {
        // N trials, each 1/(N·K): a step advances exactly 1/K.
        let model = adsorption(2.0);
        let mut state = SimState::new(Lattice::filled(Dims::new(6, 6), 0), &model);
        let mut rng = rng_from_seed(4);
        Ndca::new(&model).run_steps(&mut state, &mut rng, 4, None, &mut NoHook);
        assert!((state.time - 4.0 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn zgb_runs_consistently() {
        let model = zgb_ziff(0.5, 5.0);
        let mut state = SimState::new(Lattice::filled(Dims::new(20, 20), 0), &model);
        let mut rng = rng_from_seed(5);
        let ndca = Ndca::new(&model);
        let stats = ndca.run_steps(&mut state, &mut rng, 10, None, &mut NoHook);
        assert_eq!(stats.trials, 10 * 400);
        assert!(state.coverage.matches(&state.lattice));
    }

    #[test]
    fn recorder_gets_step_samples() {
        let model = adsorption(1.0);
        let mut state = SimState::new(Lattice::filled(Dims::new(10, 10), 0), &model);
        let mut rng = rng_from_seed(6);
        let mut rec = Recorder::new(2, 0.5);
        Ndca::new(&model).run_steps(&mut state, &mut rng, 3, Some(&mut rec), &mut NoHook);
        // 3 steps at K=1 → t≈3; grid 0, 0.5, ..., 3.0 (the recorder's
        // epsilon absorbs the float accumulation at the last grid point).
        assert_eq!(rec.series(0).len(), 7);
    }
}
