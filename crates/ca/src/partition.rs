//! Partitions: chunks of mutually conflict-free sites (paper §5).
//!
//! A partition `P` is a collection of disjoint chunks `P_i` covering the
//! lattice. The restriction that makes chunks parallelisable:
//!
//! > for all `s, t ∈ P_i`, `s ≠ t`, and all reaction types `Rt, Rt'`:
//! > `Nb_Rt(s) ∩ Nb_Rt'(t) = ∅`
//!
//! i.e. reactions anchored at two different sites of the same chunk can
//! never touch a common lattice site.

use psr_lattice::{Dims, Site};
use psr_model::Model;

/// A partition of the lattice sites into chunks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    dims: Dims,
    chunks: Vec<Vec<Site>>,
    /// chunk index per site.
    chunk_of: Vec<u32>,
}

impl Partition {
    /// Build a partition from explicit chunks.
    ///
    /// # Panics
    ///
    /// Panics unless the chunks are non-empty, disjoint, and cover every
    /// site of `dims` exactly once.
    pub fn new(dims: Dims, chunks: Vec<Vec<Site>>) -> Self {
        let n = dims.sites() as usize;
        let mut chunk_of = vec![u32::MAX; n];
        for (ci, chunk) in chunks.iter().enumerate() {
            assert!(!chunk.is_empty(), "chunk {ci} is empty");
            for &site in chunk {
                assert!(dims.contains(site), "site {} out of range", site.0);
                assert_eq!(
                    chunk_of[site.0 as usize],
                    u32::MAX,
                    "site {} appears in two chunks",
                    site.0
                );
                chunk_of[site.0 as usize] = ci as u32;
            }
        }
        assert!(
            chunk_of.iter().all(|&c| c != u32::MAX),
            "partition does not cover the lattice"
        );
        Partition {
            dims,
            chunks,
            chunk_of,
        }
    }

    /// Build from a per-site chunk label array (labels `0..m` dense).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != dims.sites()` or labels are not dense.
    pub fn from_labels(dims: Dims, labels: &[u32]) -> Self {
        assert_eq!(labels.len(), dims.sites() as usize, "label count mismatch");
        let m = *labels.iter().max().expect("non-empty") as usize + 1;
        let mut chunks = vec![Vec::new(); m];
        for (i, &l) in labels.iter().enumerate() {
            chunks[l as usize].push(Site(i as u32));
        }
        Partition::new(dims, chunks)
    }

    /// Lattice dimensions.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Number of chunks `m = |P|`.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// The sites of chunk `i`.
    pub fn chunk(&self, i: usize) -> &[Site] {
        &self.chunks[i]
    }

    /// All chunks.
    pub fn chunks(&self) -> &[Vec<Site>] {
        &self.chunks
    }

    /// The chunk index a site belongs to.
    pub fn chunk_of(&self, site: Site) -> usize {
        self.chunk_of[site.0 as usize] as usize
    }

    /// Total number of sites.
    pub fn num_sites(&self) -> usize {
        self.chunk_of.len()
    }

    /// Size of the largest chunk (bounds per-step parallel work).
    pub fn max_chunk_size(&self) -> usize {
        self.chunks.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Verify the paper's non-overlap restriction for `model`.
    ///
    /// Returns the first violating pair `(s, t)` found, or `None` when the
    /// partition is conflict-free. Cost: O(N · |Nb|²) using a site-marking
    /// sweep per chunk.
    pub fn find_conflict(&self, model: &Model) -> Option<(Site, Site)> {
        // Union of all reaction neighborhoods; two same-chunk sites conflict
        // iff their combined neighborhoods intersect. A per-site (owner,
        // chunk-stamp) pair avoids clearing the scratch array per chunk.
        let nb = model.combined_neighborhood();
        let mut owner: Vec<u32> = vec![u32::MAX; self.num_sites()];
        let mut stamp: Vec<u32> = vec![u32::MAX; self.num_sites()];
        for (ci, chunk) in self.chunks.iter().enumerate() {
            for &site in chunk {
                for covered in nb.sites_at(self.dims, site) {
                    let idx = covered.0 as usize;
                    if stamp[idx] == ci as u32 && owner[idx] != site.0 {
                        return Some((Site(owner[idx]), site));
                    }
                    stamp[idx] = ci as u32;
                    owner[idx] = site.0;
                }
            }
        }
        None
    }

    /// True if the non-overlap restriction holds for `model`.
    pub fn is_valid_for(&self, model: &Model) -> bool {
        self.find_conflict(model).is_none()
    }

    /// Validate against a *single* reaction type's neighborhood (the weaker
    /// requirement of the Ω×T approach, §5: non-overlap only within the
    /// selected `T_j`).
    pub fn is_valid_for_reaction(&self, model: &Model, reaction: usize) -> bool {
        let nb = model.reaction(reaction).neighborhood();
        let mut owner: Vec<u32> = vec![u32::MAX; self.num_sites()];
        let mut stamp: Vec<u32> = vec![u32::MAX; self.num_sites()];
        for (ci, chunk) in self.chunks.iter().enumerate() {
            for &site in chunk {
                for covered in nb.sites_at(self.dims, site) {
                    let idx = covered.0 as usize;
                    if stamp[idx] == ci as u32 && owner[idx] != site.0 {
                        return false;
                    }
                    stamp[idx] = ci as u32;
                    owner[idx] = site.0;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_model::library::zgb::zgb_ziff;

    fn row_partition(dims: Dims) -> Partition {
        // One chunk per row — NOT conflict-free for pair reactions within a
        // row, but a valid cover.
        let labels: Vec<u32> = (0..dims.sites()).map(|i| i / dims.width()).collect();
        Partition::from_labels(dims, &labels)
    }

    #[test]
    fn from_labels_builds_cover() {
        let d = Dims::new(4, 3);
        let p = row_partition(d);
        assert_eq!(p.num_chunks(), 3);
        assert_eq!(p.chunk(0).len(), 4);
        assert_eq!(p.chunk_of(Site(5)), 1);
        assert_eq!(p.max_chunk_size(), 4);
        assert_eq!(p.num_sites(), 12);
    }

    #[test]
    fn row_partition_conflicts_for_zgb() {
        let model = zgb_ziff(0.5, 1.0);
        let p = row_partition(Dims::new(10, 10));
        assert!(!p.is_valid_for(&model));
        let (a, b) = p.find_conflict(&model).expect("conflict exists");
        assert_eq!(p.chunk_of(a), p.chunk_of(b));
    }

    #[test]
    fn singleton_chunks_always_valid() {
        let model = zgb_ziff(0.5, 1.0);
        let d = Dims::new(5, 5);
        let labels: Vec<u32> = (0..25).collect();
        let p = Partition::from_labels(d, &labels);
        assert_eq!(p.num_chunks(), 25);
        assert!(p.is_valid_for(&model));
    }

    #[test]
    #[should_panic(expected = "two chunks")]
    fn overlapping_chunks_panic() {
        let d = Dims::new(2, 1);
        Partition::new(d, vec![vec![Site(0), Site(1)], vec![Site(1)]]);
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn incomplete_cover_panics() {
        let d = Dims::new(2, 1);
        Partition::new(d, vec![vec![Site(0)]]);
    }

    #[test]
    #[should_panic(expected = "is empty")]
    fn empty_chunk_panics() {
        let d = Dims::new(1, 1);
        Partition::new(d, vec![vec![Site(0)], vec![]]);
    }

    #[test]
    fn per_reaction_validity_is_weaker() {
        // Checkerboard is invalid for the full ZGB neighborhood but valid
        // for each *individual* horizontal pair reaction.
        let model = zgb_ziff(0.5, 1.0);
        let d = Dims::new(6, 6);
        let labels: Vec<u32> = (0..d.sites())
            .map(|i| {
                let x = i % d.width();
                let y = i / d.width();
                (x + y) % 2
            })
            .collect();
        let p = Partition::from_labels(d, &labels);
        assert!(!p.is_valid_for(&model));
        let h_pair = model.reaction_index("RtO2[0]").expect("exists");
        assert!(p.is_valid_for_reaction(&model, h_pair));
        let single = model.reaction_index("RtCO").expect("exists");
        assert!(p.is_valid_for_reaction(&model, single));
    }
}
