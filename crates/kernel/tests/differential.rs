//! Differential tests: compiled kernels vs the naive per-reaction matcher.
//!
//! Every library model is compiled both ways (full LUT and the per-reaction
//! fallback via a zero cap) and checked against `Model::enabled_mask_at` on
//! random lattices — for the full scan, for summed enabled rates, and for
//! incremental maintenance under random reaction executions.

use proptest::prelude::*;
use psr_kernel::{CompiledModel, SiteKernel};
use psr_lattice::{Dims, Lattice, Site};
use psr_model::library::{
    ab_annihilation, diffusion_model, ising_glauber, kuzovkov_model, single_file_model,
    triangular_diffusion_model, zgb_ziff, KuzovkovParams,
};
use psr_model::Model;
use std::sync::Arc;

/// Every model shipped in `psr_model::library`, by name.
fn library_models() -> Vec<(&'static str, Model)> {
    vec![
        ("zgb", zgb_ziff(0.45, 10.0)),
        ("kuzovkov", kuzovkov_model(KuzovkovParams::default())),
        ("diffusion", diffusion_model(1.0)),
        ("triangular-diffusion", triangular_diffusion_model(1.0)),
        ("single-file", single_file_model(1.0)),
        ("ising", ising_glauber(2.0)),
        ("annihilation", ab_annihilation(1.0, 2.0)),
    ]
}

fn random_lattice(model: &Model, dims: Dims, seed: u64) -> Lattice {
    let mut rng = psr_rng::rng_from_seed(seed);
    let s = model.species().len();
    let n = (dims.width() * dims.height()) as usize;
    let cells = (0..n).map(|_| rng.index(s) as u8).collect();
    Lattice::from_cells(dims, cells)
}

/// The kernel (in the given LUT mode) agrees with the naive matcher at
/// every site of `lattice`, for both the enabled masks and the rate sums.
fn assert_agrees(name: &str, model: &Model, lattice: &Lattice, lut_cap: usize) {
    let compiled = Arc::new(CompiledModel::compile_with_cap(model, lut_cap));
    let kernel = SiteKernel::new(Arc::clone(&compiled), lattice);
    for site in lattice.dims().iter_sites() {
        let naive = model.enabled_mask_at(lattice, site);
        assert_eq!(
            kernel.enabled_mask(site),
            naive,
            "{name} (cap {lut_cap}): mask mismatch at {site:?}"
        );
        assert_eq!(
            kernel.enabled_rate_sum(site),
            compiled.rate_of_mask(naive),
            "{name} (cap {lut_cap}): rate-sum mismatch at {site:?}"
        );
    }
}

/// Execute `steps` random (site, reaction) trials, keeping the kernel up to
/// date from the change journal, and check it still matches a fresh scan.
fn assert_incremental(name: &str, model: &Model, lattice: &mut Lattice, lut_cap: usize, seed: u64) {
    let compiled = Arc::new(CompiledModel::compile_with_cap(model, lut_cap));
    let mut kernel = SiteKernel::new(compiled, lattice);
    let mut rng = psr_rng::rng_from_seed(seed);
    let mut changes = Vec::new();
    let n = lattice.len();
    for _ in 0..200 {
        let site = Site(rng.index(n) as u32);
        let reaction = rng.index(model.num_reactions());
        changes.clear();
        if model
            .reaction(reaction)
            .try_execute(lattice, site, &mut changes)
        {
            kernel.apply_changes(lattice, &changes);
        }
    }
    kernel.assert_matches_scan(model, lattice);
    for site in lattice.dims().iter_sites() {
        assert_eq!(
            kernel.enabled_mask(site),
            model.enabled_mask_at(lattice, site),
            "{name} (cap {lut_cap}): incremental mask diverged at {site:?}"
        );
    }
}

#[test]
fn library_models_compile_and_agree_on_random_lattices() {
    for (name, model) in library_models() {
        let lattice = random_lattice(&model, Dims::square(12), 0xC0FFEE);
        // Full LUT when it fits, and the per-reaction fallback (cap 0).
        assert_agrees(name, &model, &lattice, psr_kernel::DEFAULT_LUT_CAP);
        assert_agrees(name, &model, &lattice, 0);
    }
}

#[test]
fn library_models_stay_exact_under_incremental_updates() {
    for (name, model) in library_models() {
        for cap in [psr_kernel::DEFAULT_LUT_CAP, 0] {
            let mut lattice = random_lattice(&model, Dims::square(10), 0xBEEF);
            assert_incremental(name, &model, &mut lattice, cap, 7);
        }
    }
}

/// T-PNDCA (the Ω×T algorithm) with and without the compiled kernel must
/// produce bit-identical trajectories over ≥1000 steps — including the
/// weighted-chunk arm, whose per-subset propensity caches are maintained
/// *through* the kernel (`apply_changes_with_kernel`) on the compiled side
/// and by naive rescans on the other. The enabled check consumes no RNG
/// either way, so lattice, clock, and stream position must all agree.
#[test]
fn tpndca_trajectories_bit_identical_for_1000_steps() {
    use psr_ca::tpndca::{axis_type_partition, TPndca};
    use psr_dmc::events::NoHook;
    use psr_dmc::rsm::TimeMode;
    use psr_dmc::sim::SimState;

    let model = zgb_ziff(0.45, 10.0);
    let dims = Dims::square(10);
    for weighted in [false, true] {
        for mode in [TimeMode::Discretized, TimeMode::Stochastic] {
            let run = |naive: bool| {
                let mut state = SimState::new(Lattice::filled(dims, 0), &model);
                let mut rng = psr_rng::rng_from_seed(0xD1CE);
                TPndca::new(&model, axis_type_partition(&model, dims))
                    .with_time_mode(mode)
                    .with_weighted_chunks(weighted)
                    .with_naive_matching(naive)
                    .run_steps(&mut state, &mut rng, 1000, None, &mut NoHook);
                (state.lattice, state.time, rng.f64())
            };
            assert_eq!(run(true), run(false), "weighted {weighted}, mode {mode:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Random geometry × random fill × both LUT modes, for the two models
    // with the richest stencils (ZGB's von Neumann bimolecular patterns,
    // Kuzovkov's 5-species phase-augmented patterns).
    #[test]
    fn scan_agreement_on_random_geometries(
        w in 2u32..14,
        h in 2u32..14,
        seed in 0u64..1_000_000,
        cap_zero in prop::bool::ANY,
    ) {
        let dims = Dims::new(w, h);
        let cap = if cap_zero { 0 } else { psr_kernel::DEFAULT_LUT_CAP };
        for (name, model) in [
            ("zgb", zgb_ziff(0.45, 10.0)),
            ("kuzovkov", kuzovkov_model(KuzovkovParams::default())),
        ] {
            let lattice = random_lattice(&model, dims, seed);
            assert_agrees(name, &model, &lattice, cap);
        }
    }

    // Incremental maintenance under random executions matches a fresh
    // rebuild, on random geometries (exercises torus aliasing: widths and
    // heights below the stencil diameter).
    #[test]
    fn incremental_agreement_on_random_geometries(
        w in 2u32..10,
        h in 2u32..10,
        seed in 0u64..1_000_000,
        cap_zero in prop::bool::ANY,
    ) {
        let dims = Dims::new(w, h);
        let cap = if cap_zero { 0 } else { psr_kernel::DEFAULT_LUT_CAP };
        for (name, model) in [
            ("zgb", zgb_ziff(0.45, 10.0)),
            ("single-file", single_file_model(1.0)),
        ] {
            let mut lattice = random_lattice(&model, dims, seed);
            assert_incremental(name, &model, &mut lattice, cap, seed ^ 0x5EED);
        }
    }
}
