//! Per-site kernel state: neighbor tables, neighborhood codes, masks.
//!
//! A [`SiteKernel`] binds a [`CompiledModel`] to one lattice geometry. At
//! construction it precomputes, for every site, the flat indices of its
//! stencil cells (`neighbors`) and of the anchors that read it (`anchors`) —
//! so the hot loop never touches `Dims::translate`'s div/mod arithmetic —
//! and then scans the lattice once to seed the per-site neighborhood codes
//! (LUT mode) or enabled-reaction masks (fallback mode).
//!
//! From then on the kernel is maintained *incrementally* from the same
//! change lists the simulators already journal: a change `(x, old → new)` at
//! site `x` adds `weight_j · (new − old)` to the code of every anchor
//! `x − cells[j]` — exact in wrapping `u32` arithmetic because each stencil
//! digit transitions independently, even when torus aliasing folds several
//! cells of one anchor onto `x`.
//!
//! Freshness follows the same mutation-epoch protocol as `psr-ca`'s
//! propensity cache: simulators call [`SiteKernel::ensure_fresh`] with the
//! state's `mutation_epoch()` before a sweep and [`SiteKernel::note_epoch`]
//! after applying changes through the kernel.

use std::sync::Arc;

use crate::compiled::CompiledModel;
use psr_lattice::{Change, Dims, Lattice, Site};
use psr_model::Model;

/// A [`CompiledModel`] instantiated for one lattice geometry.
#[derive(Clone, Debug)]
pub struct SiteKernel {
    compiled: Arc<CompiledModel>,
    dims: Dims,
    /// `neighbors[site·C + j]` = flat index of `site + cells[j]`.
    neighbors: Vec<u32>,
    /// `anchors[site·C + j]` = flat index of `site − cells[j]` (the anchors
    /// whose cell `j` reads `site`).
    anchors: Vec<u32>,
    /// LUT mode: the base-S neighborhood code of every site.
    codes: Vec<u32>,
    /// LUT mode: a flat copy of the compiled mask table (refresh source for
    /// `masks`, no `Arc` chase).
    lut_mask: Vec<u64>,
    /// The enabled-reaction bitmask of every site, in *both* modes: the
    /// per-trial check is a single dependent load. In LUT mode the mask is
    /// refreshed from `lut_mask[codes[anchor]]` whenever an anchor's code
    /// changes — executions are rare next to trials, so paying a table load
    /// per touched anchor is far cheaper than one per trial.
    masks: Vec<u64>,
    /// Mutation epoch of the `SimState` this kernel last reflected.
    epoch: u64,
}

impl SiteKernel {
    /// Build the kernel for `lattice`'s geometry and seed it from the
    /// current configuration.
    pub fn new(compiled: Arc<CompiledModel>, lattice: &Lattice) -> Self {
        let dims = lattice.dims();
        let n = lattice.len();
        let c = compiled.cells().len();
        let mut neighbors = vec![0u32; n * c];
        let mut anchors = vec![0u32; n * c];
        let wrap = lattice.wrap_tables();
        for (j, &offset) in compiled.cells().iter().enumerate() {
            let back = offset.negated();
            if wrap.covers(offset) && wrap.covers(back) {
                // Division-free: sweep coordinates row-major and translate
                // through the wrap tables.
                let mut site = 0usize;
                for y in 0..dims.height() {
                    for x in 0..dims.width() {
                        neighbors[site * c + j] = wrap.translate_xy(x, y, offset).0;
                        anchors[site * c + j] = wrap.translate_xy(x, y, back).0;
                        site += 1;
                    }
                }
            } else {
                // Wide stencil cell: exact one-time fallback.
                for site in dims.iter_sites() {
                    neighbors[site.0 as usize * c + j] = dims.translate(site, offset).0;
                    anchors[site.0 as usize * c + j] = dims.translate(site, back).0;
                }
            }
        }
        let lut_mask = compiled
            .lut_masks()
            .map(<[u64]>::to_vec)
            .unwrap_or_default();
        let mut kernel = SiteKernel {
            compiled,
            dims,
            neighbors,
            anchors,
            codes: Vec::new(),
            lut_mask,
            masks: Vec::new(),
            epoch: 0,
        };
        kernel.rebuild(lattice);
        kernel
    }

    /// The compiled model this kernel instantiates.
    pub fn compiled(&self) -> &CompiledModel {
        &self.compiled
    }

    /// The geometry this kernel was built for.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// The mutation epoch this kernel last reflected.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Record the mutation epoch the kernel is now consistent with.
    pub fn note_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Rebuild only if `epoch` differs from the last-seen epoch (the lattice
    /// was mutated outside this kernel's view); records `epoch` either way.
    pub fn ensure_fresh(&mut self, lattice: &Lattice, epoch: u64) {
        if self.epoch != epoch {
            self.rebuild(lattice);
            self.epoch = epoch;
        }
    }

    /// Re-derive all codes/masks from the lattice (cold path).
    ///
    /// # Panics
    ///
    /// Panics if a cell holds a state outside the compiled model's domain.
    pub fn rebuild(&mut self, lattice: &Lattice) {
        assert_eq!(self.dims, lattice.dims(), "kernel built for other dims");
        let n = lattice.len();
        let c = self.compiled.cells().len();
        let num_states = self.compiled.num_states();
        for (i, &s) in lattice.cells().iter().enumerate() {
            assert!(
                u32::from(s) < num_states,
                "site {i} holds state {s} outside the compiled domain (< {num_states})"
            );
        }
        if self.compiled.has_lut() {
            self.codes.clear();
            self.codes.resize(n, 0);
            for (site, code) in self.codes.iter_mut().enumerate() {
                let row = &self.neighbors[site * c..site * c + c];
                let mut acc = 0u32;
                for (j, &nb) in row.iter().enumerate() {
                    acc += self.compiled.weight(j) * u32::from(lattice.cells()[nb as usize]);
                }
                *code = acc;
            }
            self.masks.clear();
            self.masks
                .extend(self.codes.iter().map(|&code| self.lut_mask[code as usize]));
        } else {
            self.codes.clear();
            self.masks.clear();
            self.masks.resize(n, 0);
            for site in 0..n {
                let row = &self.neighbors[site * c..site * c + c];
                self.masks[site] = self
                    .compiled
                    .eval(|cell| lattice.cells()[row[cell as usize] as usize]);
            }
        }
    }

    /// Fold a batch of executed changes into the kernel.
    ///
    /// `lattice` must already reflect the changes (call after
    /// `SimState::apply_changes`). Duplicate sites in `changes` are fine:
    /// each entry records the true before/after states, so the code deltas
    /// compose.
    #[inline]
    pub fn apply_changes(&mut self, lattice: &Lattice, changes: &[Change]) {
        let c = self.compiled.cells().len();
        if self.compiled.has_lut() {
            for &(site, old, new) in changes {
                if old == new {
                    continue;
                }
                let row = &self.anchors[site.0 as usize * c..site.0 as usize * c + c];
                for (j, &anchor) in row.iter().enumerate() {
                    let w = self.compiled.weight(j);
                    let delta = w
                        .wrapping_mul(u32::from(new))
                        .wrapping_sub(w.wrapping_mul(u32::from(old)));
                    let code = &mut self.codes[anchor as usize];
                    *code = code.wrapping_add(delta);
                    self.masks[anchor as usize] = self.lut_mask[*code as usize];
                }
            }
        } else {
            for &(site, _, _) in changes {
                let row = &self.anchors[site.0 as usize * c..site.0 as usize * c + c];
                for &anchor in row {
                    let nb = &self.neighbors[anchor as usize * c..anchor as usize * c + c];
                    self.masks[anchor as usize] = self
                        .compiled
                        .eval(|cell| lattice.cells()[nb[cell as usize] as usize]);
                }
            }
        }
    }

    /// Enabled-reaction bitmask at `site` (bit `i` ↔ reaction `i`).
    #[inline]
    pub fn enabled_mask(&self, site: Site) -> u64 {
        self.masks[site.0 as usize]
    }

    /// The per-site enabled-reaction bitmasks, indexed by flat site id.
    ///
    /// Trial loops borrow this once per scan so the per-trial check is a
    /// single indexed load with the bounds check lifted out of the loop.
    #[inline]
    pub fn enabled_masks(&self) -> &[u64] {
        &self.masks
    }

    /// Is reaction `reaction` enabled at `site`?
    #[inline]
    pub fn is_enabled(&self, site: Site, reaction: usize) -> bool {
        (self.enabled_mask(site) >> reaction) & 1 != 0
    }

    /// Summed rate of the reactions enabled at `site` (the LUT's
    /// cumulative-rate row; recomputed from the mask in fallback mode).
    #[inline]
    pub fn enabled_rate_sum(&self, site: Site) -> f64 {
        if self.compiled.has_lut() {
            self.compiled.rate_for_code(self.codes[site.0 as usize])
        } else {
            self.compiled.rate_of_mask(self.masks[site.0 as usize])
        }
    }

    /// The anchor `site − cells[cell]` from the precomputed table (used by
    /// VSSM's enabled-set maintenance to avoid repeated translation).
    #[inline]
    pub fn anchor(&self, site: Site, cell: usize) -> Site {
        let c = self.compiled.cells().len();
        Site(self.anchors[site.0 as usize * c + cell])
    }

    /// The neighbor `site + cells[cell]` from the precomputed table.
    #[inline]
    pub fn neighbor(&self, site: Site, cell: usize) -> Site {
        let c = self.compiled.cells().len();
        Site(self.neighbors[site.0 as usize * c + cell])
    }

    /// Check every site's mask against the naive per-reaction scan; true iff
    /// they all agree.
    pub fn matches_scan(&self, model: &Model, lattice: &Lattice) -> bool {
        lattice
            .dims()
            .iter_sites()
            .all(|site| self.enabled_mask(site) == model.enabled_mask_at(lattice, site))
    }

    /// Assert [`matches_scan`](Self::matches_scan), reporting the first
    /// disagreeing site.
    pub fn assert_matches_scan(&self, model: &Model, lattice: &Lattice) {
        for site in lattice.dims().iter_sites() {
            let compiled = self.enabled_mask(site);
            let naive = model.enabled_mask_at(lattice, site);
            assert_eq!(
                compiled, naive,
                "kernel mask {compiled:#b} != naive {naive:#b} at site {}",
                site.0
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_model::library::zgb::zgb_ziff;

    fn checker_lattice(dims: Dims) -> Lattice {
        let cells = (0..dims.sites()).map(|i| (i % 3) as u8).collect();
        Lattice::from_cells(dims, cells)
    }

    #[test]
    fn fresh_kernel_matches_naive_scan() {
        let model = zgb_ziff(0.5, 2.0);
        let lattice = checker_lattice(Dims::new(8, 6));
        let kernel = SiteKernel::new(Arc::new(CompiledModel::compile(&model)), &lattice);
        kernel.assert_matches_scan(&model, &lattice);
    }

    #[test]
    fn fallback_kernel_matches_naive_scan() {
        let model = zgb_ziff(0.5, 2.0);
        let lattice = checker_lattice(Dims::new(8, 6));
        let compiled = CompiledModel::compile_with_cap(&model, 0);
        assert!(!compiled.has_lut());
        let kernel = SiteKernel::new(Arc::new(compiled), &lattice);
        kernel.assert_matches_scan(&model, &lattice);
    }

    #[test]
    fn incremental_updates_track_executions() {
        let model = zgb_ziff(0.4, 3.0);
        let mut lattice = Lattice::filled(Dims::new(6, 6), 0);
        let mut kernel = SiteKernel::new(Arc::new(CompiledModel::compile(&model)), &lattice);
        let mut changes = Vec::new();
        // Execute a few reactions by hand and fold each change batch in.
        for (site, ri) in [(0u32, 0usize), (7, 1), (14, 0), (20, 1), (7, 3)] {
            let site = Site(site);
            let rt = model.reaction(ri);
            changes.clear();
            if rt.is_enabled(&lattice, site) {
                rt.execute(&mut lattice, site, &mut changes);
                kernel.apply_changes(&lattice, &changes);
            }
            kernel.assert_matches_scan(&model, &lattice);
        }
    }

    #[test]
    fn incremental_updates_on_tiny_aliased_lattice() {
        // 2×2 torus: stencil cells alias heavily; digits must still track.
        let model = zgb_ziff(0.5, 2.0);
        let mut lattice = Lattice::filled(Dims::new(2, 2), 0);
        let mut kernel = SiteKernel::new(Arc::new(CompiledModel::compile(&model)), &lattice);
        let mut changes = Vec::new();
        for site in 0..4u32 {
            let site = Site(site);
            for ri in 0..model.num_reactions() {
                changes.clear();
                if model
                    .reaction(ri)
                    .try_execute(&mut lattice, site, &mut changes)
                {
                    kernel.apply_changes(&lattice, &changes);
                }
                kernel.assert_matches_scan(&model, &lattice);
            }
        }
    }

    #[test]
    fn ensure_fresh_rebuilds_on_epoch_mismatch() {
        let model = zgb_ziff(0.5, 2.0);
        let mut lattice = Lattice::filled(Dims::new(4, 4), 0);
        let mut kernel = SiteKernel::new(Arc::new(CompiledModel::compile(&model)), &lattice);
        kernel.note_epoch(1);
        // Mutate behind the kernel's back.
        lattice.set(Site(5), 1);
        assert!(!kernel.matches_scan(&model, &lattice));
        kernel.ensure_fresh(&lattice, 2);
        assert_eq!(kernel.epoch(), 2);
        kernel.assert_matches_scan(&model, &lattice);
        // Same epoch again: no rebuild needed, still consistent.
        kernel.ensure_fresh(&lattice, 2);
        kernel.assert_matches_scan(&model, &lattice);
    }

    #[test]
    fn rate_sum_matches_enabled_set() {
        let model = zgb_ziff(0.3, 5.0);
        let lattice = checker_lattice(Dims::new(5, 5));
        let kernel = SiteKernel::new(Arc::new(CompiledModel::compile(&model)), &lattice);
        for site in lattice.dims().iter_sites() {
            let expected: f64 = model
                .enabled_at(&lattice, site)
                .iter()
                .map(|&ri| model.reaction(ri).rate())
                .sum();
            assert_eq!(kernel.enabled_rate_sum(site), expected);
        }
    }

    #[test]
    fn halo_diffs_keep_codes_fresh_across_domain_edges() {
        // The sharded executor maintains one kernel per worker on a
        // halo-padded sub-lattice and folds *halo-cell* diffs (from a
        // neighbor's strip) exactly like owned writes. Codes of owned sites
        // near the edge must come out identical to a fresh scan.
        use psr_lattice::SubLattice;
        let model = zgb_ziff(0.5, 2.0);
        let global = checker_lattice(Dims::new(8, 8));
        let mut sub = SubLattice::scatter(&global, 4, 4, 4, 4, 1);
        let mut kernel = SiteKernel::new(Arc::new(CompiledModel::compile(&model)), sub.lattice());
        // A remote reaction changed global cells that live in our halo
        // ring: apply the strip diff and fold it through the kernel.
        let mut changes = Vec::new();
        let strip: Vec<u8> = (0..6).map(|i| (i % 2 + 1) as u8).collect();
        sub.unpack_rect_diff(0, 0, 6, 1, &strip, &mut changes);
        assert!(!changes.is_empty(), "diff must report the halo writes");
        kernel.apply_changes(sub.lattice(), &changes);
        let fresh = SiteKernel::new(Arc::new(CompiledModel::compile(&model)), sub.lattice());
        for ly in 1..5u32 {
            for lx in 1..5u32 {
                let site = sub.lattice().dims().site_at(lx as i64, ly as i64);
                assert_eq!(
                    kernel.enabled_mask(site),
                    fresh.enabled_mask(site),
                    "stale code at owned ({lx},{ly}) after halo diff"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside the compiled domain")]
    fn out_of_domain_state_panics() {
        let model = zgb_ziff(0.5, 2.0);
        let lattice = Lattice::filled(Dims::new(3, 3), 7);
        SiteKernel::new(Arc::new(CompiledModel::compile(&model)), &lattice);
    }
}
