//! Compiled reaction kernels: LUT-based pattern matching for hot loops.
//!
//! The paper's NDCA/DMC trial loop spends most of its time answering one
//! question: *which reactions are enabled at this site?* The naive answer
//! walks every reaction's transforms and calls `Dims::translate` (three
//! integer divisions) per cell. This crate compiles a `Model` once into a
//! form where the same question is a single table load:
//!
//! 1. [`CompiledModel`] — lattice-independent: the stencil (union of all
//!    pattern offsets), per-reaction requirements, and the reaction LUT
//!    mapping every base-S neighborhood code to an enabled-reaction bitmask
//!    plus its summed rate. Falls back to per-reaction requirement masks
//!    when `S^|stencil|` exceeds [`DEFAULT_LUT_CAP`].
//! 2. [`SiteKernel`] — lattice-bound: precomputed neighbor/anchor index
//!    tables (no div/mod in the inner loop) and the incrementally maintained
//!    per-site codes or masks, updated from the simulators' change journals.
//!
//! Both layers answer *exactly* the same predicate as
//! `ReactionType::is_enabled`, so swapping them into a simulator cannot
//! change trajectories: the enabled check consumes no randomness and the
//! execution path is untouched. Every simulator that adopts the kernel keeps
//! a `with_naive_matching` escape hatch that restores the original scan.

#![warn(missing_docs)]

pub mod compiled;
pub mod site;

pub use compiled::{CompiledModel, Requirement, DEFAULT_LUT_CAP, MAX_KERNEL_REACTIONS};
pub use site::SiteKernel;
