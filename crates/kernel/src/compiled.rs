//! Model compilation: patterns → stencil cells, base-S codes, reaction LUT.
//!
//! A [`CompiledModel`] is built once per [`Model`] and contains everything
//! that does not depend on the lattice geometry:
//!
//! - the **stencil**: the deduplicated, sorted union of all transform
//!   offsets — the cells any reaction's source pattern can read;
//! - per-reaction **requirements**: each source pattern re-expressed as
//!   `(stencil cell index, required state)` pairs;
//! - the **reaction LUT**: for every base-S *neighborhood code* (the packed
//!   radix-S encoding of the stencil cells' states, S = number of species),
//!   the bitmask of enabled reactions and the summed rate of that enabled
//!   set. The LUT has `S^|stencil|` entries (ZGB: 3⁵ = 243); when that
//!   exceeds [`DEFAULT_LUT_CAP`] (large state spaces à la Kuzovkov's
//!   phase-augmented models with wide stencils) compilation falls back to
//!   per-reaction requirement masks evaluated on demand — still
//!   division-free and allocation-free, just not a single table load.

use psr_lattice::Offset;
use psr_model::Model;

/// Largest LUT entry count compiled eagerly (mask + rate per entry ⇒ 16 MiB
/// at the cap). Beyond this the kernel uses per-reaction requirement masks.
pub const DEFAULT_LUT_CAP: usize = 1 << 20;

/// Reaction bitmasks are `u64`: compiled kernels track at most 64 types,
/// matching `psr-ca`'s propensity-cache limit.
pub const MAX_KERNEL_REACTIONS: usize = 64;

/// One source-pattern condition: stencil cell `cell` must hold `src`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Requirement {
    /// Index into [`CompiledModel::cells`].
    pub cell: u16,
    /// Required state id.
    pub src: u8,
}

/// The full enabled-set lookup table, indexed by neighborhood code.
#[derive(Clone, Debug)]
struct Lut {
    /// Bit `i` set ⇔ reaction `i` enabled for this code.
    mask: Vec<u64>,
    /// Summed rate of the enabled set (the cumulative-rate row): equals
    /// `Σ_i rate_i · bit_i` accumulated in reaction order.
    rate_sum: Vec<f64>,
}

/// A [`Model`] compiled for table-driven pattern matching.
#[derive(Clone, Debug)]
pub struct CompiledModel {
    num_reactions: usize,
    num_states: u32,
    cells: Vec<Offset>,
    /// `weights[j] = S^j`: the radix weight of stencil cell `j` in the code.
    weights: Vec<u32>,
    rates: Vec<f64>,
    /// Requirements of reaction `i` are
    /// `reqs[req_ranges[i].0 .. req_ranges[i].1]`.
    req_ranges: Vec<(u32, u32)>,
    reqs: Vec<Requirement>,
    table: Option<Lut>,
}

impl CompiledModel {
    /// Compile `model` with the default LUT size cap.
    ///
    /// # Panics
    ///
    /// Panics if the model has more than [`MAX_KERNEL_REACTIONS`] reaction
    /// types.
    pub fn compile(model: &Model) -> Self {
        Self::compile_with_cap(model, DEFAULT_LUT_CAP)
    }

    /// Compile `model` if it is kernel-eligible (at most
    /// [`MAX_KERNEL_REACTIONS`] reaction types); `None` otherwise. The
    /// simulators use this so oversized models transparently keep the naive
    /// matcher instead of panicking.
    pub fn try_compile(model: &Model) -> Option<Self> {
        (model.num_reactions() <= MAX_KERNEL_REACTIONS).then(|| Self::compile(model))
    }

    /// Compile with an explicit LUT entry cap (`0` forces the per-reaction
    /// fallback; used by the differential tests to exercise both paths).
    pub fn compile_with_cap(model: &Model, lut_cap: usize) -> Self {
        assert!(
            model.num_reactions() <= MAX_KERNEL_REACTIONS,
            "compiled kernels support at most {MAX_KERNEL_REACTIONS} reaction types, got {}",
            model.num_reactions()
        );
        let mut cells: Vec<Offset> = model
            .reactions()
            .iter()
            .flat_map(|rt| rt.transforms().iter().map(|t| t.offset))
            .collect();
        cells.sort_unstable();
        cells.dedup();
        assert!(
            cells.len() <= u16::MAX as usize,
            "stencil of {} cells exceeds u16 indexing",
            cells.len()
        );
        let num_states = model.species().len() as u32;

        let mut req_ranges = Vec::with_capacity(model.num_reactions());
        let mut reqs = Vec::new();
        for rt in model.reactions() {
            let start = reqs.len() as u32;
            for t in rt.transforms() {
                let cell = cells.binary_search(&t.offset).expect("offset in stencil") as u16;
                reqs.push(Requirement {
                    cell,
                    src: t.src.id(),
                });
            }
            req_ranges.push((start, reqs.len() as u32));
        }

        // Radix weights S^j; also detects code overflow (u32 codes).
        let mut weights = Vec::with_capacity(cells.len());
        let mut entries: Option<usize> = Some(1);
        let mut w: Option<u32> = Some(1);
        for _ in 0..cells.len() {
            weights.push(w.unwrap_or(0));
            entries = entries.and_then(|e| e.checked_mul(num_states as usize));
            w = w.and_then(|w| w.checked_mul(num_states));
        }
        let lut_entries = entries.filter(|&e| e <= lut_cap && w.is_some());

        let rates: Vec<f64> = model.reactions().iter().map(|rt| rt.rate()).collect();
        let mut compiled = CompiledModel {
            num_reactions: model.num_reactions(),
            num_states,
            cells,
            weights,
            rates,
            req_ranges,
            reqs,
            table: None,
        };
        if let Some(entries) = lut_entries {
            compiled.table = Some(compiled.build_lut(entries));
        }
        compiled
    }

    /// Enumerate every code with an odometer over the stencil digits and
    /// evaluate all reactions' requirements against it.
    fn build_lut(&self, entries: usize) -> Lut {
        let mut mask = Vec::with_capacity(entries);
        let mut rate_sum = Vec::with_capacity(entries);
        let mut digits = vec![0u8; self.cells.len()];
        for code in 0..entries {
            let m = self.eval(|cell| digits[cell as usize]);
            mask.push(m);
            rate_sum.push(self.rate_of_mask(m));
            // Advance the odometer (skip after the last code).
            if code + 1 < entries {
                for d in digits.iter_mut() {
                    *d += 1;
                    if u32::from(*d) < self.num_states {
                        break;
                    }
                    *d = 0;
                }
            }
        }
        Lut { mask, rate_sum }
    }

    /// Number of reaction types.
    pub fn num_reactions(&self) -> usize {
        self.num_reactions
    }

    /// Number of states `S` (the code radix).
    pub fn num_states(&self) -> u32 {
        self.num_states
    }

    /// The stencil cells, sorted and deduplicated.
    pub fn cells(&self) -> &[Offset] {
        &self.cells
    }

    /// Radix weight `S^j` of stencil cell `j`.
    #[inline]
    pub fn weight(&self, cell: usize) -> u32 {
        self.weights[cell]
    }

    /// Rate constant of reaction `i`.
    pub fn rate(&self, reaction: usize) -> f64 {
        self.rates[reaction]
    }

    /// True when the full-code LUT was compiled (vs the per-reaction
    /// requirement fallback).
    pub fn has_lut(&self) -> bool {
        self.table.is_some()
    }

    /// Number of LUT entries (`S^|stencil|`), or 0 in fallback mode.
    pub fn lut_entries(&self) -> usize {
        self.table.as_ref().map_or(0, |t| t.mask.len())
    }

    /// The requirements of reaction `i`.
    pub fn requirements(&self, reaction: usize) -> &[Requirement] {
        let (start, end) = self.req_ranges[reaction];
        &self.reqs[start as usize..end as usize]
    }

    /// Enabled-reaction bitmask for a neighborhood code (LUT mode only).
    #[inline]
    pub fn mask_for_code(&self, code: u32) -> u64 {
        self.table.as_ref().expect("LUT compiled").mask[code as usize]
    }

    /// The whole mask table, `None` in fallback mode. `SiteKernel` keeps its
    /// own copy so the per-trial check reads one flat slice instead of
    /// chasing `Arc → table → mask`.
    pub fn lut_masks(&self) -> Option<&[u64]> {
        self.table.as_ref().map(|t| t.mask.as_slice())
    }

    /// Summed enabled rate for a neighborhood code (LUT mode only).
    #[inline]
    pub fn rate_for_code(&self, code: u32) -> f64 {
        self.table.as_ref().expect("LUT compiled").rate_sum[code as usize]
    }

    /// Evaluate the enabled-reaction bitmask from a cell-state oracle
    /// (`get(cell)` returns the state of stencil cell `cell`). Used to build
    /// the LUT, to rebuild site masks in fallback mode, and by tests.
    #[inline]
    pub fn eval(&self, get: impl Fn(u16) -> u8) -> u64 {
        let mut mask = 0u64;
        for (ri, &(start, end)) in self.req_ranges.iter().enumerate() {
            let ok = self.reqs[start as usize..end as usize]
                .iter()
                .all(|r| get(r.cell) == r.src);
            mask |= (ok as u64) << ri;
        }
        mask
    }

    /// Summed rate of the reactions set in `mask`, accumulated in reaction
    /// order (bit-identical to the LUT's cumulative-rate row).
    #[inline]
    pub fn rate_of_mask(&self, mask: u64) -> f64 {
        let mut sum = 0.0;
        let mut bits = mask;
        while bits != 0 {
            let ri = bits.trailing_zeros() as usize;
            sum += self.rates[ri];
            bits &= bits - 1;
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_model::library::zgb::zgb_ziff;
    use psr_model::ModelBuilder;

    #[test]
    fn zgb_compiles_to_von_neumann_lut() {
        let model = zgb_ziff(0.5, 2.0);
        let c = CompiledModel::compile(&model);
        assert_eq!(c.num_states(), 3);
        assert_eq!(c.cells().len(), 5, "von Neumann stencil");
        assert!(c.has_lut());
        assert_eq!(c.lut_entries(), 243, "3^5 codes");
        assert_eq!(c.num_reactions(), 7);
    }

    #[test]
    fn lut_mask_matches_direct_evaluation() {
        let model = zgb_ziff(0.45, 10.0);
        let c = CompiledModel::compile(&model);
        let s = c.num_states();
        for code in 0..c.lut_entries() as u32 {
            // Decode digits the slow way and re-evaluate.
            let digit = |cell: u16| ((code / c.weight(cell as usize)) % s) as u8;
            assert_eq!(c.mask_for_code(code), c.eval(digit), "code {code}");
            assert_eq!(c.rate_for_code(code), c.rate_of_mask(c.eval(digit)));
        }
    }

    #[test]
    fn cap_forces_fallback() {
        let model = zgb_ziff(0.5, 2.0);
        let c = CompiledModel::compile_with_cap(&model, 100);
        assert!(!c.has_lut());
        assert_eq!(c.lut_entries(), 0);
        // Requirements still compiled: CO adsorption needs vacant origin.
        assert_eq!(c.requirements(0), &[Requirement { cell: 2, src: 0 }]);
    }

    #[test]
    fn single_site_model_compiles() {
        let model = ModelBuilder::new(&["*", "A"])
            .reaction("ads", 1.0, |r| {
                r.site((0, 0), "*", "A");
            })
            .build();
        let c = CompiledModel::compile(&model);
        assert_eq!(c.cells().len(), 1);
        assert_eq!(c.lut_entries(), 2);
        assert_eq!(c.mask_for_code(0), 1, "vacant origin enables adsorption");
        assert_eq!(c.mask_for_code(1), 0);
        assert_eq!(c.rate_for_code(0), 1.0);
    }
}
