//! Kill-and-resume durability: a batch that dies mid-run must, after
//! `--resume`, produce *bit-identical* final trajectories to a batch that
//! was never interrupted. These tests drive the engine end to end through
//! the text spec format, the worker pool, the checkpoint store and the
//! journal — the same path the `psr-engine` binary takes.

use psr_engine::{BatchSpec, Engine, JobStatus, RunOptions};
use psr_lattice::io;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("psr_engine_resume_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A two-job ZGB batch; `abort` injects a simulated kill into job `a`.
fn spec_text(dir: &Path, abort: bool) -> String {
    let fault = if abort { "abort_at_step = 30\n" } else { "" };
    format!(
        "[engine]
workers = 2
checkpoint_dir = {dir}
backoff_base_ms = 1

[job a]
model = zgb 0.51 5
algorithm = pndca five random-order
side = 20
seed = 42
steps = 80
checkpoint_every = 10
{fault}
[job b]
model = zgb 0.51 5
algorithm = rsm
side = 20
seed = 43
steps = 60
checkpoint_every = 20
",
        dir = dir.display()
    )
}

/// Per-species site fractions of a `.done` snapshot.
fn coverages(path: &Path) -> Vec<f64> {
    let (lattice, _) = io::load_v2(path).expect("final snapshot");
    let dims = lattice.dims();
    let total = (dims.width() * dims.height()) as f64;
    let mut counts = vec![0u64; 0];
    for y in 0..dims.height() {
        for x in 0..dims.width() {
            let s = lattice.get(dims.site_at(x as i64, y as i64)) as usize;
            if counts.len() <= s {
                counts.resize(s + 1, 0);
            }
            counts[s] += 1;
        }
    }
    counts.iter().map(|&c| c as f64 / total).collect()
}

#[test]
fn killed_batch_resumes_bit_identically() {
    // Run 1: the batch is "killed" (injected abort) after job a's step-30
    // checkpoint. The engine is dropped entirely, like a dead process.
    let faulty_dir = temp_dir("killed");
    let batch = BatchSpec::parse(&spec_text(&faulty_dir, true)).expect("spec parses");
    {
        let engine = Engine::new(batch.engine.clone());
        let report = engine.run(&batch, &RunOptions::default()).expect("run");
        let a = &report.jobs[0];
        assert!(
            matches!(a.status, JobStatus::Interrupted(_)),
            "job a should be interrupted, got {a:?}"
        );
        // The in-flight checkpoint carries exactly the abort step.
        let ck = psr_engine::CheckpointStore::open(&faulty_dir)
            .expect("store")
            .load("a")
            .expect("load")
            .expect("checkpoint exists");
        assert_eq!(ck.steps, 30);
    }

    // Run 2: a fresh engine resumes the same spec and finishes the batch.
    {
        let engine = Engine::new(batch.engine.clone());
        let report = engine
            .run(
                &batch,
                &RunOptions {
                    resume: true,
                    ..RunOptions::default()
                },
            )
            .expect("resume");
        assert!(report.all_completed(), "{report:?}");
    }

    // Reference: the identical batch without the fault, never interrupted.
    let clean_dir = temp_dir("clean");
    let clean = BatchSpec::parse(&spec_text(&clean_dir, false)).expect("spec parses");
    Engine::new(clean.engine.clone())
        .run(&clean, &RunOptions::default())
        .expect("clean run");

    for job in ["a", "b"] {
        let resumed = std::fs::read_to_string(faulty_dir.join(format!("{job}.done"))).unwrap();
        let reference = std::fs::read_to_string(clean_dir.join(format!("{job}.done"))).unwrap();
        assert_eq!(
            resumed, reference,
            "job {job}: resumed snapshot differs from uninterrupted run"
        );
        assert_eq!(
            coverages(&faulty_dir.join(format!("{job}.done"))),
            coverages(&clean_dir.join(format!("{job}.done"))),
            "job {job}: coverages differ"
        );
    }

    // The resumed journal keeps the whole history: kill then resume.
    let journal = std::fs::read_to_string(batch.engine.journal()).expect("journal");
    assert!(journal.contains("\"ev\":\"interrupt\""));
    assert!(journal.contains("\"resumed\":true"));
    assert_eq!(journal.matches("\"ev\":\"batch_start\"").count(), 2);
}

#[test]
fn killed_fskmc_job_resumes_bit_identically() {
    // The fractional-step executor runs exact KMC *inside* each window, but
    // windows are checkpoint seams: a kill after the step-12 checkpoint must
    // resume onto the uninterrupted trajectory bit for bit.
    let spec = |dir: &Path, abort: bool| {
        let fault = if abort { "abort_at_step = 12\n" } else { "" };
        format!(
            "[engine]
workers = 1
checkpoint_dir = {dir}
backoff_base_ms = 1

[job fsk]
model = zgb 0.51 5
algorithm = fskmc
side = 20
seed = 17
steps = 40
window = 0.25
splitting = strang
checkpoint_every = 4
{fault}",
            dir = dir.display()
        )
    };

    let faulty_dir = temp_dir("fskmc_killed");
    let batch = BatchSpec::parse(&spec(&faulty_dir, true)).expect("spec parses");
    {
        let engine = Engine::new(batch.engine.clone());
        let report = engine.run(&batch, &RunOptions::default()).expect("run");
        assert!(
            matches!(report.jobs[0].status, JobStatus::Interrupted(_)),
            "job should be interrupted, got {:?}",
            report.jobs[0]
        );
        let ck = psr_engine::CheckpointStore::open(&faulty_dir)
            .expect("store")
            .load("fsk")
            .expect("load")
            .expect("checkpoint exists");
        assert_eq!(ck.steps, 12);
        // The clock at a window boundary is a pure function of the window
        // count — that is the seam the resume relies on.
        assert_eq!(ck.time.to_bits(), (0.25f64 * 12.0).to_bits());
    }
    {
        let engine = Engine::new(batch.engine.clone());
        let report = engine
            .run(
                &batch,
                &RunOptions {
                    resume: true,
                    ..RunOptions::default()
                },
            )
            .expect("resume");
        assert!(report.all_completed(), "{report:?}");
    }

    let clean_dir = temp_dir("fskmc_clean");
    let clean = BatchSpec::parse(&spec(&clean_dir, false)).expect("spec parses");
    Engine::new(clean.engine.clone())
        .run(&clean, &RunOptions::default())
        .expect("clean run");

    assert_eq!(
        std::fs::read_to_string(faulty_dir.join("fsk.done")).unwrap(),
        std::fs::read_to_string(clean_dir.join("fsk.done")).unwrap(),
        "resumed fskmc snapshot differs from uninterrupted run"
    );
}

#[test]
fn ignore_faults_strips_injection_from_a_faulty_spec() {
    let dir = temp_dir("ignore");
    let batch = BatchSpec::parse(&spec_text(&dir, true)).expect("spec parses");
    let report = Engine::new(batch.engine.clone())
        .run(
            &batch,
            &RunOptions {
                ignore_faults: true,
                ..RunOptions::default()
            },
        )
        .expect("run");
    assert!(report.all_completed(), "{report:?}");
}

#[test]
fn panicking_job_recovers_from_its_checkpoint() {
    let dir = temp_dir("panic");
    let text = format!(
        "[engine]
workers = 1
checkpoint_dir = {dir}
max_retries = 2
backoff_base_ms = 1

[job flaky]
model = zgb 0.5 5
algorithm = ndca
side = 12
seed = 9
steps = 40
checkpoint_every = 8
fail_at_step = 20
",
        dir = dir.display()
    );
    let batch = BatchSpec::parse(&text).expect("spec parses");
    // Silence the injected panic's default backtrace spew.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .unwrap_or("");
        if !msg.contains("injected fault") {
            default_hook(info);
        }
    }));
    let engine = Engine::new(batch.engine.clone());
    let report = engine.run(&batch, &RunOptions::default()).expect("run");
    let _ = std::panic::take_hook();
    assert!(report.all_completed(), "{report:?}");
    assert_eq!(report.jobs[0].attempts, 2);
    assert_eq!(engine.metrics().counter("retries").get(), 1);

    // Same spec, faults stripped: the trajectory must match bit for bit —
    // the crash/retry cycle leaves no trace in the physics.
    let clean_dir = temp_dir("panic_clean");
    let clean_text = text.replace(&dir.display().to_string(), &clean_dir.display().to_string());
    let clean = BatchSpec::parse(&clean_text).expect("spec parses");
    Engine::new(clean.engine.clone())
        .run(
            &clean,
            &RunOptions {
                ignore_faults: true,
                ..RunOptions::default()
            },
        )
        .expect("clean run");
    assert_eq!(
        std::fs::read_to_string(dir.join("flaky.done")).unwrap(),
        std::fs::read_to_string(clean_dir.join("flaky.done")).unwrap(),
        "retried trajectory differs from clean run"
    );
}
