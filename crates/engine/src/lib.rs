//! Fault-tolerant experiment engine for surface-reaction simulations.
//!
//! Research sweeps (the Fig 7 efficiency scans, the oscillation studies)
//! are long batches of independent simulation jobs. This crate makes such
//! batches *durable* and *observable*:
//!
//! - **Declarative specs** ([`spec`]): a batch is a text file of jobs —
//!   model, algorithm, lattice size, seed, steps, checkpoint interval —
//!   plus engine settings (workers, retries, deadlines).
//! - **Durability** ([`checkpoint`], [`runner`], [`engine`]): jobs
//!   checkpoint periodically through `psr-core`'s [`psr_core::SimSession`]
//!   (lattice + clock + step count + RNG stream, the v2 snapshot format of
//!   `psr-lattice::io`), so a killed batch resumes *bit-identically*;
//!   panicking jobs are retried from their last checkpoint with capped
//!   backoff; a cancellation flag checkpoints in-flight jobs and drains the
//!   queue.
//! - **Observability** ([`metrics`], [`journal`], [`dashboard`]): a
//!   lock-cheap metrics registry, an append-only JSONL event journal, and a
//!   periodic ASCII status dashboard.
//!
//! The `psr-engine` binary wires these together behind a small CLI; the
//! pieces are ordinary library types, so benches and the `repro_*` binaries
//! can embed the engine directly.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod dashboard;
pub mod engine;
pub mod journal;
pub mod metrics;
pub mod runner;
pub mod shard_session;
pub mod spec;

pub use checkpoint::CheckpointStore;
pub use engine::{BatchReport, Engine, JobReport, JobStatus, RunOptions};
pub use journal::{Journal, JsonLine};
pub use metrics::{MetricsSnapshot, Registry};
pub use runner::{BlockObserver, Interrupt, JobRun, NoObserver, RunOutcome};
pub use shard_session::{JobSession, ShardSession};
pub use spec::{BatchSpec, EngineConfig, JobSpec, ModelSpec};
