//! Lock-cheap metrics: counters, gauges and log₂-bucketed histograms.
//!
//! Handles are `Arc<AtomicU64>` wrappers: workers look a metric up once (one
//! short map lock) and then update it with plain atomic operations on the
//! hot path. The registry is cloneable and shared between the engine, its
//! workers, the journal and the status dashboard.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64` (stored as raw bits).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A histogram with one bucket per power of two (64 buckets for `u64`).
///
/// Bucket `0` holds the value `0`; bucket `i ≥ 1` holds values in
/// `[2^(i−1), 2^i)`. Quantiles are reported as the upper edge of the bucket
/// where the cumulative count crosses the requested rank — a factor-of-two
/// estimate, which is plenty for latency triage.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; 64],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).min(63)
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Upper-edge estimate of the `q`-quantile (`0 < q <= 1`).
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        u64::MAX
    }

    /// Summarise for a snapshot.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            p50: self.quantile(0.5),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Point-in-time view of one histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Upper-edge estimate of the median.
    pub p50: u64,
    /// Upper-edge estimate of the 95th percentile.
    pub p95: u64,
    /// Upper-edge estimate of the 99th percentile (the latency SLO figure
    /// the serving layer reports).
    pub p99: u64,
}

/// Cloneable, thread-shared registry of named metrics.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: Arc<Mutex<BTreeMap<String, Arc<AtomicU64>>>>,
    gauges: Arc<Mutex<BTreeMap<String, Arc<AtomicU64>>>>,
    histograms: Arc<Mutex<BTreeMap<String, Arc<Histogram>>>>,
}

/// Point-in-time view of every metric, sorted by name.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl Registry {
    /// A fresh registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("metrics lock");
        Counter(Arc::clone(map.entry(name.to_owned()).or_default()))
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("metrics lock");
        Gauge(Arc::clone(map.entry(name.to_owned()).or_insert_with(
            || Arc::new(AtomicU64::new(0.0f64.to_bits())),
        )))
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("metrics lock");
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Snapshot every metric (sorted by name — `BTreeMap` order).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.summary()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_storage_by_name() {
        let reg = Registry::new();
        let a = reg.counter("jobs");
        let b = reg.counter("jobs");
        a.add(3);
        b.add(4);
        assert_eq!(reg.counter("jobs").get(), 7);
    }

    #[test]
    fn gauges_hold_floats() {
        let reg = Registry::new();
        reg.gauge("rate").set(12.75);
        assert_eq!(reg.gauge("rate").get(), 12.75);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 3, 10, 100, 1000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 1115);
        // Median rank 4 lands on value 3 → bucket [2,4) → upper edge 4.
        assert_eq!(s.p50, 4);
        assert!(s.p95 >= 1000);
        assert!(s.p99 >= s.p95);
        assert_eq!(h.quantile(1.0), h.quantile(0.99));
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = Registry::new();
        reg.counter("b").add(1);
        reg.counter("a").add(2);
        reg.gauge("g").set(1.0);
        reg.histogram("h").record(5);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a".to_owned(), 2), ("b".to_owned(), 1)]
        );
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 1);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let reg = Registry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = reg.counter("n");
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(reg.counter("n").get(), 4000);
    }
}
