//! Declarative batch specifications.
//!
//! A batch is a set of independent simulation jobs plus engine settings,
//! written in a tiny INI-style text format (`EXPERIMENTS.md` has a worked
//! example):
//!
//! ```text
//! # comment
//! [engine]
//! workers = 2
//! checkpoint_dir = results/engine_state
//! max_retries = 2
//!
//! [job zgb_small]
//! model = zgb 0.51 5
//! algorithm = pndca five random-order
//! side = 20
//! seed = 7
//! steps = 200
//! checkpoint_every = 50
//! ```
//!
//! The two `*_at_step` keys are fault injection for durability testing:
//! `fail_at_step` panics the job once (first attempt only), exercising the
//! retry path; `abort_at_step` interrupts the whole run after the job
//! checkpoints at that step, simulating a kill so `--resume` can be
//! exercised deterministically.

use psr_ca::splitting::{squarest_grid, Schedule};
use psr_core::{Algorithm, PartitionSpec};
use psr_model::library::kuzovkov::{kuzovkov_model, KuzovkovParams};
use psr_model::library::zgb::zgb_ziff;
use psr_model::Model;
use std::path::PathBuf;

/// Which reaction model a job simulates.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelSpec {
    /// ZGB CO oxidation at CO fraction `y` with reaction rate `k`.
    Zgb {
        /// CO impingement fraction.
        y: f64,
        /// CO+O reaction rate.
        k: f64,
    },
    /// The Kuzovkov Pt(100) oscillation model with default parameters.
    Kuzovkov,
}

impl ModelSpec {
    /// Materialise the model.
    pub fn build(&self) -> Model {
        match self {
            ModelSpec::Zgb { y, k } => zgb_ziff(*y, *k),
            ModelSpec::Kuzovkov => kuzovkov_model(KuzovkovParams::default()),
        }
    }

    /// Parse `zgb <y> <k>` or `kuzovkov`.
    ///
    /// # Errors
    ///
    /// Describes the first problem with the spec string.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut parts = s.split_whitespace();
        match parts.next() {
            Some("zgb") => {
                let y: f64 = parts
                    .next()
                    .ok_or("zgb needs <y> <k>")?
                    .parse()
                    .map_err(|e| format!("zgb y: {e}"))?;
                let k: f64 = parts
                    .next()
                    .ok_or("zgb needs <y> <k>")?
                    .parse()
                    .map_err(|e| format!("zgb k: {e}"))?;
                if !(0.0..=1.0).contains(&y) || !k.is_finite() || k <= 0.0 {
                    return Err(format!("zgb parameters out of range: y={y} k={k}"));
                }
                Ok(ModelSpec::Zgb { y, k })
            }
            Some("kuzovkov") => Ok(ModelSpec::Kuzovkov),
            other => Err(format!(
                "unknown model {other:?} (expected zgb or kuzovkov)"
            )),
        }
    }
}

/// Parse an algorithm spec string.
///
/// Accepted forms: `rsm`, `rsm-discretized`, `ndca`, `ndca-shuffled`,
/// `pndca <partition> <selection>`, `lpndca <partition> <l> <visit>`,
/// `tpndca`, `fskmc` — the step-resumable subset of [`Algorithm`].
///
/// `fskmc` starts from the defaults (2×2 blocks, Lie, window 0.1) which the
/// job keys `splitting = lie|strang`, `window = Δt` and `blocks = N`
/// override.
///
/// # Errors
///
/// Describes the first problem with the spec string.
pub fn parse_algorithm(s: &str) -> Result<Algorithm, String> {
    let mut parts = s.split_whitespace();
    let head = parts.next().ok_or("empty algorithm")?;
    let alg = match head {
        "rsm" => Algorithm::Rsm,
        "rsm-discretized" => Algorithm::RsmDiscretized,
        "ndca" => Algorithm::Ndca { shuffled: false },
        "ndca-shuffled" => Algorithm::Ndca { shuffled: true },
        "tpndca" => Algorithm::TPndca,
        "fskmc" => Algorithm::Fskmc {
            gx: 2,
            gy: 2,
            schedule: Schedule::Lie,
            window: 0.1,
        },
        "pndca" => {
            let partition: PartitionSpec = parts
                .next()
                .ok_or("pndca needs <partition> <selection>")?
                .parse()?;
            let selection = parts
                .next()
                .ok_or("pndca needs <partition> <selection>")?
                .parse()?;
            Algorithm::Pndca {
                partition,
                selection,
            }
        }
        "lpndca" => {
            let partition: PartitionSpec = parts
                .next()
                .ok_or("lpndca needs <partition> <l> <visit>")?
                .parse()?;
            let l: usize = parts
                .next()
                .ok_or("lpndca needs <partition> <l> <visit>")?
                .parse()
                .map_err(|e| format!("lpndca l: {e}"))?;
            let visit = parts
                .next()
                .ok_or("lpndca needs <partition> <l> <visit>")?
                .parse()?;
            Algorithm::LPndca {
                partition,
                l,
                visit,
            }
        }
        other => return Err(format!("unknown algorithm {other:?}")),
    };
    if let Some(extra) = parts.next() {
        return Err(format!("trailing token {extra:?} in algorithm spec"));
    }
    Ok(alg)
}

/// How a sharded job's workers communicate (`transport = ...`). Only
/// meaningful with `shards > 1`; every transport carries the bit-identical
/// trajectory, so this is purely an execution choice.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Transport {
    /// Single-threaded lockstep scheduler (the default).
    #[default]
    Inline,
    /// One OS thread per worker, channel exchange.
    Threaded,
    /// One OS process per worker over Unix-domain sockets.
    Unix,
    /// One OS process per worker over loopback TCP.
    Tcp,
}

impl Transport {
    /// Parse a `transport =` value.
    ///
    /// # Errors
    ///
    /// Unknown token.
    pub fn parse(s: &str) -> Result<Transport, String> {
        match s {
            "inline" => Ok(Transport::Inline),
            "threaded" => Ok(Transport::Threaded),
            "unix" => Ok(Transport::Unix),
            "tcp" => Ok(Transport::Tcp),
            other => Err(format!(
                "unknown transport {other:?} (expected inline|threaded|unix|tcp)"
            )),
        }
    }
}

/// One durable simulation job.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Unique name; used as the checkpoint/journal key and file stem.
    pub name: String,
    /// Reaction model.
    pub model: ModelSpec,
    /// Algorithm (must be step-resumable).
    pub algorithm: Algorithm,
    /// Square lattice side.
    pub side: u32,
    /// Master RNG seed.
    pub seed: u64,
    /// Whole algorithm steps to run.
    pub steps: u64,
    /// Sharded-executor worker count (1 = the in-process session). Values
    /// above 1 route the job through `psr-shard`'s domain-decomposed
    /// executor; only `pndca` algorithms support it.
    pub shards: u32,
    /// Worker communication for sharded jobs (in-process or sockets).
    pub transport: Transport,
    /// Checkpoint every this many steps.
    pub checkpoint_every: u64,
    /// Fault injection: panic once when the first attempt reaches this step.
    pub fail_at_step: Option<u64>,
    /// Fault injection: interrupt (simulated kill) after the checkpoint at
    /// this step.
    pub abort_at_step: Option<u64>,
}

impl JobSpec {
    /// A job with required fields set and defaults elsewhere
    /// (`checkpoint_every = max(1, steps / 10)`, no fault injection).
    pub fn new(
        name: &str,
        model: ModelSpec,
        algorithm: Algorithm,
        side: u32,
        seed: u64,
        steps: u64,
    ) -> Self {
        JobSpec {
            name: name.to_owned(),
            model,
            algorithm,
            side,
            seed,
            steps,
            shards: 1,
            transport: Transport::Inline,
            checkpoint_every: (steps / 10).max(1),
            fail_at_step: None,
            abort_at_step: None,
        }
    }

    /// Validate self-consistency (positive sizes, sane fault steps, a name
    /// usable as a file stem).
    ///
    /// # Errors
    ///
    /// Describes the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty()
            || !self
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(format!(
                "job name {:?} must be non-empty [A-Za-z0-9_-] (it names checkpoint files)",
                self.name
            ));
        }
        if self.side == 0 {
            return Err(format!("job {}: side must be positive", self.name));
        }
        if self.steps == 0 {
            return Err(format!("job {}: steps must be positive", self.name));
        }
        if self.checkpoint_every == 0 {
            return Err(format!(
                "job {}: checkpoint_every must be positive",
                self.name
            ));
        }
        if self.shards == 0 {
            return Err(format!("job {}: shards must be positive", self.name));
        }
        if self.shards > 1 && !matches!(self.algorithm, Algorithm::Pndca { .. }) {
            return Err(format!(
                "job {}: shards = {} requires a pndca algorithm (got {:?})",
                self.name, self.shards, self.algorithm
            ));
        }
        if self.transport != Transport::Inline && self.shards == 1 {
            return Err(format!(
                "job {}: transport = {:?} requires shards > 1",
                self.name, self.transport
            ));
        }
        for (key, v) in [
            ("fail_at_step", self.fail_at_step),
            ("abort_at_step", self.abort_at_step),
        ] {
            if let Some(v) = v {
                if v == 0 || v >= self.steps {
                    return Err(format!(
                        "job {}: {key} = {v} must lie strictly inside (0, steps)",
                        self.name
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Engine-wide settings.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Directory holding checkpoints, final snapshots and the journal.
    pub checkpoint_dir: PathBuf,
    /// Journal path (defaults to `<checkpoint_dir>/journal.jsonl`).
    pub journal_path: Option<PathBuf>,
    /// Retries after a job panic before giving up.
    pub max_retries: u32,
    /// First retry backoff.
    pub backoff_base_ms: u64,
    /// Backoff cap (doubling stops here).
    pub backoff_cap_ms: u64,
    /// Per-job wall-clock budget; exceeded jobs checkpoint and fail.
    pub deadline_ms: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 1,
            checkpoint_dir: PathBuf::from("engine-state"),
            journal_path: None,
            max_retries: 2,
            backoff_base_ms: 50,
            backoff_cap_ms: 2000,
            deadline_ms: None,
        }
    }
}

impl EngineConfig {
    /// The journal path (explicit or the default inside `checkpoint_dir`).
    pub fn journal(&self) -> PathBuf {
        self.journal_path
            .clone()
            .unwrap_or_else(|| self.checkpoint_dir.join("journal.jsonl"))
    }
}

/// A parsed batch: engine settings plus jobs, in file order.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchSpec {
    /// Engine settings.
    pub engine: EngineConfig,
    /// Jobs, in declaration order.
    pub jobs: Vec<JobSpec>,
}

impl BatchSpec {
    /// Parse the INI-style batch format (see the module docs).
    ///
    /// # Errors
    ///
    /// Reports the first malformed line with its line number.
    pub fn parse(text: &str) -> Result<Self, String> {
        enum Section {
            None,
            Engine,
            Job(usize),
        }
        // Per-job: name plus its (key, value, line-number) entries.
        type JobKeys = Vec<(String, String, usize)>;
        let mut engine = EngineConfig::default();
        let mut jobs: Vec<JobSpec> = Vec::new();
        // (name, line number of the `[job …]` header, keys)
        let mut partial: Vec<(String, usize, JobKeys)> = Vec::new();
        let mut section = Section::None;

        for (lineno, raw) in text.lines().enumerate() {
            let lineno = lineno + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let header = header.trim();
                if header == "engine" {
                    section = Section::Engine;
                } else if let Some(name) = header.strip_prefix("job ") {
                    let name = name.trim().to_owned();
                    if partial.iter().any(|(n, _, _)| *n == name) {
                        return Err(format!("line {lineno}: duplicate job {name:?}"));
                    }
                    partial.push((name, lineno, Vec::new()));
                    section = Section::Job(partial.len() - 1);
                } else {
                    return Err(format!("line {lineno}: unknown section [{header}]"));
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or(format!("line {lineno}: expected `key = value`"))?;
            let (key, value) = (key.trim().to_owned(), value.trim().to_owned());
            match section {
                Section::None => {
                    return Err(format!("line {lineno}: `{key}` outside any section"));
                }
                Section::Engine => {
                    Self::apply_engine_key(&mut engine, &key, &value)
                        .map_err(|e| format!("line {lineno}: {e}"))?;
                }
                Section::Job(i) => partial[i].2.push((key, value, lineno)),
            }
        }

        let mut header_lines = Vec::new();
        for (name, header_line, keys) in partial {
            jobs.push(Self::build_job(&name, header_line, keys)?);
            header_lines.push(header_line);
        }
        if jobs.is_empty() {
            return Err("batch declares no jobs".to_owned());
        }
        for (job, header_line) in jobs.iter().zip(&header_lines) {
            job.validate()
                .map_err(|e| format!("line {header_line}: {e}"))?;
        }
        Ok(BatchSpec { engine, jobs })
    }

    fn apply_engine_key(cfg: &mut EngineConfig, key: &str, value: &str) -> Result<(), String> {
        match key {
            "workers" => {
                cfg.workers = value.parse().map_err(|e| format!("workers: {e}"))?;
                if cfg.workers == 0 {
                    return Err("workers must be positive".to_owned());
                }
            }
            "checkpoint_dir" => cfg.checkpoint_dir = PathBuf::from(value),
            "journal" => cfg.journal_path = Some(PathBuf::from(value)),
            "max_retries" => {
                cfg.max_retries = value.parse().map_err(|e| format!("max_retries: {e}"))?
            }
            "backoff_base_ms" => {
                cfg.backoff_base_ms = value.parse().map_err(|e| format!("backoff_base_ms: {e}"))?
            }
            "backoff_cap_ms" => {
                cfg.backoff_cap_ms = value.parse().map_err(|e| format!("backoff_cap_ms: {e}"))?
            }
            "deadline_ms" => {
                cfg.deadline_ms = Some(value.parse().map_err(|e| format!("deadline_ms: {e}"))?)
            }
            other => return Err(format!("unknown engine key `{other}`")),
        }
        Ok(())
    }

    fn build_job(
        name: &str,
        header_line: usize,
        keys: Vec<(String, String, usize)>,
    ) -> Result<JobSpec, String> {
        let mut model = None;
        let mut algorithm = None;
        let mut side = None;
        let mut seed = 0u64;
        let mut steps = None;
        let mut shards = 1u32;
        let mut transport = Transport::Inline;
        let mut checkpoint_every = None;
        let mut fail_at_step = None;
        let mut abort_at_step = None;
        // fskmc-only keys, collected with their line numbers so misuse with
        // another algorithm (which may be declared later) reports a
        // position.
        let mut splitting: Option<(Schedule, usize)> = None;
        let mut window: Option<(f64, usize)> = None;
        let mut blocks: Option<(u32, usize)> = None;
        for (key, value, lineno) in keys {
            let err = |e: String| format!("line {lineno} (job {name}): {e}");
            match key.as_str() {
                "model" => model = Some(ModelSpec::parse(&value).map_err(err)?),
                "algorithm" => algorithm = Some(parse_algorithm(&value).map_err(err)?),
                "side" => side = Some(value.parse().map_err(|e| err(format!("side: {e}")))?),
                "seed" => seed = value.parse().map_err(|e| err(format!("seed: {e}")))?,
                "steps" => steps = Some(value.parse().map_err(|e| err(format!("steps: {e}")))?),
                "shards" => shards = value.parse().map_err(|e| err(format!("shards: {e}")))?,
                "transport" => transport = Transport::parse(&value).map_err(err)?,
                "checkpoint_every" => {
                    checkpoint_every = Some(
                        value
                            .parse()
                            .map_err(|e| err(format!("checkpoint_every: {e}")))?,
                    )
                }
                "fail_at_step" => {
                    fail_at_step = Some(
                        value
                            .parse()
                            .map_err(|e| err(format!("fail_at_step: {e}")))?,
                    )
                }
                "abort_at_step" => {
                    abort_at_step = Some(
                        value
                            .parse()
                            .map_err(|e| err(format!("abort_at_step: {e}")))?,
                    )
                }
                "splitting" => {
                    splitting = Some((value.parse().map_err(err)?, lineno));
                }
                "window" => {
                    let w: f64 = value.parse().map_err(|e| err(format!("window: {e}")))?;
                    if !w.is_finite() || w <= 0.0 {
                        return Err(err(format!("window = {w} must be positive and finite")));
                    }
                    window = Some((w, lineno));
                }
                "blocks" => {
                    let b: u32 = value.parse().map_err(|e| err(format!("blocks: {e}")))?;
                    if b == 0 {
                        return Err(err("blocks must be positive".to_owned()));
                    }
                    blocks = Some((b, lineno));
                }
                other => return Err(err(format!("unknown job key `{other}`"))),
            }
        }
        let missing = |what: &str| format!("line {header_line}: job {name}: missing {what}");
        let steps = steps.ok_or_else(|| missing("steps"))?;
        let mut job = JobSpec::new(
            name,
            model.ok_or_else(|| missing("model"))?,
            algorithm.ok_or_else(|| missing("algorithm"))?,
            side.ok_or_else(|| missing("side"))?,
            seed,
            steps,
        );
        job.shards = shards;
        job.transport = transport;
        if let Some(ce) = checkpoint_every {
            job.checkpoint_every = ce;
        }
        job.fail_at_step = fail_at_step;
        job.abort_at_step = abort_at_step;
        // Apply the splitting keys onto the fskmc defaults; reject them for
        // any other algorithm.
        if let Algorithm::Fskmc {
            gx,
            gy,
            schedule,
            window: w,
        } = &mut job.algorithm
        {
            if let Some((s, _)) = splitting {
                *schedule = s;
            }
            if let Some((v, _)) = window {
                *w = v;
            }
            if let Some((b, _)) = blocks {
                (*gx, *gy) = squarest_grid(b);
            }
        } else if let Some(lineno) = [
            splitting.map(|(_, l)| l),
            window.map(|(_, l)| l),
            blocks.map(|(_, l)| l),
        ]
        .into_iter()
        .flatten()
        .next()
        {
            return Err(format!(
                "line {lineno} (job {name}): `splitting`/`window`/`blocks` require \
                 algorithm = fskmc"
            ));
        }
        Ok(job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_ca::pndca::ChunkSelection;

    const SPEC: &str = "
# demo batch
[engine]
workers = 2
checkpoint_dir = /tmp/psr-ckpt
max_retries = 3
deadline_ms = 60000

[job a]
model = zgb 0.51 5
algorithm = pndca five random-order
side = 20
seed = 7
steps = 200
checkpoint_every = 50

[job b]
model = kuzovkov          # inline comment
algorithm = ndca
side = 30
steps = 40
fail_at_step = 9

[job c]
model = zgb 0.5 2
algorithm = pndca five in-order
side = 20
steps = 30
shards = 4
transport = unix
";

    #[test]
    fn parses_engine_and_jobs() {
        let batch = BatchSpec::parse(SPEC).expect("parse");
        assert_eq!(batch.engine.workers, 2);
        assert_eq!(batch.engine.max_retries, 3);
        assert_eq!(batch.engine.deadline_ms, Some(60000));
        assert_eq!(batch.jobs.len(), 3);
        let a = &batch.jobs[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.model, ModelSpec::Zgb { y: 0.51, k: 5.0 });
        assert_eq!(
            a.algorithm,
            Algorithm::Pndca {
                partition: PartitionSpec::FiveColoring,
                selection: ChunkSelection::RandomOrder,
            }
        );
        assert_eq!(a.checkpoint_every, 50);
        let b = &batch.jobs[1];
        assert_eq!(b.model, ModelSpec::Kuzovkov);
        assert_eq!(b.seed, 0);
        assert_eq!(b.checkpoint_every, 4); // steps/10 default
        assert_eq!(b.fail_at_step, Some(9));
        assert_eq!(b.shards, 1); // default: in-process session
        assert_eq!(b.transport, Transport::Inline);
        assert_eq!(batch.jobs[2].shards, 4);
        assert_eq!(batch.jobs[2].transport, Transport::Unix);
    }

    #[test]
    fn rejects_malformed_specs() {
        for (snippet, needle) in [
            ("workers = 2", "outside any section"),
            ("[engine]\nworkers = 0", "positive"),
            ("[mystery]\n", "unknown section"),
            ("[job a]\nsteps = 5", "missing model"),
            ("[engine]\nworkers = 1", "no jobs"),
            (
                "[job a]\nmodel = zgb 2.0 5\nalgorithm = rsm\nside = 10\nsteps = 5",
                "out of range",
            ),
            (
                "[job a]\nmodel = zgb 0.5 5\nalgorithm = warp\nside = 10\nsteps = 5",
                "unknown algorithm",
            ),
            (
                "[job a]\nmodel = zgb 0.5 5\nalgorithm = rsm\nside = 10\nsteps = 5\n[job a]\nmodel = kuzovkov\nalgorithm = rsm\nside = 10\nsteps = 5",
                "duplicate job",
            ),
            (
                "[job bad name]\nmodel = kuzovkov\nalgorithm = rsm\nside = 10\nsteps = 5",
                "A-Za-z0-9",
            ),
            (
                "[job a]\nmodel = kuzovkov\nalgorithm = rsm\nside = 10\nsteps = 5\nfail_at_step = 5",
                "strictly inside",
            ),
            (
                "[job a]\nmodel = zgb 0.5 2\nalgorithm = pndca five in-order\nside = 10\nsteps = 5\nshards = 0",
                "shards must be positive",
            ),
            (
                "[job a]\nmodel = zgb 0.5 2\nalgorithm = pndca five in-order\nside = 10\nsteps = 5\nshards = two",
                "shards:",
            ),
            (
                "[job a]\nmodel = kuzovkov\nalgorithm = ndca\nside = 10\nsteps = 5\nshards = 4",
                "requires a pndca algorithm",
            ),
            (
                "[job a]\nmodel = zgb 0.5 2\nalgorithm = pndca five in-order\nside = 10\nsteps = 5\nshards = 4\ntransport = carrier-pigeon",
                "unknown transport",
            ),
            (
                "[job a]\nmodel = zgb 0.5 2\nalgorithm = pndca five in-order\nside = 10\nsteps = 5\ntransport = unix",
                "requires shards > 1",
            ),
        ] {
            let err = BatchSpec::parse(snippet).unwrap_err();
            assert!(
                err.contains(needle),
                "spec {snippet:?}: error {err:?} missing {needle:?}"
            );
        }
    }

    #[test]
    fn malformed_job_sections_report_line_numbers() {
        // Server clients fixing a rejected spec need a position, so every
        // job-section problem must cite a line: bad values cite their own
        // line, missing keys and validation failures cite the `[job]`
        // header line.
        for (snippet, needle) in [
            // Bad value on line 3 of the section body.
            (
                "[job a]\nmodel = zgb 0.5 5\nalgorithm = warp\nside = 10\nsteps = 5",
                "line 3 (job a): unknown algorithm",
            ),
            (
                "\n\n[job a]\nmodel = zgb nope 5\nalgorithm = rsm\nside = 10\nsteps = 5",
                "line 4 (job a): zgb y",
            ),
            (
                "[job a]\nmodel = kuzovkov\nalgorithm = rsm\nside = ten\nsteps = 5",
                "line 4 (job a): side",
            ),
            // Missing keys cite the header line of the offending job.
            ("[job a]\nsteps = 5", "line 1: job a: missing model"),
            (
                "\n[job a]\nmodel = kuzovkov\nalgorithm = rsm\nside = 10",
                "line 2: job a: missing steps",
            ),
            (
                "[job ok]\nmodel = kuzovkov\nalgorithm = rsm\nside = 10\nsteps = 5\n\n[job b]\nmodel = kuzovkov\nsteps = 5",
                "line 7: job b: missing algorithm",
            ),
            // Validation failures (out-of-range cross-field constraints)
            // also cite the header line.
            (
                "[job a]\nmodel = kuzovkov\nalgorithm = rsm\nside = 0\nsteps = 5",
                "line 1: job a: side must be positive",
            ),
            (
                "\n\n\n[job a]\nmodel = kuzovkov\nalgorithm = rsm\nside = 10\nsteps = 5\nfail_at_step = 5",
                "line 4: job a: fail_at_step = 5 must lie strictly inside",
            ),
            (
                "[job a]\nmodel = zgb 2.0 5\nalgorithm = rsm\nside = 10\nsteps = 5",
                "line 2 (job a): zgb parameters out of range",
            ),
        ] {
            let err = BatchSpec::parse(snippet).unwrap_err();
            assert!(
                err.contains(needle),
                "spec {snippet:?}: error {err:?} missing {needle:?}"
            );
        }
    }

    #[test]
    fn algorithm_specs_roundtrip_through_display_names() {
        for s in [
            "rsm",
            "rsm-discretized",
            "ndca",
            "ndca-shuffled",
            "tpndca",
            "fskmc",
            "pndca five weighted",
            "pndca greedy in-order",
            "lpndca single 100 size-weighted",
            "lpndca five 1 random-once",
        ] {
            parse_algorithm(s).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
        assert!(parse_algorithm("pndca five weighted extra").is_err());
        assert!(parse_algorithm("pndca nowhere weighted").is_err());
        assert!(parse_algorithm("fskmc strang").is_err(), "trailing token");
    }

    #[test]
    fn fskmc_jobs_parse_splitting_keys() {
        let batch = BatchSpec::parse(
            "[job fsk]\nmodel = zgb 0.5 5\nalgorithm = fskmc\nside = 24\nsteps = 10\n\
             splitting = strang\nwindow = 0.25\nblocks = 8",
        )
        .expect("parse");
        assert_eq!(
            batch.jobs[0].algorithm,
            Algorithm::Fskmc {
                gx: 4,
                gy: 2,
                schedule: Schedule::Strang,
                window: 0.25,
            }
        );
        // Bare fskmc keeps the documented defaults.
        let batch = BatchSpec::parse(
            "[job fsk]\nmodel = zgb 0.5 5\nalgorithm = fskmc\nside = 24\nsteps = 10",
        )
        .expect("parse");
        assert_eq!(
            batch.jobs[0].algorithm,
            Algorithm::Fskmc {
                gx: 2,
                gy: 2,
                schedule: Schedule::Lie,
                window: 0.1,
            }
        );
    }

    #[test]
    fn splitting_keys_are_rejected_without_fskmc() {
        for (snippet, needle) in [
            (
                "[job a]\nmodel = kuzovkov\nalgorithm = ndca\nside = 10\nsteps = 5\nsplitting = lie",
                "require algorithm = fskmc",
            ),
            (
                "[job a]\nmodel = kuzovkov\nsplitting = lie\nalgorithm = ndca\nside = 10\nsteps = 5",
                "line 3 (job a)",
            ),
            (
                "[job a]\nmodel = kuzovkov\nalgorithm = fskmc\nside = 10\nsteps = 5\nwindow = 0",
                "must be positive",
            ),
            (
                "[job a]\nmodel = kuzovkov\nalgorithm = fskmc\nside = 10\nsteps = 5\nblocks = 0",
                "blocks must be positive",
            ),
            (
                "[job a]\nmodel = kuzovkov\nalgorithm = fskmc\nside = 10\nsteps = 5\nsplitting = trotter",
                "unknown splitting schedule",
            ),
            (
                "[job a]\nmodel = zgb 0.5 2\nalgorithm = fskmc\nside = 20\nsteps = 5\nshards = 4",
                "requires a pndca algorithm",
            ),
        ] {
            let err = BatchSpec::parse(snippet).unwrap_err();
            assert!(
                err.contains(needle),
                "spec {snippet:?}: error {err:?} missing {needle:?}"
            );
        }
    }

    #[test]
    fn model_specs_build() {
        assert!(
            ModelSpec::parse("zgb 0.5 5")
                .unwrap()
                .build()
                .num_reactions()
                > 0
        );
        assert!(
            ModelSpec::parse("kuzovkov")
                .unwrap()
                .build()
                .num_reactions()
                > 0
        );
    }
}
