//! `psr-engine` — run durable batches of surface-reaction simulations.
//!
//! ```text
//! psr-engine run <spec-file> [options]
//! psr-engine check <spec-file>
//!
//! options:
//!   --resume            continue from existing checkpoints (append journal)
//!   --workers N         override [engine] workers
//!   --ckpt-dir DIR      override [engine] checkpoint_dir
//!   --journal PATH      override the journal path
//!   --ignore-faults     strip fail_at_step/abort_at_step (reference run)
//!   --status-secs S     print an ASCII dashboard every S seconds
//!   --quiet             suppress the dashboard and per-job summary
//! ```
//!
//! Exit codes: `0` all jobs completed, `1` usage/spec errors, `2` at least
//! one job failed, `3` the batch was interrupted resumably (rerun with
//! `--resume` to continue).

use psr_engine::{BatchSpec, Engine, JobStatus, RunOptions};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: psr-engine run <spec-file> [--resume] [--workers N] \
[--ckpt-dir DIR] [--journal PATH] [--ignore-faults] [--status-secs S] [--quiet]
       psr-engine check <spec-file>";

struct Cli {
    command: String,
    spec_path: PathBuf,
    resume: bool,
    ignore_faults: bool,
    quiet: bool,
    workers: Option<usize>,
    ckpt_dir: Option<PathBuf>,
    journal: Option<PathBuf>,
    status_secs: Option<f64>,
}

fn parse_cli(mut args: std::env::Args) -> Result<Cli, String> {
    let _ = args.next(); // program name
    let command = args.next().ok_or(USAGE)?;
    if !matches!(command.as_str(), "run" | "check") {
        return Err(format!("unknown command {command:?}\n{USAGE}"));
    }
    let spec_path = PathBuf::from(args.next().ok_or(USAGE)?);
    let mut cli = Cli {
        command,
        spec_path,
        resume: false,
        ignore_faults: false,
        quiet: false,
        workers: None,
        ckpt_dir: None,
        journal: None,
        status_secs: None,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--resume" => cli.resume = true,
            "--ignore-faults" => cli.ignore_faults = true,
            "--quiet" => cli.quiet = true,
            "--workers" => {
                cli.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                )
            }
            "--ckpt-dir" => cli.ckpt_dir = Some(PathBuf::from(value("--ckpt-dir")?)),
            "--journal" => cli.journal = Some(PathBuf::from(value("--journal")?)),
            "--status-secs" => {
                cli.status_secs = Some(
                    value("--status-secs")?
                        .parse()
                        .map_err(|e| format!("--status-secs: {e}"))?,
                )
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(cli)
}

/// Suppress panic spew from injected faults (they are engine-internal
/// control flow, caught and retried); real panics still print.
fn install_quiet_fault_hook() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.contains("injected fault") {
            default_hook(info);
        }
    }));
}

fn run(cli: Cli) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(&cli.spec_path)
        .map_err(|e| format!("reading {}: {e}", cli.spec_path.display()))?;
    let mut batch = BatchSpec::parse(&text)?;
    if let Some(w) = cli.workers {
        batch.engine.workers = w;
    }
    if let Some(dir) = &cli.ckpt_dir {
        batch.engine.checkpoint_dir = dir.clone();
    }
    if let Some(path) = &cli.journal {
        batch.engine.journal_path = Some(path.clone());
    }

    if cli.command == "check" {
        println!(
            "ok: {} jobs, {} workers, checkpoints in {}",
            batch.jobs.len(),
            batch.engine.workers,
            batch.engine.checkpoint_dir.display()
        );
        for job in &batch.jobs {
            println!(
                "  {:<20} {:?} {:?} side={} seed={} steps={} ckpt-every={}",
                job.name,
                job.model,
                job.algorithm,
                job.side,
                job.seed,
                job.steps,
                job.checkpoint_every
            );
        }
        return Ok(ExitCode::SUCCESS);
    }

    install_quiet_fault_hook();
    let opts = RunOptions {
        resume: cli.resume,
        ignore_faults: cli.ignore_faults,
        status_every: if cli.quiet {
            None
        } else {
            Some(Duration::from_secs_f64(cli.status_secs.unwrap_or(5.0)))
        },
    };
    let engine = Engine::new(batch.engine.clone());
    let report = engine.run_with_status(&batch, &opts, |frame| print!("{frame}"))?;

    if !cli.quiet {
        for job in &report.jobs {
            match &job.status {
                JobStatus::Completed => {
                    println!("{}: completed ({} attempt(s))", job.name, job.attempts)
                }
                JobStatus::Interrupted(reason) => println!(
                    "{}: interrupted ({}) — rerun with --resume",
                    job.name,
                    reason.as_str()
                ),
                JobStatus::Failed(e) => println!("{}: FAILED: {e}", job.name),
            }
        }
        println!(
            "journal: {}  checkpoints: {}",
            batch.engine.journal().display(),
            batch.engine.checkpoint_dir.display()
        );
    }

    Ok(if report.any_failed() {
        ExitCode::from(2)
    } else if report.any_interrupted() {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    match parse_cli(std::env::args()).and_then(run) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("psr-engine: {e}");
            ExitCode::FAILURE
        }
    }
}
