//! Sharded job sessions: the `shards = N` execution path.
//!
//! Jobs with `shards > 1` bypass the in-process [`SimSession`] and run on
//! `psr-shard`'s domain-decomposed executor instead: the lattice is tiled
//! over a [`ShardGrid`] of workers, each with its own sub-lattice, kernel,
//! and RNG streams, exchanging boundary state through the halo-frame
//! protocol. Because the sharded executor keys every draw stream by the
//! *absolute* step number, a block is resumable from nothing but
//! `(lattice, time, steps)` — the executor is rebuilt per block with
//! `set_start_step`, and the trajectory is bit-identical to an
//! uninterrupted run (pinned by `psr-shard`'s differential tests).
//!
//! [`JobSession`] is the runner-facing abstraction: either flavour, with
//! uniform `run_blocks` / checkpoint semantics plus the sharded path's
//! measured communication counters for the metrics registry.

use crate::spec::{JobSpec, Transport};
use psr_ca::partition::Partition;
use psr_ca::pndca::ChunkSelection;
use psr_core::{Algorithm, Checkpointable, SessionCheckpoint, SimSession, Simulator};
use psr_dmc::events::EventHook;
use psr_dmc::rsm::RunStats;
use psr_dmc::sim::SimState;
use psr_lattice::{Dims, Lattice};
use psr_model::Model;
use psr_rng::rng_from_seed;
use psr_shard::{CommStats, ScheduleMode, ShardGrid, ShardedPndca, Wire};

/// A resumable sharded run: configuration plus the mutable trajectory
/// state. The executor itself is rebuilt each block (it borrows the model
/// and partition), which is exactly what makes checkpoints this small.
pub struct ShardSession {
    model: Model,
    partition: Partition,
    grid: ShardGrid,
    selection: ChunkSelection,
    mode: ScheduleMode,
    seed: u64,
    dims: Dims,
    state: SimState,
    steps_done: u64,
    /// Communication accumulated since the last [`take_comm`]
    /// (Self::take_comm) — the runner drains this into the registry.
    comm: CommStats,
}

impl ShardSession {
    /// Build a sharded session from a job spec with `shards > 1`.
    ///
    /// # Errors
    ///
    /// Rejects non-PNDCA algorithms and worker grids that do not tile the
    /// lattice (or leave domains smaller than the interaction radius
    /// requires).
    pub fn from_spec(spec: &JobSpec) -> Result<Self, String> {
        let Algorithm::Pndca {
            partition: pspec,
            selection,
        } = &spec.algorithm
        else {
            return Err(format!(
                "job {}: shards = {} requires a pndca algorithm (got {:?})",
                spec.name, spec.shards, spec.algorithm
            ));
        };
        let model = spec.model.build();
        let dims = Dims::square(spec.side);
        let grid = ShardGrid::for_workers(spec.shards);
        grid.check(dims, model.interaction_radius())
            .map_err(|e| format!("job {}: {e}", spec.name))?;
        let partition = pspec.build(dims, &model);
        let state = SimState::new(Lattice::filled(dims, 0), &model);
        // Every transport carries the identical trajectory (pinned by
        // psr-shard's differential tests), so this is purely an execution
        // choice: in-process scheduling or one OS process per worker.
        let mode = match spec.transport {
            Transport::Inline => ScheduleMode::Inline,
            Transport::Threaded => ScheduleMode::Threaded,
            Transport::Unix => ScheduleMode::Socket(Wire::Unix),
            Transport::Tcp => ScheduleMode::Socket(Wire::Tcp),
        };
        Ok(ShardSession {
            model,
            partition,
            grid,
            selection: *selection,
            mode,
            seed: spec.seed,
            dims,
            state,
            steps_done: 0,
            comm: CommStats::default(),
        })
    }

    /// Steps completed since the initial state (survives restore).
    pub fn steps_done(&self) -> u64 {
        self.steps_done
    }

    /// Advance by `steps` whole steps.
    pub fn run_blocks(&mut self, steps: u64) -> RunStats {
        let mut exec = ShardedPndca::new(&self.model, &self.partition, self.grid, self.seed)
            .with_selection(self.selection)
            .with_mode(self.mode);
        exec.set_start_step(self.steps_done);
        let stats = exec.run_steps(&mut self.state, steps, None);
        self.steps_done += steps;
        self.comm += exec.comm_stats();
        stats
    }

    /// Drain the communication counters accumulated since the last call.
    pub fn take_comm(&mut self) -> CommStats {
        std::mem::take(&mut self.comm)
    }
}

impl Checkpointable for ShardSession {
    fn checkpoint(&self) -> SessionCheckpoint {
        SessionCheckpoint {
            lattice: self.state.lattice.clone(),
            time: self.state.time,
            steps: self.steps_done,
            // The sharded executor derives every stream from (seed, step);
            // there is no free-running generator to serialise. Stored so
            // the checkpoint format stays uniform.
            rng: rng_from_seed(self.seed).state(),
        }
    }

    fn restore(&mut self, ck: &SessionCheckpoint) -> Result<(), String> {
        if ck.lattice.dims() != self.dims {
            return Err(format!(
                "checkpoint lattice is {:?}, session dims are {:?}",
                ck.lattice.dims(),
                self.dims
            ));
        }
        self.state = SimState::new(ck.lattice.clone(), &self.model);
        self.state.time = ck.time;
        self.steps_done = ck.steps;
        self.comm = CommStats::default();
        Ok(())
    }
}

/// The runner's session: the in-process core session or the sharded one.
pub enum JobSession {
    /// `shards = 1`: the checkpointed `psr-core` session.
    Core(Box<SimSession>),
    /// `shards > 1`: the domain-decomposed executor.
    Sharded(Box<ShardSession>),
}

impl JobSession {
    /// Build the session a job spec asks for.
    ///
    /// # Errors
    ///
    /// Configuration problems (unsupported algorithm, bad shard grid).
    pub fn build(spec: &JobSpec) -> Result<Self, String> {
        if spec.shards > 1 {
            Ok(JobSession::Sharded(Box::new(ShardSession::from_spec(
                spec,
            )?)))
        } else {
            Ok(JobSession::Core(Box::new(
                Simulator::new(spec.model.build())
                    .dims(Dims::square(spec.side))
                    .seed(spec.seed)
                    .algorithm(spec.algorithm.clone())
                    .into_session()?,
            )))
        }
    }

    /// Steps completed since the initial state.
    pub fn steps_done(&self) -> u64 {
        match self {
            JobSession::Core(s) => s.steps_done(),
            JobSession::Sharded(s) => s.steps_done(),
        }
    }

    /// Advance by `steps` whole steps. The per-trial `hook` only fires on
    /// the core path — the sharded executor reports aggregate counts, which
    /// the runner reads from the returned stats instead.
    pub fn run_blocks(&mut self, steps: u64, hook: &mut impl EventHook) -> RunStats {
        match self {
            JobSession::Core(s) => s.run_blocks(steps, hook),
            JobSession::Sharded(s) => s.run_blocks(steps),
        }
    }

    /// Communication accumulated since the last call (zero on the core
    /// path).
    pub fn take_comm(&mut self) -> CommStats {
        match self {
            JobSession::Core(_) => CommStats::default(),
            JobSession::Sharded(s) => s.take_comm(),
        }
    }
}

impl Checkpointable for JobSession {
    fn checkpoint(&self) -> SessionCheckpoint {
        match self {
            JobSession::Core(s) => s.checkpoint(),
            JobSession::Sharded(s) => s.checkpoint(),
        }
    }

    fn restore(&mut self, ck: &SessionCheckpoint) -> Result<(), String> {
        match self {
            JobSession::Core(s) => s.restore(ck),
            JobSession::Sharded(s) => s.restore(ck),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModelSpec;
    use psr_core::PartitionSpec;

    fn sharded_spec(shards: u32) -> JobSpec {
        let mut spec = JobSpec::new(
            "sh",
            ModelSpec::Zgb { y: 0.5, k: 2.0 },
            Algorithm::Pndca {
                partition: PartitionSpec::FiveColoring,
                selection: ChunkSelection::RandomOrder,
            },
            20,
            9,
            30,
        );
        spec.shards = shards;
        spec
    }

    #[test]
    fn sharded_session_resumes_bit_identically() {
        let spec = sharded_spec(4);
        let mut whole = JobSession::build(&spec).expect("build");
        whole.run_blocks(30, &mut psr_dmc::events::NoHook);

        let mut split = JobSession::build(&spec).expect("build");
        split.run_blocks(12, &mut psr_dmc::events::NoHook);
        let ck = split.checkpoint();
        assert_eq!(ck.steps, 12);
        let mut resumed = JobSession::build(&spec).expect("rebuild");
        resumed.restore(&ck).expect("restore");
        resumed.run_blocks(18, &mut psr_dmc::events::NoHook);

        let (a, b) = (whole.checkpoint(), resumed.checkpoint());
        assert_eq!(a.lattice, b.lattice, "resumed trajectory diverged");
        assert_eq!(a.time.to_bits(), b.time.to_bits());
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn socket_session_resumes_bit_identically() {
        // `transport = unix`: one process per worker, same checkpoint
        // contract — a SIGKILLed hub resumed from its last checkpoint
        // must land on the uninterrupted trajectory.
        let mut spec = sharded_spec(4);
        spec.transport = Transport::Unix;
        let mut whole = JobSession::build(&sharded_spec(4)).expect("build");
        whole.run_blocks(30, &mut psr_dmc::events::NoHook);

        let mut split = JobSession::build(&spec).expect("build");
        split.run_blocks(12, &mut psr_dmc::events::NoHook);
        let ck = split.checkpoint();
        let mut resumed = JobSession::build(&spec).expect("rebuild");
        resumed.restore(&ck).expect("restore");
        resumed.run_blocks(18, &mut psr_dmc::events::NoHook);

        let (a, b) = (whole.checkpoint(), resumed.checkpoint());
        assert_eq!(a.lattice, b.lattice, "socket resume diverged from inline");
        assert_eq!(a.time.to_bits(), b.time.to_bits());
        // And the socket path measures its wire traffic.
        let comm = match &mut resumed {
            JobSession::Sharded(s) => s.take_comm(),
            JobSession::Core(_) => unreachable!("shards = 4 builds a sharded session"),
        };
        assert!(comm.wire_frames > 0, "no wire frames recorded");
        assert!(comm.wire_flushes > 0, "no wire flushes recorded");
    }

    #[test]
    fn sharded_session_measures_communication() {
        let spec = sharded_spec(4);
        let mut session = JobSession::build(&spec).expect("build");
        let stats = session.run_blocks(10, &mut psr_dmc::events::NoHook);
        assert!(stats.trials > 0);
        let comm = session.take_comm();
        assert!(comm.halo_messages > 0, "2x2 grid must exchange frames");
        assert!(comm.boundary_trials > 0);
        assert_eq!(comm.local_trials + comm.boundary_trials, stats.trials);
        // Drained: a second take returns zeros.
        assert_eq!(session.take_comm(), CommStats::default());
    }

    #[test]
    fn bad_shard_grids_are_rejected_at_build() {
        // 20×20 over 3 workers: 3 does not divide 20.
        let err = match JobSession::build(&sharded_spec(3)) {
            Err(e) => e,
            Ok(_) => panic!("3-worker grid on a 20-side lattice must fail"),
        };
        assert!(err.contains("does not divide"), "got {err}");
    }
}
