//! Durable checkpoint storage, one file per job.
//!
//! A running job periodically writes `<dir>/<job>.ckpt` (the v2 snapshot
//! format of `psr-lattice::io`, carrying clock/steps/RNG); on completion it
//! writes `<dir>/<job>.done` and removes the in-flight checkpoint, so the
//! directory doubles as the batch's progress ledger: a `.done` file means
//! the job finished, a `.ckpt` file means it can be resumed mid-flight.
//!
//! Writes go through a temp file in the same directory followed by a
//! rename, so a crash mid-write leaves the previous checkpoint intact
//! rather than a torn file.

use psr_core::SessionCheckpoint;
use psr_lattice::io::{self, SnapshotMeta};
use std::path::{Path, PathBuf};

/// Checkpoint directory handle for one batch.
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Open (creating if needed) the checkpoint directory.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation.
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(CheckpointStore {
            dir: dir.to_owned(),
        })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the in-flight checkpoint for `job`.
    pub fn ckpt_path(&self, job: &str) -> PathBuf {
        self.dir.join(format!("{job}.ckpt"))
    }

    /// Path of the final snapshot for `job`.
    pub fn done_path(&self, job: &str) -> PathBuf {
        self.dir.join(format!("{job}.done"))
    }

    fn write_atomic(&self, path: &Path, ck: &SessionCheckpoint) -> std::io::Result<u64> {
        let meta = SnapshotMeta {
            time: ck.time,
            steps: ck.steps,
            rng: ck.rng,
        };
        let text = io::to_text_v2(&ck.lattice, &meta);
        let bytes = text.len() as u64;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)?;
        Ok(bytes)
    }

    /// Atomically persist the in-flight checkpoint for `job`, returning the
    /// snapshot size in bytes (fed to the `checkpoint_bytes` histogram).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, job: &str, ck: &SessionCheckpoint) -> std::io::Result<u64> {
        self.write_atomic(&self.ckpt_path(job), ck)
    }

    /// Atomically persist the final snapshot for `job` and remove its
    /// in-flight checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn finish(&self, job: &str, ck: &SessionCheckpoint) -> std::io::Result<u64> {
        let bytes = self.write_atomic(&self.done_path(job), ck)?;
        match std::fs::remove_file(self.ckpt_path(job)) {
            Err(e) if e.kind() != std::io::ErrorKind::NotFound => return Err(e),
            _ => {}
        }
        Ok(bytes)
    }

    /// Load the in-flight checkpoint for `job`, if one exists.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than "no checkpoint yet", including
    /// malformed snapshot files (`InvalidData`).
    pub fn load(&self, job: &str) -> std::io::Result<Option<SessionCheckpoint>> {
        match io::load_v2(&self.ckpt_path(job)) {
            Ok((lattice, meta)) => Ok(Some(SessionCheckpoint {
                lattice,
                time: meta.time,
                steps: meta.steps,
                rng: meta.rng,
            })),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Whether `job` already has a final snapshot.
    pub fn is_done(&self, job: &str) -> bool {
        self.done_path(job).exists()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_lattice::{Dims, Lattice};

    fn checkpoint(fill: u8) -> SessionCheckpoint {
        SessionCheckpoint {
            lattice: Lattice::filled(Dims::square(4), fill),
            time: 1.5f64 + f64::EPSILON,
            steps: 40,
            rng: [0x1234, 0x5679],
        }
    }

    fn temp_store(tag: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("psr_engine_ckpt_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::open(&dir).expect("open store")
    }

    #[test]
    fn save_load_roundtrip_preserves_bits() {
        let store = temp_store("roundtrip");
        let ck = checkpoint(2);
        let bytes = store.save("job_a", &ck).expect("save");
        assert!(bytes > 0);
        let back = store.load("job_a").expect("load").expect("present");
        assert_eq!(back.lattice, ck.lattice);
        assert_eq!(back.time.to_bits(), ck.time.to_bits());
        assert_eq!(back.steps, ck.steps);
        assert_eq!(back.rng, ck.rng);
    }

    #[test]
    fn missing_checkpoint_is_none_not_error() {
        let store = temp_store("missing");
        assert!(store.load("nope").expect("load").is_none());
        assert!(!store.is_done("nope"));
    }

    #[test]
    fn finish_promotes_and_clears_inflight() {
        let store = temp_store("finish");
        store.save("j", &checkpoint(1)).expect("save");
        store.finish("j", &checkpoint(3)).expect("finish");
        assert!(store.is_done("j"));
        assert!(store.load("j").expect("load").is_none());
        let (lattice, meta) = psr_lattice::io::load_v2(&store.done_path("j")).expect("done file");
        assert_eq!(lattice, checkpoint(3).lattice);
        assert_eq!(meta.steps, 40);
    }

    #[test]
    fn saves_replace_atomically() {
        let store = temp_store("atomic");
        store.save("j", &checkpoint(1)).expect("save 1");
        store.save("j", &checkpoint(2)).expect("save 2");
        let back = store.load("j").expect("load").expect("present");
        assert_eq!(back.lattice, checkpoint(2).lattice);
        // No stray temp file left behind.
        assert!(!store.ckpt_path("j").with_extension("tmp").exists());
    }
}
