//! Append-only JSONL event journal.
//!
//! Every notable engine event (job start, checkpoint, retry, completion,
//! shutdown, periodic metrics) becomes one JSON object per line, so a batch
//! leaves a machine-readable audit trail that `jq`/Python can consume. No
//! serde is vendored, so the encoder is hand-rolled: [`JsonLine`] builds one
//! flat object with escaped strings and shortest-round-trip numbers.

use crate::metrics::MetricsSnapshot;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Builder for one flat JSON object (one journal line).
#[derive(Debug)]
pub struct JsonLine {
    buf: String,
    first: bool,
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl JsonLine {
    /// Start an empty object (no `ev` field) — for nested documents like
    /// the `psr-validate` verdict file, where objects are values rather
    /// than journal events.
    pub fn object() -> Self {
        JsonLine {
            buf: String::from("{"),
            first: true,
        }
    }

    /// Start an object with an `ev` field naming the event type.
    pub fn event(ev: &str) -> Self {
        JsonLine::object().str("ev", ev)
    }

    fn key(mut self, k: &str) -> Self {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
        self
    }

    /// Add a string field.
    pub fn str(self, k: &str, v: &str) -> Self {
        let mut s = self.key(k);
        s.buf.push('"');
        escape_into(&mut s.buf, v);
        s.buf.push('"');
        s
    }

    /// Add an unsigned integer field.
    pub fn u64(self, k: &str, v: u64) -> Self {
        let mut s = self.key(k);
        s.buf.push_str(&v.to_string());
        s
    }

    /// Add a float field (`null` if non-finite — JSON has no NaN/Inf).
    pub fn f64(self, k: &str, v: f64) -> Self {
        let mut s = self.key(k);
        if v.is_finite() {
            // Rust's shortest-round-trip Display keeps full precision.
            s.buf.push_str(&v.to_string());
        } else {
            s.buf.push_str("null");
        }
        s
    }

    /// Add a boolean field.
    pub fn bool(self, k: &str, v: bool) -> Self {
        let mut s = self.key(k);
        s.buf.push_str(if v { "true" } else { "false" });
        s
    }

    /// Add a pre-rendered JSON value (a nested object or array built with
    /// [`JsonLine::finish`] / joined with commas). The caller is
    /// responsible for `v` being valid JSON.
    pub fn raw(self, k: &str, v: &str) -> Self {
        let mut s = self.key(k);
        s.buf.push_str(v);
        s
    }

    /// Close the object and return the line.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Thread-safe append-only JSONL file.
#[derive(Debug)]
pub struct Journal {
    writer: Mutex<BufWriter<File>>,
    path: PathBuf,
}

impl Journal {
    /// Open `path`, truncating any previous content (a fresh batch).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Self::open(path, false)
    }

    /// Open `path` for appending (a resumed batch keeps its history).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append(path: &Path) -> std::io::Result<Self> {
        Self::open(path, true)
    }

    fn open(path: &Path, append: bool) -> std::io::Result<Self> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .append(append)
            .truncate(!append)
            .open(path)?;
        Ok(Journal {
            writer: Mutex::new(BufWriter::new(file)),
            path: path.to_owned(),
        })
    }

    /// Where the journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one line, flushing immediately (events are rare and must
    /// survive a crash of the very next instruction).
    pub fn log(&self, line: JsonLine) {
        let mut w = self.writer.lock().expect("journal lock");
        let _ = writeln!(w, "{}", line.finish());
        let _ = w.flush();
    }

    /// Append a `metrics` event carrying a full registry snapshot, with
    /// counters prefixed `c.`, gauges `g.` and histogram summaries `h.`.
    pub fn log_metrics(&self, wall_ms: u64, snap: &MetricsSnapshot) {
        let mut line = JsonLine::event("metrics").u64("wall_ms", wall_ms);
        for (k, v) in &snap.counters {
            line = line.u64(&format!("c.{k}"), *v);
        }
        for (k, v) in &snap.gauges {
            line = line.f64(&format!("g.{k}"), *v);
        }
        for (k, s) in &snap.histograms {
            line = line
                .u64(&format!("h.{k}.count"), s.count)
                .u64(&format!("h.{k}.p50"), s.p50)
                .u64(&format!("h.{k}.p95"), s.p95)
                .u64(&format!("h.{k}.p99"), s.p99);
        }
        self.log(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_flat_json_objects() {
        let line = JsonLine::event("checkpoint")
            .str("job", "zgb_a")
            .u64("step", 40)
            .f64("time", 1.25)
            .bool("resumed", false)
            .finish();
        assert_eq!(
            line,
            r#"{"ev":"checkpoint","job":"zgb_a","step":40,"time":1.25,"resumed":false}"#
        );
    }

    #[test]
    fn escapes_strings_and_rejects_nonfinite() {
        let line = JsonLine::event("e")
            .str("msg", "a\"b\\c\nd\te\u{1}")
            .f64("bad", f64::NAN)
            .finish();
        assert_eq!(
            line,
            "{\"ev\":\"e\",\"msg\":\"a\\\"b\\\\c\\nd\\te\\u0001\",\"bad\":null}"
        );
    }

    #[test]
    fn f64_round_trips_full_precision() {
        let v = f64::from_bits(0x3FF0_0000_0000_0002);
        let line = JsonLine::event("e").f64("t", v).finish();
        let rendered = line
            .split("\"t\":")
            .nth(1)
            .unwrap()
            .trim_end_matches('}')
            .parse::<f64>()
            .unwrap();
        assert_eq!(rendered.to_bits(), v.to_bits());
    }

    #[test]
    fn journal_appends_lines_and_survives_reopen() {
        let path = std::env::temp_dir().join("psr_engine_journal_test.jsonl");
        {
            let j = Journal::create(&path).expect("create");
            j.log(JsonLine::event("a").u64("n", 1));
        }
        {
            let j = Journal::append(&path).expect("append");
            j.log(JsonLine::event("b").u64("n", 2));
        }
        let text = std::fs::read_to_string(&path).expect("read");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"ev\":\"a\""));
        assert!(lines[1].contains("\"ev\":\"b\""));
        // Truncating create wipes history.
        let j = Journal::create(&path).expect("recreate");
        j.log(JsonLine::event("c").u64("n", 3));
        drop(j);
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 1);
    }

    #[test]
    fn metrics_snapshot_serialises() {
        let reg = crate::metrics::Registry::new();
        reg.counter("steps").add(5);
        reg.gauge("rate").set(2.5);
        reg.histogram("ms").record(3);
        let path = std::env::temp_dir().join("psr_engine_journal_metrics.jsonl");
        let j = Journal::create(&path).expect("create");
        j.log_metrics(10, &reg.snapshot());
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"c.steps\":5"));
        assert!(text.contains("\"g.rate\":2.5"));
        assert!(text.contains("\"h.ms.count\":1"));
    }
}
