//! Single-job execution: the checkpointed block loop.
//!
//! A job runs as a sequence of *blocks* of whole algorithm steps. Block
//! boundaries are the checkpoint grid (`checkpoint_every`) plus any fault
//! injection steps, so the runner checkpoints at deterministic step numbers
//! regardless of where an attempt started. Between blocks it checks the
//! cancellation flag and the per-attempt deadline; either way the last
//! checkpoint is already on disk, so the job can resume bit-identically.
//!
//! Trajectory fidelity across differently-sized blocks is guaranteed by
//! `psr-core::session` (block-splitting invariance is tested there), which
//! is what makes checkpoint placement a pure performance/durability choice.

use crate::checkpoint::CheckpointStore;
use crate::journal::{Journal, JsonLine};
use crate::metrics::Registry;
use crate::shard_session::JobSession;
use crate::spec::JobSpec;
use psr_core::{Checkpointable, SessionCheckpoint};
use psr_dmc::events::Event;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Observer of the durable checkpoints a job attempt writes.
///
/// This is the run-to-journal seam the serving layer builds on: the
/// observer fires *after* each checkpoint (or the final snapshot) reaches
/// disk, so anything it derives from the [`SessionCheckpoint`] — coverage
/// observables, progress records — is never ahead of the durable state it
/// would be resumed from. Checkpoint placement is deterministic (the
/// `checkpoint_every` grid plus fault steps), so the observation stream is
/// a pure function of the job spec, interrupted or not.
pub trait BlockObserver: Sync {
    /// A checkpoint for `job` was durably written. `done` is true for the
    /// final snapshot (the job completed at `ck.steps`).
    fn on_checkpoint(&self, job: &str, ck: &SessionCheckpoint, done: bool);
}

/// The default observer: ignore checkpoints.
pub struct NoObserver;

impl BlockObserver for NoObserver {
    fn on_checkpoint(&self, _job: &str, _ck: &SessionCheckpoint, _done: bool) {}
}

/// Why a job attempt stopped before its final step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interrupt {
    /// The engine's cancellation flag was raised (graceful shutdown).
    Cancelled,
    /// The spec's `abort_at_step` fired (simulated kill for tests/CI).
    InjectedAbort,
    /// The per-attempt wall-clock deadline expired.
    Deadline,
}

impl Interrupt {
    /// Journal-friendly name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Interrupt::Cancelled => "cancelled",
            Interrupt::InjectedAbort => "injected-abort",
            Interrupt::Deadline => "deadline",
        }
    }
}

/// Result of one job attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Ran to the final step; the `.done` snapshot is persisted.
    Completed,
    /// Stopped early at the given step, with a fresh `.ckpt` on disk.
    Interrupted {
        /// Steps completed when the attempt stopped.
        at_step: u64,
        /// Why it stopped.
        reason: Interrupt,
    },
}

/// Everything one job attempt needs (borrowed from the engine).
pub struct JobRun<'a> {
    /// The job being executed.
    pub spec: &'a JobSpec,
    /// Checkpoint storage for the batch.
    pub store: &'a CheckpointStore,
    /// Event journal.
    pub journal: &'a Journal,
    /// Shared metrics registry.
    pub metrics: &'a Registry,
    /// Raised to request graceful shutdown.
    pub cancel: &'a AtomicBool,
    /// Per-attempt wall-clock budget.
    pub deadline: Option<Duration>,
    /// Strip fault injection (the CI reference run).
    pub ignore_faults: bool,
    /// Zero-based attempt number (faults only fire on attempt 0).
    pub attempt: u32,
    /// Fires after every durably written checkpoint ([`NoObserver`] when
    /// nobody is watching).
    pub observer: &'a dyn BlockObserver,
}

impl JobRun<'_> {
    fn fault(&self, step: Option<u64>) -> Option<u64> {
        if self.ignore_faults {
            None
        } else {
            step
        }
    }

    /// The next block boundary strictly after `done`: the checkpoint grid
    /// plus fault steps, capped at the job's final step.
    fn next_boundary(&self, done: u64) -> u64 {
        let spec = self.spec;
        let mut next = (done / spec.checkpoint_every + 1) * spec.checkpoint_every;
        for f in [
            self.fault(spec.fail_at_step),
            self.fault(spec.abort_at_step),
        ]
        .into_iter()
        .flatten()
        {
            if f > done {
                next = next.min(f);
            }
        }
        next.min(spec.steps)
    }

    /// Execute one attempt of the job.
    ///
    /// Builds the session, restores the latest checkpoint if one exists,
    /// then runs block by block. Panics (only) when the injected
    /// `fail_at_step` fault fires — the engine catches it and retries.
    ///
    /// # Errors
    ///
    /// Configuration and I/O problems (bad algorithm, corrupt checkpoint,
    /// unwritable checkpoint dir) are returned as `Err` and are not
    /// retried.
    pub fn run(&self) -> Result<RunOutcome, String> {
        let spec = self.spec;
        if self.store.is_done(&spec.name) {
            return Ok(RunOutcome::Completed);
        }
        let mut session = JobSession::build(spec)?;
        let mut resumed_from = None;
        if let Some(ck) = self
            .store
            .load(&spec.name)
            .map_err(|e| format!("job {}: loading checkpoint: {e}", spec.name))?
        {
            session.restore(&ck)?;
            resumed_from = Some(ck.steps);
        }
        let start_steps = session.steps_done();
        self.journal.log(
            JsonLine::event("job_start")
                .str("job", &spec.name)
                .u64("attempt", self.attempt as u64)
                .u64("from_step", start_steps)
                .bool("resumed", resumed_from.is_some()),
        );

        let steps = self.metrics.counter("steps");
        let trials = self.metrics.counter("trials");
        let executed = self.metrics.counter("executed");
        let checkpoints = self.metrics.counter("checkpoints");
        let ckpt_bytes = self.metrics.histogram("checkpoint_bytes");
        let block_ms = self.metrics.histogram("block_ms");
        let progress = self.metrics.gauge(&format!("job.{}.step", spec.name));
        progress.set(start_steps as f64);

        let started = Instant::now();
        while session.steps_done() < spec.steps {
            let done = session.steps_done();
            let block = self.next_boundary(done) - done;
            let t0 = Instant::now();
            let mut hook = |e: Event| {
                trials.add(1);
                if e.executed {
                    executed.add(1);
                }
            };
            let stats = session.run_blocks(block, &mut hook);
            debug_assert!(stats.trials >= stats.executed);
            if matches!(session, JobSession::Sharded(_)) {
                // The sharded executor reports aggregate counts (the hook
                // never fires) and measured communication.
                trials.add(stats.trials);
                executed.add(stats.executed);
                let comm = session.take_comm();
                self.metrics
                    .counter("shard_halo_messages")
                    .add(comm.halo_messages);
                self.metrics
                    .counter("shard_halo_bytes")
                    .add(comm.halo_bytes);
                self.metrics
                    .counter("shard_local_trials")
                    .add(comm.local_trials);
                self.metrics
                    .counter("shard_boundary_trials")
                    .add(comm.boundary_trials);
                // Socket-transport wire traffic (zero on in-process modes).
                self.metrics
                    .counter("shard_wire_frames")
                    .add(comm.wire_frames);
                self.metrics
                    .counter("shard_wire_bytes")
                    .add(comm.wire_bytes);
                self.metrics
                    .counter("shard_wire_batches")
                    .add(comm.wire_batches);
                self.metrics
                    .counter("shard_wire_flushes")
                    .add(comm.wire_flushes);
                self.metrics
                    .gauge(&format!("job.{}.boundary_fraction", spec.name))
                    .set(comm.boundary_fraction());
            }
            block_ms.record(t0.elapsed().as_millis() as u64);
            steps.add(block);
            let now = session.steps_done();
            progress.set(now as f64);

            if self.fault(spec.fail_at_step) == Some(now) && self.attempt == 0 {
                // Injected crash: no checkpoint for this block, so the retry
                // re-runs it from the previous checkpoint.
                panic!(
                    "injected fault: job {} failed at step {now} (attempt {})",
                    spec.name, self.attempt
                );
            }

            if now < spec.steps {
                let ck = session.checkpoint();
                let bytes = self
                    .store
                    .save(&spec.name, &ck)
                    .map_err(|e| format!("job {}: saving checkpoint: {e}", spec.name))?;
                checkpoints.add(1);
                ckpt_bytes.record(bytes);
                self.journal.log(
                    JsonLine::event("checkpoint")
                        .str("job", &spec.name)
                        .u64("step", now)
                        .f64("time", ck.time)
                        .u64("bytes", bytes),
                );
                self.observer.on_checkpoint(&spec.name, &ck, false);
            }

            let interrupt = if self.fault(spec.abort_at_step) == Some(now) && start_steps < now {
                // Simulated kill: only fires on an attempt that actually ran
                // through this step, so a resumed run does not re-trigger.
                Some(Interrupt::InjectedAbort)
            } else if self.cancel.load(Ordering::SeqCst) {
                Some(Interrupt::Cancelled)
            } else if self.deadline.is_some_and(|d| started.elapsed() >= d) {
                Some(Interrupt::Deadline)
            } else {
                None
            };
            if let Some(reason) = interrupt {
                if now >= spec.steps {
                    break; // finished exactly at the boundary: complete normally
                }
                self.journal.log(
                    JsonLine::event("interrupt")
                        .str("job", &spec.name)
                        .str("reason", reason.as_str())
                        .u64("step", now),
                );
                return Ok(RunOutcome::Interrupted {
                    at_step: now,
                    reason,
                });
            }
        }

        let ck = session.checkpoint();
        let bytes = self
            .store
            .finish(&spec.name, &ck)
            .map_err(|e| format!("job {}: saving final snapshot: {e}", spec.name))?;
        checkpoints.add(1);
        ckpt_bytes.record(bytes);
        self.journal.log(
            JsonLine::event("job_done")
                .str("job", &spec.name)
                .u64("steps", ck.steps)
                .f64("time", ck.time)
                .u64("bytes", bytes),
        );
        self.observer.on_checkpoint(&spec.name, &ck, true);
        Ok(RunOutcome::Completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModelSpec;
    use psr_core::Algorithm;

    fn base_spec() -> JobSpec {
        let mut spec = JobSpec::new(
            "t",
            ModelSpec::Zgb { y: 0.5, k: 5.0 },
            Algorithm::Ndca { shuffled: false },
            10,
            3,
            20,
        );
        spec.checkpoint_every = 6;
        spec
    }

    fn harness(tag: &str) -> (CheckpointStore, Journal, Registry, AtomicBool) {
        let dir = std::env::temp_dir().join(format!("psr_engine_runner_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).expect("store");
        let journal = Journal::create(&dir.join("journal.jsonl")).expect("journal");
        (store, journal, Registry::new(), AtomicBool::new(false))
    }

    fn run(
        spec: &JobSpec,
        h: &(CheckpointStore, Journal, Registry, AtomicBool),
        attempt: u32,
    ) -> Result<RunOutcome, String> {
        JobRun {
            spec,
            store: &h.0,
            journal: &h.1,
            metrics: &h.2,
            cancel: &h.3,
            deadline: None,
            ignore_faults: false,
            attempt,
            observer: &NoObserver,
        }
        .run()
    }

    #[test]
    fn boundaries_follow_the_checkpoint_grid_and_faults() {
        let mut spec = base_spec();
        spec.fail_at_step = Some(8);
        spec.abort_at_step = Some(13);
        let h = harness("bounds");
        let jr = JobRun {
            spec: &spec,
            store: &h.0,
            journal: &h.1,
            metrics: &h.2,
            cancel: &h.3,
            deadline: None,
            ignore_faults: false,
            attempt: 0,
            observer: &NoObserver,
        };
        assert_eq!(jr.next_boundary(0), 6);
        assert_eq!(jr.next_boundary(6), 8); // clamped by fail_at_step
        assert_eq!(jr.next_boundary(8), 12);
        assert_eq!(jr.next_boundary(12), 13); // clamped by abort_at_step
        assert_eq!(jr.next_boundary(13), 18);
        assert_eq!(jr.next_boundary(18), 20); // capped at steps
        let ignoring = JobRun {
            ignore_faults: true,
            ..jr
        };
        assert_eq!(ignoring.next_boundary(6), 12);
    }

    #[test]
    fn completes_and_promotes_to_done() {
        let spec = base_spec();
        let h = harness("complete");
        assert_eq!(run(&spec, &h, 0).expect("run"), RunOutcome::Completed);
        assert!(h.0.is_done("t"));
        assert!(h.0.load("t").expect("load").is_none());
        assert_eq!(h.2.counter("steps").get(), 20);
        assert!(h.2.counter("trials").get() > 0);
        // Re-running a finished job is a no-op.
        assert_eq!(run(&spec, &h, 0).expect("rerun"), RunOutcome::Completed);
        assert_eq!(h.2.counter("steps").get(), 20);
    }

    #[test]
    fn injected_fail_panics_once_then_retry_succeeds() {
        let mut spec = base_spec();
        spec.fail_at_step = Some(8);
        let h = harness("fail");
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(&spec, &h, 0)));
        assert!(panic.is_err(), "attempt 0 must panic at the injected fault");
        // The last checkpoint is from step 6; the retry resumes there.
        assert_eq!(h.0.load("t").expect("load").expect("ckpt").steps, 6);
        assert_eq!(run(&spec, &h, 1).expect("retry"), RunOutcome::Completed);
        assert!(h.0.is_done("t"));
    }

    #[test]
    fn injected_abort_interrupts_resumably() {
        let mut spec = base_spec();
        spec.abort_at_step = Some(13);
        let h = harness("abort");
        assert_eq!(
            run(&spec, &h, 0).expect("run"),
            RunOutcome::Interrupted {
                at_step: 13,
                reason: Interrupt::InjectedAbort,
            }
        );
        assert_eq!(h.0.load("t").expect("load").expect("ckpt").steps, 13);
        // The resumed attempt starts at 13, so the abort does not re-fire.
        assert_eq!(run(&spec, &h, 0).expect("resume"), RunOutcome::Completed);
        assert!(h.0.is_done("t"));
    }

    #[test]
    fn interrupted_then_resumed_matches_uninterrupted_bits() {
        let mut spec = base_spec();
        spec.abort_at_step = Some(13);
        let h = harness("bits_a");
        run(&spec, &h, 0).expect("run");
        run(&spec, &h, 0).expect("resume");

        let clean = base_spec();
        let h2 = harness("bits_b");
        run(&clean, &h2, 0).expect("clean run");

        let a = std::fs::read_to_string(h.0.done_path("t")).expect("a");
        let b = std::fs::read_to_string(h2.0.done_path("t")).expect("b");
        assert_eq!(a, b, "resumed trajectory diverged from uninterrupted run");
    }

    #[test]
    fn observer_sees_every_durable_checkpoint_in_order() {
        use std::sync::Mutex;
        struct Collect(Mutex<Vec<(u64, bool)>>);
        impl BlockObserver for Collect {
            fn on_checkpoint(&self, job: &str, ck: &SessionCheckpoint, done: bool) {
                assert_eq!(job, "t");
                self.0.lock().unwrap().push((ck.steps, done));
            }
        }
        let spec = base_spec(); // 20 steps, checkpoint_every = 6
        let h = harness("observer");
        let collect = Collect(Mutex::new(Vec::new()));
        let out = JobRun {
            spec: &spec,
            store: &h.0,
            journal: &h.1,
            metrics: &h.2,
            cancel: &h.3,
            deadline: None,
            ignore_faults: false,
            attempt: 0,
            observer: &collect,
        }
        .run()
        .expect("run");
        assert_eq!(out, RunOutcome::Completed);
        let seen = collect.0.into_inner().unwrap();
        assert_eq!(
            seen,
            vec![(6, false), (12, false), (18, false), (20, true)],
            "observer must fire once per durable checkpoint plus the final snapshot"
        );
    }

    #[test]
    fn cancel_flag_stops_at_the_next_boundary() {
        let spec = base_spec();
        let h = harness("cancel");
        h.3.store(true, Ordering::SeqCst);
        match run(&spec, &h, 0).expect("run") {
            RunOutcome::Interrupted {
                at_step,
                reason: Interrupt::Cancelled,
            } => assert_eq!(at_step, 6),
            other => panic!("expected cancellation, got {other:?}"),
        }
        assert_eq!(h.0.load("t").expect("load").expect("ckpt").steps, 6);
    }

    #[test]
    fn zero_deadline_interrupts_after_first_block() {
        let spec = base_spec();
        let h = harness("deadline");
        let out = JobRun {
            spec: &spec,
            store: &h.0,
            journal: &h.1,
            metrics: &h.2,
            cancel: &h.3,
            deadline: Some(Duration::ZERO),
            ignore_faults: false,
            attempt: 0,
            observer: &NoObserver,
        }
        .run()
        .expect("run");
        assert_eq!(
            out,
            RunOutcome::Interrupted {
                at_step: 6,
                reason: Interrupt::Deadline,
            }
        );
    }
}
