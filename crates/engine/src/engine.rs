//! The batch engine: a bounded worker pool with retries and graceful
//! shutdown.
//!
//! Jobs are pulled from a shared queue by `workers` OS threads. A job
//! attempt that panics (a bug — or the injected `fail_at_step` fault) is
//! caught with `catch_unwind`, journalled, and retried from its last
//! checkpoint after a capped exponential backoff; configuration and I/O
//! errors are not retried. Raising the cancellation flag makes running jobs
//! stop at their next checkpoint boundary and queued jobs drain untouched,
//! so a batch can always be continued later with `resume`.

use crate::checkpoint::CheckpointStore;
use crate::dashboard::{self, JobProgress};
use crate::journal::{Journal, JsonLine};
use crate::metrics::Registry;
use crate::runner::{Interrupt, JobRun, NoObserver, RunOutcome};
use crate::spec::{BatchSpec, EngineConfig, JobSpec};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Terminal status of one job within a batch run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Ran to its final step (or already had a `.done` snapshot).
    Completed,
    /// Stopped early but resumably (shutdown or injected abort); a
    /// checkpoint is on disk.
    Interrupted(Interrupt),
    /// Gave up: configuration/I-O error, retries exhausted, or deadline.
    Failed(String),
}

/// One job's outcome plus how many attempts it took.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobReport {
    /// Job name.
    pub name: String,
    /// Terminal status.
    pub status: JobStatus,
    /// Attempts consumed (0 when drained before starting).
    pub attempts: u32,
}

/// Outcome of a whole batch run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchReport {
    /// Per-job reports, in spec order.
    pub jobs: Vec<JobReport>,
}

impl BatchReport {
    /// Every job completed.
    pub fn all_completed(&self) -> bool {
        self.jobs.iter().all(|j| j.status == JobStatus::Completed)
    }

    /// At least one job failed terminally.
    pub fn any_failed(&self) -> bool {
        self.jobs
            .iter()
            .any(|j| matches!(j.status, JobStatus::Failed(_)))
    }

    /// At least one job was interrupted resumably.
    pub fn any_interrupted(&self) -> bool {
        self.jobs
            .iter()
            .any(|j| matches!(j.status, JobStatus::Interrupted(_)))
    }
}

/// Per-run options (the batch spec holds the durable configuration).
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Continue a previous run: append to the journal and pick up
    /// checkpoints instead of starting fresh.
    pub resume: bool,
    /// Strip fault injection from the specs (the CI reference run).
    pub ignore_faults: bool,
    /// Print a dashboard frame this often.
    pub status_every: Option<Duration>,
}

/// The batch engine.
pub struct Engine {
    config: EngineConfig,
    cancel: Arc<AtomicBool>,
    metrics: Registry,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

impl Engine {
    /// An engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            cancel: Arc::new(AtomicBool::new(false)),
            metrics: Registry::new(),
            config,
        }
    }

    /// The cancellation flag: raise it (e.g. from a signal handler) to shut
    /// down gracefully — running jobs checkpoint, queued jobs drain.
    pub fn cancel_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Run a batch to quiescence, discarding status frames.
    ///
    /// # Errors
    ///
    /// Fails on journal/checkpoint-directory I/O errors; per-job problems
    /// are reported in the [`BatchReport`] instead.
    pub fn run(&self, batch: &BatchSpec, opts: &RunOptions) -> Result<BatchReport, String> {
        self.run_with_status(batch, opts, |_| {})
    }

    /// Run a batch to quiescence, passing each dashboard frame to `status`.
    ///
    /// # Errors
    ///
    /// Fails on journal/checkpoint-directory I/O errors; per-job problems
    /// are reported in the [`BatchReport`] instead.
    pub fn run_with_status(
        &self,
        batch: &BatchSpec,
        opts: &RunOptions,
        status: impl Fn(&str) + Sync,
    ) -> Result<BatchReport, String> {
        let store = CheckpointStore::open(&self.config.checkpoint_dir)
            .map_err(|e| format!("opening checkpoint dir: {e}"))?;
        let journal_path = self.config.journal();
        let journal = if opts.resume {
            Journal::append(&journal_path)
        } else {
            Journal::create(&journal_path)
        }
        .map_err(|e| format!("opening journal {}: {e}", journal_path.display()))?;

        journal.log(
            JsonLine::event("batch_start")
                .u64("jobs", batch.jobs.len() as u64)
                .u64("workers", self.config.workers as u64)
                .bool("resume", opts.resume)
                .bool("ignore_faults", opts.ignore_faults),
        );

        let queue: Mutex<VecDeque<usize>> = Mutex::new((0..batch.jobs.len()).collect());
        let results: Mutex<Vec<Option<JobReport>>> = Mutex::new(vec![None; batch.jobs.len()]);
        let remaining = AtomicUsize::new(batch.jobs.len());
        let queue_depth = self.metrics.gauge("queue_depth");
        queue_depth.set(batch.jobs.len() as f64);
        let started = Instant::now();
        let mut samples: Vec<(f64, f64)> = vec![(0.0, 0.0)];

        std::thread::scope(|s| {
            for _ in 0..self.config.workers {
                s.spawn(|| loop {
                    let idx = {
                        let mut q = queue.lock().expect("queue lock");
                        let idx = q.pop_front();
                        queue_depth.set(q.len() as f64);
                        idx
                    };
                    let Some(idx) = idx else { break };
                    let spec = &batch.jobs[idx];
                    let report = if self.cancel.load(Ordering::SeqCst) {
                        journal.log(JsonLine::event("job_drained").str("job", &spec.name));
                        JobReport {
                            name: spec.name.clone(),
                            status: JobStatus::Interrupted(Interrupt::Cancelled),
                            attempts: 0,
                        }
                    } else {
                        self.run_job(spec, &store, &journal, opts)
                    };
                    results.lock().expect("results lock")[idx] = Some(report);
                    remaining.fetch_sub(1, Ordering::SeqCst);
                });
            }

            // The scope thread doubles as the status ticker.
            let mut last = (Instant::now(), 0u64, 0u64);
            let tick = self.config.status_tick(opts);
            while remaining.load(Ordering::SeqCst) > 0 {
                std::thread::sleep(Duration::from_millis(20));
                if last.0.elapsed() < tick {
                    continue;
                }
                let steps = self.metrics.counter("steps").get();
                let trials = self.metrics.counter("trials").get();
                let dt = last.0.elapsed().as_secs_f64();
                let steps_rate = (steps - last.1) as f64 / dt;
                self.metrics.gauge("steps_per_sec").set(steps_rate);
                self.metrics
                    .gauge("trials_per_sec")
                    .set((trials - last.2) as f64 / dt);
                last = (Instant::now(), steps, trials);
                let wall = started.elapsed().as_secs_f64();
                samples.push((wall, steps_rate));
                let snap = self.metrics.snapshot();
                journal.log_metrics(started.elapsed().as_millis() as u64, &snap);
                if opts.status_every.is_some() {
                    let progress = self.job_progress(batch, &results.lock().expect("results lock"));
                    status(&dashboard::render(wall, &progress, &snap, &samples));
                }
            }
        });

        // Always close with one final frame so short batches still get a
        // dashboard (and the user sees the terminal per-job states).
        if opts.status_every.is_some() {
            let wall = started.elapsed().as_secs_f64();
            let progress = self.job_progress(batch, &results.lock().expect("results lock"));
            status(&dashboard::render(
                wall,
                &progress,
                &self.metrics.snapshot(),
                &samples,
            ));
        }

        let jobs: Vec<JobReport> = results
            .into_inner()
            .expect("results lock")
            .into_iter()
            .map(|r| r.expect("every job reported"))
            .collect();
        let report = BatchReport { jobs };
        journal.log(
            JsonLine::event("batch_end")
                .bool("all_completed", report.all_completed())
                .bool("any_failed", report.any_failed())
                .u64("wall_ms", started.elapsed().as_millis() as u64),
        );
        Ok(report)
    }

    fn job_progress(&self, batch: &BatchSpec, results: &[Option<JobReport>]) -> Vec<JobProgress> {
        batch
            .jobs
            .iter()
            .zip(results)
            .map(|(spec, report)| {
                let step = self.metrics.gauge(&format!("job.{}.step", spec.name)).get() as u64;
                let state = match report {
                    None if step > 0 => "running",
                    None => "queued",
                    Some(r) => match &r.status {
                        JobStatus::Completed => "done",
                        JobStatus::Interrupted(_) => "interrupted",
                        JobStatus::Failed(_) => "failed",
                    },
                };
                JobProgress {
                    name: spec.name.clone(),
                    step: step.min(spec.steps),
                    steps: spec.steps,
                    state,
                }
            })
            .collect()
    }

    /// One job, with the retry loop around panicking attempts.
    fn run_job(
        &self,
        spec: &JobSpec,
        store: &CheckpointStore,
        journal: &Journal,
        opts: &RunOptions,
    ) -> JobReport {
        let retries = self.metrics.counter("retries");
        let mut attempt = 0u32;
        loop {
            let run = JobRun {
                spec,
                store,
                journal,
                metrics: &self.metrics,
                cancel: &self.cancel,
                deadline: self.config.deadline_ms.map(Duration::from_millis),
                ignore_faults: opts.ignore_faults,
                attempt,
                observer: &NoObserver,
            };
            let status = match catch_unwind(AssertUnwindSafe(|| run.run())) {
                Ok(Ok(RunOutcome::Completed)) => JobStatus::Completed,
                Ok(Ok(RunOutcome::Interrupted {
                    at_step,
                    reason: Interrupt::Deadline,
                })) => JobStatus::Failed(format!("deadline exceeded at step {at_step}")),
                Ok(Ok(RunOutcome::Interrupted { reason, .. })) => JobStatus::Interrupted(reason),
                Ok(Err(e)) => JobStatus::Failed(e),
                Err(payload) => {
                    let msg = panic_message(payload);
                    retries.add(1);
                    journal.log(
                        JsonLine::event("retry")
                            .str("job", &spec.name)
                            .u64("attempt", attempt as u64)
                            .str("panic", &msg),
                    );
                    if attempt >= self.config.max_retries {
                        JobStatus::Failed(format!(
                            "panicked on all {} attempts, last: {msg}",
                            attempt + 1
                        ))
                    } else {
                        let backoff = self
                            .config
                            .backoff_base_ms
                            .checked_shl(attempt)
                            .unwrap_or(u64::MAX)
                            .min(self.config.backoff_cap_ms);
                        std::thread::sleep(Duration::from_millis(backoff));
                        attempt += 1;
                        continue;
                    }
                }
            };
            return JobReport {
                name: spec.name.clone(),
                status,
                attempts: attempt + 1,
            };
        }
    }
}

impl EngineConfig {
    /// How often the status loop samples rates (the dashboard interval, or
    /// a coarse default when no dashboard was requested — the samples also
    /// feed the journal's periodic metrics events).
    fn status_tick(&self, opts: &RunOptions) -> Duration {
        opts.status_every.unwrap_or(Duration::from_millis(500))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModelSpec;
    use psr_core::Algorithm;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("psr_engine_pool_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn job(name: &str, steps: u64) -> JobSpec {
        let mut spec = JobSpec::new(
            name,
            ModelSpec::Zgb { y: 0.5, k: 5.0 },
            Algorithm::Ndca { shuffled: false },
            10,
            7,
            steps,
        );
        spec.checkpoint_every = 5;
        spec
    }

    fn batch(tag: &str, jobs: Vec<JobSpec>) -> BatchSpec {
        BatchSpec {
            engine: EngineConfig {
                workers: 2,
                checkpoint_dir: temp_dir(tag),
                backoff_base_ms: 1,
                backoff_cap_ms: 4,
                ..EngineConfig::default()
            },
            jobs,
        }
    }

    #[test]
    fn runs_a_batch_to_completion_on_two_workers() {
        let batch = batch("complete", vec![job("a", 20), job("b", 15), job("c", 10)]);
        let engine = Engine::new(batch.engine.clone());
        let report = engine
            .run(&batch, &RunOptions::default())
            .expect("batch runs");
        assert!(report.all_completed(), "{report:?}");
        assert_eq!(report.jobs.len(), 3);
        assert_eq!(engine.metrics().counter("steps").get(), 45);
        let journal = std::fs::read_to_string(batch.engine.journal()).expect("journal written");
        assert!(journal.contains("\"ev\":\"batch_start\""));
        assert_eq!(journal.matches("\"ev\":\"job_done\"").count(), 3);
        assert!(journal.contains("\"ev\":\"batch_end\""));
    }

    #[test]
    fn injected_panic_is_retried_and_the_batch_still_completes() {
        let mut j = job("flaky", 20);
        j.fail_at_step = Some(8);
        let batch = batch("retry", vec![j]);
        let engine = Engine::new(batch.engine.clone());
        let report = engine
            .run(&batch, &RunOptions::default())
            .expect("batch runs");
        assert!(report.all_completed(), "{report:?}");
        assert_eq!(report.jobs[0].attempts, 2);
        assert_eq!(engine.metrics().counter("retries").get(), 1);
        let journal = std::fs::read_to_string(batch.engine.journal()).expect("journal");
        assert!(journal.contains("\"ev\":\"retry\""));
        assert!(journal.contains("injected fault"));
    }

    #[test]
    fn retries_exhausted_marks_the_job_failed() {
        let mut j = job("doomed", 20);
        j.fail_at_step = Some(8);
        let mut batch = batch("exhaust", vec![j]);
        batch.engine.max_retries = 0;
        let engine = Engine::new(batch.engine.clone());
        let report = engine
            .run(&batch, &RunOptions::default())
            .expect("batch runs");
        assert!(report.any_failed());
        assert!(matches!(
            &report.jobs[0].status,
            JobStatus::Failed(msg) if msg.contains("panicked on all 1 attempts")
        ));
    }

    #[test]
    fn pre_cancelled_engine_drains_the_queue_resumably() {
        let batch = batch("drain", vec![job("a", 20), job("b", 20)]);
        let engine = Engine::new(batch.engine.clone());
        engine.cancel_flag().store(true, Ordering::SeqCst);
        let report = engine
            .run(&batch, &RunOptions::default())
            .expect("batch runs");
        assert!(report.any_interrupted());
        assert!(!report.any_failed());
        for j in &report.jobs {
            assert_eq!(j.status, JobStatus::Interrupted(Interrupt::Cancelled));
            assert_eq!(j.attempts, 0);
        }
        // Nothing ran, so resuming later completes the batch.
        let engine2 = Engine::new(batch.engine.clone());
        let report2 = engine2
            .run(
                &batch,
                &RunOptions {
                    resume: true,
                    ..RunOptions::default()
                },
            )
            .expect("resumed batch runs");
        assert!(report2.all_completed(), "{report2:?}");
    }

    #[test]
    fn abort_then_resume_matches_the_clean_run_bit_for_bit() {
        let mut j = job("k", 20);
        j.abort_at_step = Some(10);
        let faulty = batch("bits_faulty", vec![j]);
        let engine = Engine::new(faulty.engine.clone());
        let report = engine
            .run(&faulty, &RunOptions::default())
            .expect("first run");
        assert!(report.any_interrupted());
        let report = Engine::new(faulty.engine.clone())
            .run(
                &faulty,
                &RunOptions {
                    resume: true,
                    ..RunOptions::default()
                },
            )
            .expect("resumed run");
        assert!(report.all_completed(), "{report:?}");

        let clean = batch("bits_clean", vec![job("k", 20)]);
        Engine::new(clean.engine.clone())
            .run(&clean, &RunOptions::default())
            .expect("clean run");

        let a = std::fs::read_to_string(faulty.engine.checkpoint_dir.join("k.done")).unwrap();
        let b = std::fs::read_to_string(clean.engine.checkpoint_dir.join("k.done")).unwrap();
        assert_eq!(a, b, "resumed batch diverged from clean run");
    }

    #[test]
    fn status_frames_are_emitted_when_requested() {
        let batch = batch("status", vec![job("a", 50)]);
        let engine = Engine::new(batch.engine.clone());
        let frames = Mutex::new(Vec::new());
        engine
            .run_with_status(
                &batch,
                &RunOptions {
                    status_every: Some(Duration::from_millis(1)),
                    ..RunOptions::default()
                },
                |frame| frames.lock().expect("frames").push(frame.to_owned()),
            )
            .expect("batch runs");
        let frames = frames.into_inner().expect("frames");
        assert!(!frames.is_empty(), "expected at least one status frame");
        assert!(frames[0].contains("psr-engine"));
    }
}
