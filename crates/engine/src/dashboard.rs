//! Periodic ASCII status dashboard.
//!
//! Pure rendering: the engine's status thread samples the metrics registry
//! and per-job progress, and this module turns one sample (plus the rate
//! history so far) into a text frame — a job table, the headline counters,
//! and a steps/sec sparkline drawn with `psr-stats::ascii_plot`.

use crate::metrics::MetricsSnapshot;
use psr_stats::ascii_plot;
use psr_stats::timeseries::TimeSeries;
use std::fmt::Write as _;

/// One job's progress for the dashboard table.
#[derive(Clone, Debug)]
pub struct JobProgress {
    /// Job name.
    pub name: String,
    /// Steps completed so far.
    pub step: u64,
    /// Total steps requested.
    pub steps: u64,
    /// Short state label (`queued`, `running`, `done`, `failed`, …).
    pub state: &'static str,
}

fn bar(frac: f64, width: usize) -> String {
    let filled = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    format!("[{}{}]", "#".repeat(filled), "-".repeat(width - filled))
}

/// Render one dashboard frame.
///
/// `rate_samples` is the cumulative `(wall seconds, total steps/sec)` history
/// used for the sparkline; fewer than two samples render without it.
pub fn render(
    wall_s: f64,
    jobs: &[JobProgress],
    snap: &MetricsSnapshot,
    rate_samples: &[(f64, f64)],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== psr-engine @ {wall_s:7.1}s ==");
    for j in jobs {
        let frac = if j.steps == 0 {
            0.0
        } else {
            j.step as f64 / j.steps as f64
        };
        let _ = writeln!(
            out,
            "  {:<20} {} {:>10}/{:<10} {}",
            j.name,
            bar(frac, 20),
            j.step,
            j.steps,
            j.state
        );
    }
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    };
    let gauge = |name: &str| {
        snap.gauges
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0.0, |(_, v)| *v)
    };
    let _ = writeln!(
        out,
        "  steps {} ({:.0}/s)  trials {} ({:.0}/s)  checkpoints {}  retries {}  queue {}",
        counter("steps"),
        gauge("steps_per_sec"),
        counter("trials"),
        gauge("trials_per_sec"),
        counter("checkpoints"),
        counter("retries"),
        gauge("queue_depth"),
    );
    if let Some((_, summary)) = snap
        .histograms
        .iter()
        .find(|(k, _)| k == "checkpoint_bytes")
    {
        let _ = writeln!(
            out,
            "  checkpoint bytes: count {}  p50 {}  p95 {}  p99 {}",
            summary.count, summary.p50, summary.p95, summary.p99
        );
    }
    if rate_samples.len() >= 2 {
        let mut series = TimeSeries::new();
        for &(t, r) in rate_samples {
            series.push(t, r);
        }
        let plot = ascii_plot::plot(&[(&series, '*')], 60, 8);
        if !plot.is_empty() {
            let _ = writeln!(out, "  steps/sec over wall time:");
            out.push_str(&plot);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn frame_shows_jobs_counters_and_sparkline() {
        let reg = Registry::new();
        reg.counter("steps").add(150);
        reg.counter("trials").add(4000);
        reg.counter("checkpoints").add(3);
        reg.gauge("steps_per_sec").set(75.0);
        reg.histogram("checkpoint_bytes").record(2048);
        let jobs = vec![
            JobProgress {
                name: "zgb_a".into(),
                step: 100,
                steps: 200,
                state: "running",
            },
            JobProgress {
                name: "zgb_b".into(),
                step: 50,
                steps: 50,
                state: "done",
            },
        ];
        let samples = vec![(0.0, 0.0), (1.0, 70.0), (2.0, 75.0)];
        let frame = render(2.0, &jobs, &reg.snapshot(), &samples);
        assert!(frame.contains("zgb_a"));
        assert!(frame.contains("[##########----------]"));
        assert!(frame.contains("steps 150 (75/s)"));
        assert!(frame.contains("checkpoint bytes: count 1"));
        assert!(frame.contains("steps/sec over wall time"));
        assert!(frame.contains('*'));
    }

    #[test]
    fn short_history_skips_the_sparkline() {
        let reg = Registry::new();
        let frame = render(0.1, &[], &reg.snapshot(), &[(0.0, 0.0)]);
        assert!(!frame.contains("steps/sec over wall time"));
        assert!(frame.contains("psr-engine"));
    }
}
