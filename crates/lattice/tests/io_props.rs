//! Property tests for the snapshot formats: any lattice round-trips through
//! both the v1 text format and the v2 checkpoint format, and corrupted
//! snapshots are rejected rather than silently misparsed.

use proptest::prelude::*;
use psr_lattice::io::{from_text, from_text_v2, to_text, to_text_v2, SnapshotMeta};
use psr_lattice::{Dims, Lattice};

/// Strategy: a random lattice up to 12×12 with cell states in 0..6.
///
/// The vendored proptest has no `prop_flat_map`, so we draw a maximal cell
/// pool and truncate it to the drawn dimensions.
fn lattice_strategy() -> impl Strategy<Value = Lattice> {
    (
        1u32..=12,
        1u32..=12,
        prop::collection::vec(0u8..6, 144usize),
    )
        .prop_map(|(w, h, pool)| {
            Lattice::from_cells(Dims::new(w, h), pool[..(w * h) as usize].to_vec())
        })
}

proptest! {
    #[test]
    fn v1_roundtrip(lattice in lattice_strategy()) {
        let text = to_text(&lattice);
        let back = from_text(&text).expect("v1 parse");
        prop_assert_eq!(back, lattice);
    }

    #[test]
    fn v2_roundtrip(
        lattice in lattice_strategy(),
        time_frac in 0.0f64..1e6,
        steps in 0u64..u64::MAX,
        rng_lo in 0u64..u64::MAX,
        rng_hi in 0u64..u64::MAX,
    ) {
        let meta = SnapshotMeta { time: time_frac, steps, rng: [rng_lo, rng_hi | 1] };
        let text = to_text_v2(&lattice, &meta);
        let (back, back_meta) = from_text_v2(&text).expect("v2 parse");
        prop_assert_eq!(back, lattice);
        prop_assert_eq!(back_meta.time.to_bits(), meta.time.to_bits());
        prop_assert_eq!(back_meta.steps, meta.steps);
        prop_assert_eq!(back_meta.rng, meta.rng);
    }

    #[test]
    fn v1_truncation_is_rejected(lattice in lattice_strategy()) {
        let text = to_text(&lattice);
        // Drop the final row: either a missing row or a short cell count.
        let truncated: Vec<&str> = text.lines().collect();
        let truncated = truncated[..truncated.len() - 1].join("\n");
        prop_assert!(from_text(&truncated).is_err());
    }

    #[test]
    fn v1_trailing_garbage_is_rejected(lattice in lattice_strategy()) {
        let text = format!("{}0 0 0\n", to_text(&lattice));
        prop_assert!(from_text(&text).is_err());
    }

    #[test]
    fn v2_truncation_is_rejected(lattice in lattice_strategy(), steps in 0u64..u64::MAX) {
        let meta = SnapshotMeta { time: 0.5, steps, rng: [7, 9] };
        let text = to_text_v2(&lattice, &meta);
        let lines: Vec<&str> = text.lines().collect();
        let truncated = lines[..lines.len() - 1].join("\n");
        prop_assert!(from_text_v2(&truncated).is_err());
    }
}
