//! Property-based tests for the torus geometry and lattice invariants.

use proptest::prelude::*;
use psr_lattice::{Clusters, Coverage, Dims, Lattice, Neighborhood, Offset, Site};

fn dims_strategy() -> impl Strategy<Value = Dims> {
    (1u32..40, 1u32..40).prop_map(|(w, h)| Dims::new(w, h))
}

proptest! {
    #[test]
    fn site_at_always_in_range(d in dims_strategy(), x in -1000i64..1000, y in -1000i64..1000) {
        let s = d.site_at(x, y);
        prop_assert!(d.contains(s));
    }

    #[test]
    fn coord_roundtrip(d in dims_strategy(), idx in 0u32..1600) {
        let idx = idx % d.sites();
        let s = Site(idx);
        let c = d.coord(s);
        prop_assert_eq!(d.site_at(c.x, c.y), s);
    }

    #[test]
    fn translate_negation_is_identity(
        d in dims_strategy(),
        idx in 0u32..1600,
        dx in -50i32..50,
        dy in -50i32..50,
    ) {
        let s = Site(idx % d.sites());
        let o = Offset::new(dx, dy);
        prop_assert_eq!(d.translate(d.translate(s, o), o.negated()), s);
    }

    #[test]
    fn translation_commutes(
        d in dims_strategy(),
        idx in 0u32..1600,
        a in (-10i32..10, -10i32..10),
        b in (-10i32..10, -10i32..10),
    ) {
        // (s + a) + b == (s + b) + a: the group structure of the torus.
        let s = Site(idx % d.sites());
        let oa = Offset::new(a.0, a.1);
        let ob = Offset::new(b.0, b.1);
        prop_assert_eq!(
            d.translate(d.translate(s, oa), ob),
            d.translate(d.translate(s, ob), oa)
        );
    }

    #[test]
    fn torus_distance_triangle_inequality(
        d in dims_strategy(),
        i in 0u32..1600, j in 0u32..1600, k in 0u32..1600,
    ) {
        let (a, b, c) = (Site(i % d.sites()), Site(j % d.sites()), Site(k % d.sites()));
        prop_assert!(
            d.torus_l1_distance(a, c)
                <= d.torus_l1_distance(a, b) + d.torus_l1_distance(b, c)
        );
    }

    #[test]
    fn coverage_stays_consistent_under_random_writes(
        d in dims_strategy(),
        writes in proptest::collection::vec((0u32..1600, 0u8..4), 0..100),
    ) {
        let mut lattice = Lattice::filled(d, 0);
        let mut cov = Coverage::from_lattice(&lattice, 4);
        for (idx, state) in writes {
            let site = Site(idx % d.sites());
            let old = lattice.set(site, state);
            cov.transition(old, state);
        }
        prop_assert!(cov.matches(&lattice));
    }

    #[test]
    fn cluster_sizes_sum_to_lattice_size(
        d in dims_strategy(),
        seed_cells in proptest::collection::vec(0u8..3, 1..1600),
    ) {
        let n = d.sites() as usize;
        let cells: Vec<u8> = (0..n).map(|i| seed_cells[i % seed_cells.len()]).collect();
        let lattice = Lattice::from_cells(d, cells);
        let clusters = Clusters::find(&lattice);
        let total: usize = (0..clusters.count() as u32).map(|l| clusters.size(l)).sum();
        prop_assert_eq!(total, n);
    }

    #[test]
    fn neighborhood_overlap_is_symmetric(
        idx1 in 0u32..400, idx2 in 0u32..400,
    ) {
        let d = Dims::new(20, 20);
        let nb = Neighborhood::von_neumann();
        let a = Site(idx1 % d.sites());
        let b = Site(idx2 % d.sites());
        prop_assert_eq!(
            nb.overlaps_at(d, a, &nb, b),
            nb.overlaps_at(d, b, &nb, a)
        );
    }

    #[test]
    fn neighborhood_overlap_iff_within_radius_sum(
        idx1 in 0u32..400, idx2 in 0u32..400,
    ) {
        // For L1 balls on a large-enough torus, overlap <=> torus distance
        // <= r1 + r2.
        let d = Dims::new(20, 20);
        let nb1 = Neighborhood::l1_ball(1);
        let nb2 = Neighborhood::l1_ball(2);
        let a = Site(idx1 % d.sites());
        let b = Site(idx2 % d.sites());
        let overlap = nb1.overlaps_at(d, a, &nb2, b);
        let within = d.torus_l1_distance(a, b) <= 3;
        prop_assert_eq!(overlap, within);
    }
}
