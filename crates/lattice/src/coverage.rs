//! Incremental coverage tracking.
//!
//! Every figure in the paper's evaluation plots the *coverage* — the fraction
//! of sites occupied by each particle type — against time. Recomputing a
//! histogram after every reaction would dominate the run time, so
//! [`Coverage`] maintains the counts incrementally: the simulation reports
//! each `(old_state, new_state)` transition as it executes reactions.

use crate::lattice::{Lattice, State};

/// Per-state occupation counts maintained incrementally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coverage {
    counts: Vec<usize>,
    total: usize,
}

impl Coverage {
    /// Initialise from a lattice, tracking `num_states` distinct state ids.
    ///
    /// # Panics
    ///
    /// Panics if the lattice contains a state id `>= num_states`.
    pub fn from_lattice(lattice: &Lattice, num_states: usize) -> Self {
        Coverage {
            counts: lattice.histogram(num_states),
            total: lattice.len(),
        }
    }

    /// A coverage tracker for an empty ledger of `total` sites all in state 0.
    pub fn uniform(total: usize, num_states: usize, state: State) -> Self {
        assert!((state as usize) < num_states, "state out of range");
        let mut counts = vec![0; num_states];
        counts[state as usize] = total;
        Coverage { counts, total }
    }

    /// Record that one site changed from `old` to `new`.
    #[inline]
    pub fn transition(&mut self, old: State, new: State) {
        if old != new {
            self.counts[old as usize] -= 1;
            self.counts[new as usize] += 1;
        }
    }

    /// Number of sites in `state`.
    pub fn count(&self, state: State) -> usize {
        self.counts[state as usize]
    }

    /// Fraction of sites in `state`.
    pub fn fraction(&self, state: State) -> f64 {
        self.count(state) as f64 / self.total as f64
    }

    /// All fractions, indexed by state id.
    pub fn fractions(&self) -> Vec<f64> {
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// All fractions written into `out` (cleared first), reusing its
    /// capacity — for sampling loops that would otherwise allocate a
    /// fresh `Vec` per observation.
    pub fn fractions_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.counts.iter().map(|&c| c as f64 / self.total as f64));
    }

    /// Total number of sites.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of tracked state ids.
    pub fn num_states(&self) -> usize {
        self.counts.len()
    }

    /// Verify against a lattice (used in debug assertions and tests).
    ///
    /// Allocation-free: state ids are `u8`, so a fixed 256-slot stack
    /// buffer covers every possible histogram. A lattice holding a state id
    /// outside the tracked range simply fails to match.
    pub fn matches(&self, lattice: &Lattice) -> bool {
        let mut counts = [0usize; 256];
        for &c in lattice.cells() {
            counts[c as usize] += 1;
        }
        lattice.len() == self.total
            && counts[..self.counts.len()] == self.counts[..]
            && counts[self.counts.len()..].iter().all(|&c| c == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Dims, Site};

    #[test]
    fn from_lattice_counts() {
        let l = Lattice::from_cells(Dims::new(2, 2), vec![0, 1, 1, 2]);
        let c = Coverage::from_lattice(&l, 3);
        assert_eq!(c.count(0), 1);
        assert_eq!(c.count(1), 2);
        assert_eq!(c.count(2), 1);
        assert_eq!(c.total(), 4);
        assert!((c.fraction(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transitions_track_lattice() {
        let mut l = Lattice::filled(Dims::new(3, 3), 0);
        let mut c = Coverage::from_lattice(&l, 3);
        for (i, &new) in [1u8, 2, 1, 0, 2].iter().enumerate() {
            let site = Site(i as u32);
            let old = l.set(site, new);
            c.transition(old, new);
        }
        assert!(c.matches(&l));
    }

    #[test]
    fn self_transition_is_noop() {
        let mut c = Coverage::uniform(10, 2, 0);
        c.transition(0, 0);
        assert_eq!(c.count(0), 10);
    }

    #[test]
    fn fractions_sum_to_one() {
        let l = Lattice::from_cells(Dims::new(5, 1), vec![0, 1, 2, 1, 0]);
        let c = Coverage::from_lattice(&l, 3);
        let sum: f64 = c.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fractions_into_reuses_the_buffer() {
        let l = Lattice::from_cells(Dims::new(5, 1), vec![0, 1, 2, 1, 0]);
        let c = Coverage::from_lattice(&l, 3);
        let mut buf = vec![9.0; 8]; // stale contents and excess length
        c.fractions_into(&mut buf);
        assert_eq!(buf, c.fractions());
    }

    #[test]
    fn uniform_constructor() {
        let c = Coverage::uniform(100, 3, 2);
        assert_eq!(c.count(2), 100);
        assert_eq!(c.count(0), 0);
        assert_eq!(c.num_states(), 3);
    }

    #[test]
    fn matches_detects_divergence() {
        let l = Lattice::filled(Dims::new(2, 2), 0);
        let mut c = Coverage::from_lattice(&l, 2);
        assert!(c.matches(&l));
        c.transition(0, 1); // lattice not actually changed
        assert!(!c.matches(&l));
    }
}
