//! Neighborhood stencils.
//!
//! A reaction type's neighborhood `Nb_Rt(s)` (paper §2) is a translation-
//! invariant set of sites around `s` that always includes `s` itself. We
//! represent it by the set of [`Offset`]s from `s`; applying it at a site
//! materialises the wrapped site set.

use crate::geometry::{Dims, Offset, Site};

/// A translation-invariant set of offsets including the origin.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Neighborhood {
    offsets: Vec<Offset>,
}

impl Neighborhood {
    /// Build a neighborhood from offsets.
    ///
    /// The origin is added if absent (paper §2 property 1: `s ∈ Nb(s)`), and
    /// duplicates are removed.
    pub fn new(mut offsets: Vec<Offset>) -> Self {
        if !offsets.contains(&Offset::ZERO) {
            offsets.push(Offset::ZERO);
        }
        offsets.sort_unstable();
        offsets.dedup();
        Neighborhood { offsets }
    }

    /// The origin-only neighborhood (single-site reactions, e.g. CO adsorption).
    pub fn origin() -> Self {
        Neighborhood::new(vec![])
    }

    /// The von Neumann neighborhood: origin plus the 4 axis neighbors.
    pub fn von_neumann() -> Self {
        Neighborhood::new(vec![
            Offset::new(1, 0),
            Offset::new(-1, 0),
            Offset::new(0, 1),
            Offset::new(0, -1),
        ])
    }

    /// The triangular-lattice neighborhood: origin plus 6 neighbors in the
    /// standard skewed square-grid representation (`±(1,0)`, `±(0,1)`,
    /// `(1,1)`, `(-1,-1)`), giving every site 6 mutual neighbors — the
    /// coordination of a close-packed (e.g. hex-reconstructed) surface.
    pub fn triangular() -> Self {
        Neighborhood::new(vec![
            Offset::new(1, 0),
            Offset::new(-1, 0),
            Offset::new(0, 1),
            Offset::new(0, -1),
            Offset::new(1, 1),
            Offset::new(-1, -1),
        ])
    }

    /// The Moore neighborhood: origin plus all 8 surrounding sites.
    pub fn moore() -> Self {
        let mut offs = Vec::new();
        for dx in -1..=1 {
            for dy in -1..=1 {
                offs.push(Offset::new(dx, dy));
            }
        }
        Neighborhood::new(offs)
    }

    /// All offsets with L1 norm at most `radius` (a diamond).
    pub fn l1_ball(radius: u32) -> Self {
        let r = radius as i32;
        let mut offs = Vec::new();
        for dx in -r..=r {
            for dy in -r..=r {
                if dx.unsigned_abs() + dy.unsigned_abs() <= radius {
                    offs.push(Offset::new(dx, dy));
                }
            }
        }
        Neighborhood::new(offs)
    }

    /// The offsets, sorted, always containing the origin.
    pub fn offsets(&self) -> &[Offset] {
        &self.offsets
    }

    /// Number of sites in the neighborhood.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Never true: the origin is always present.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Largest L1 norm over the offsets (the neighborhood's radius).
    pub fn radius(&self) -> u32 {
        self.offsets.iter().map(|o| o.l1_norm()).max().unwrap_or(0)
    }

    /// Materialise the neighborhood at `site` on a torus of `dims`.
    pub fn sites_at(&self, dims: Dims, site: Site) -> Vec<Site> {
        self.offsets
            .iter()
            .map(|&o| dims.translate(site, o))
            .collect()
    }

    /// Union of two neighborhoods.
    pub fn union(&self, other: &Neighborhood) -> Neighborhood {
        let mut offs = self.offsets.clone();
        offs.extend_from_slice(&other.offsets);
        Neighborhood::new(offs)
    }

    /// True if the neighborhoods at `a` and `b` share any site on `dims`.
    ///
    /// This is the overlap test behind the partition non-conflict rule
    /// (paper §5): `Nb(a) ∩ Nb(b) ≠ ∅`.
    pub fn overlaps_at(&self, dims: Dims, a: Site, other: &Neighborhood, b: Site) -> bool {
        let sa = self.sites_at(dims, a);
        for sb in other.sites_at(dims, b) {
            if sa.contains(&sb) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_always_included() {
        let nb = Neighborhood::new(vec![Offset::new(1, 0)]);
        assert!(nb.offsets().contains(&Offset::ZERO));
        assert_eq!(nb.len(), 2);
    }

    #[test]
    fn von_neumann_has_five_sites() {
        let nb = Neighborhood::von_neumann();
        assert_eq!(nb.len(), 5);
        assert_eq!(nb.radius(), 1);
    }

    #[test]
    fn triangular_has_seven_sites() {
        let nb = Neighborhood::triangular();
        assert_eq!(nb.len(), 7);
        // Every neighbor offset's negation is also present (mutuality).
        for &o in nb.offsets() {
            assert!(nb.offsets().contains(&o.negated()));
        }
    }

    #[test]
    fn moore_has_nine_sites() {
        let nb = Neighborhood::moore();
        assert_eq!(nb.len(), 9);
    }

    #[test]
    fn l1_ball_counts() {
        // |B_r| = 2r(r+1) + 1 for the diamond.
        for r in 0..4u32 {
            assert_eq!(Neighborhood::l1_ball(r).len() as u32, 2 * r * (r + 1) + 1);
        }
        assert_eq!(Neighborhood::l1_ball(1), Neighborhood::von_neumann());
    }

    #[test]
    fn duplicates_removed() {
        let nb = Neighborhood::new(vec![Offset::new(1, 0), Offset::new(1, 0)]);
        assert_eq!(nb.len(), 2);
    }

    #[test]
    fn sites_at_wraps() {
        let d = Dims::new(3, 3);
        let nb = Neighborhood::von_neumann();
        let sites = nb.sites_at(d, d.site_at(0, 0));
        assert_eq!(sites.len(), 5);
        assert!(sites.contains(&d.site_at(2, 0)));
        assert!(sites.contains(&d.site_at(0, 2)));
    }

    #[test]
    fn overlap_detection() {
        let d = Dims::new(10, 10);
        let nb = Neighborhood::von_neumann();
        let a = d.site_at(5, 5);
        // Distance 2 along an axis: the balls share the midpoint.
        assert!(nb.overlaps_at(d, a, &nb, d.site_at(7, 5)));
        // Distance 3: disjoint.
        assert!(!nb.overlaps_at(d, a, &nb, d.site_at(8, 5)));
        // Same site trivially overlaps.
        assert!(nb.overlaps_at(d, a, &nb, a));
    }

    #[test]
    fn overlap_respects_wrapping() {
        let d = Dims::new(5, 5);
        let nb = Neighborhood::von_neumann();
        // (0,0) and (4,0) are torus distance 1 apart: overlap through the seam.
        assert!(nb.overlaps_at(d, d.site_at(0, 0), &nb, d.site_at(4, 0)));
    }

    #[test]
    fn union_merges() {
        let a = Neighborhood::new(vec![Offset::new(1, 0)]);
        let b = Neighborhood::new(vec![Offset::new(0, 1)]);
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
    }
}
