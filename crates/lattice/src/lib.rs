//! Two-dimensional periodic lattice substrate.
//!
//! The paper (§2) models a catalyst surface as a lattice `Ω` of
//! `N = L0 × L1` sites, each holding a value from a finite domain `D` of
//! particle types. This crate provides exactly that substrate, independent of
//! any chemistry:
//!
//! - [`Dims`] / [`Site`] / [`Coord`] / [`Offset`] — torus geometry with
//!   periodic boundary conditions and translation-invariant offsets;
//! - [`Lattice`] — the configuration `S : Ω → D`, stored as a flat `Vec<u8>`
//!   of state ids for cache-friendly sweeps;
//! - [`neighborhood`] — von Neumann / Moore / custom offset stencils;
//! - [`coverage`] — incremental per-state occupation counting (the observable
//!   every figure in the paper plots);
//! - [`journal`] — change journal recording mutated sites plus the
//!   affected-neighborhood expansion used by incremental propensity caches;
//! - [`cluster`] — connected-component analysis of same-state islands;
//! - [`halo`] — halo-padded sub-lattice views with pack/unpack strips for
//!   sharded domain decomposition;
//! - [`region`] — rectangular blocks for block partitions and domain
//!   decomposition;
//! - [`render`] — ASCII visualisation used by the examples.

#![warn(missing_docs)]

pub mod cluster;
pub mod correlation;
pub mod coverage;
pub mod geometry;
pub mod halo;
pub mod io;
pub mod journal;
pub mod lattice;
pub mod neighborhood;
pub mod region;
pub mod render;
pub mod wrap;

pub use cluster::{ClusterStats, Clusters};
pub use correlation::{correlation_profile, pair_correlation};
pub use coverage::Coverage;
pub use geometry::{Coord, Dims, Offset, Site};
pub use halo::SubLattice;
pub use journal::{affected_sites, Change, ChangeJournal};
pub use lattice::{Lattice, State};
pub use neighborhood::Neighborhood;
pub use region::Region;
pub use wrap::WrapTables;
