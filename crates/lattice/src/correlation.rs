//! Spatial pair correlations.
//!
//! The standard morphological observable beyond coverage: how strongly the
//! occupation of two sites at distance `r` correlates. ZGB islands show up
//! as positive short-range CO–CO / O–O correlations; A+B segregation shows
//! up as *anti*-correlation between the species. Correlations also quantify
//! the artificial structure CA updates can imprint (§4's degeneracies).

use crate::geometry::Offset;
use crate::lattice::{Lattice, State};

/// Pair correlation of two states along the axis directions:
///
/// `g_ab(r) = P[S(s) = a ∧ S(s + r·e) = b] / (θ_a · θ_b)`
///
/// averaged over all sites `s` and both axes `e ∈ {x, y}`. `g = 1` means no
/// correlation, `> 1` clustering, `< 1` avoidance. Returns `None` when
/// either state is absent (the normalisation is undefined).
pub fn pair_correlation(lattice: &Lattice, a: State, b: State, r: u32) -> Option<f64> {
    let n = lattice.len() as f64;
    let theta_a = lattice.count(a) as f64 / n;
    let theta_b = lattice.count(b) as f64 / n;
    if theta_a == 0.0 || theta_b == 0.0 {
        return None;
    }
    let dims = lattice.dims();
    let offsets = [Offset::new(r as i32, 0), Offset::new(0, r as i32)];
    let mut hits = 0u64;
    for site in dims.iter_sites() {
        if lattice.get(site) != a {
            continue;
        }
        for off in offsets {
            if lattice.get(dims.translate(site, off)) == b {
                hits += 1;
            }
        }
    }
    let joint = hits as f64 / (2.0 * n);
    Some(joint / (theta_a * theta_b))
}

/// `g_ab(r)` for `r = 1..=max_r`.
pub fn correlation_profile(lattice: &Lattice, a: State, b: State, max_r: u32) -> Vec<Option<f64>> {
    (1..=max_r)
        .map(|r| pair_correlation(lattice, a, b, r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Dims;

    #[test]
    fn uniform_random_lattice_is_uncorrelated() {
        // Deterministic pseudo-random fill with no spatial structure:
        // a SplitMix64-style avalanche hash of the site index.
        fn mix(i: u64) -> u64 {
            let mut z = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let d = Dims::new(64, 64);
        let cells: Vec<u8> = (0..d.sites()).map(|i| (mix(i as u64) & 1) as u8).collect();
        let l = Lattice::from_cells(d, cells);
        let g = pair_correlation(&l, 1, 1, 1).expect("both states present");
        assert!((g - 1.0).abs() < 0.1, "g(1) = {g} should be ≈ 1");
    }

    #[test]
    fn stripes_show_perfect_axis_correlation() {
        // Vertical stripes of width 1: same-state pairs at r = 2 along x
        // and every r along y.
        let d = Dims::new(8, 8);
        let cells: Vec<u8> = (0..d.sites())
            .map(|i| ((i % d.width()) % 2) as u8)
            .collect();
        let l = Lattice::from_cells(d, cells);
        // θ = 0.5. Along x at r=1 same-state never matches; along y always.
        // Average joint = (0 + 0.5·1)/2 … g = (0.25)/(0.25) = 1? Work it
        // out: P[a at s and a at s+e_x] = 0, P[… e_y] = 0.5; mean 0.25;
        // normalisation θ² = 0.25 → g(1) = 1. At r=2 both axes match: g=2.
        let g1 = pair_correlation(&l, 1, 1, 1).expect("present");
        let g2 = pair_correlation(&l, 1, 1, 2).expect("present");
        assert!((g1 - 1.0).abs() < 1e-9, "g(1) = {g1}");
        assert!((g2 - 2.0).abs() < 1e-9, "g(2) = {g2}");
    }

    #[test]
    fn cross_correlation_of_stripes_alternates() {
        let d = Dims::new(8, 8);
        let cells: Vec<u8> = (0..d.sites())
            .map(|i| ((i % d.width()) % 2) as u8)
            .collect();
        let l = Lattice::from_cells(d, cells);
        // Opposite states sit at odd x-distances.
        let g1 = pair_correlation(&l, 0, 1, 1).expect("present");
        let g2 = pair_correlation(&l, 0, 1, 2).expect("present");
        assert!(g1 > g2, "g_ab(1) = {g1} should exceed g_ab(2) = {g2}");
    }

    #[test]
    fn absent_state_yields_none() {
        let l = Lattice::filled(Dims::new(4, 4), 0);
        assert_eq!(pair_correlation(&l, 0, 1, 1), None);
        assert_eq!(pair_correlation(&l, 1, 1, 1), None);
    }

    #[test]
    fn profile_has_requested_length() {
        let d = Dims::new(6, 6);
        let cells: Vec<u8> = (0..36).map(|i| (i % 2) as u8).collect();
        let l = Lattice::from_cells(d, cells);
        assert_eq!(correlation_profile(&l, 0, 1, 3).len(), 3);
    }
}
