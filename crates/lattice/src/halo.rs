//! Sub-lattice views with halo padding (domain decomposition substrate).
//!
//! A sharded executor splits the torus into per-worker rectangular domains.
//! Each worker owns a [`SubLattice`]: a private copy of its domain plus a
//! halo ring of `halo` cells mirroring the neighboring domains' border
//! state. The view is a real [`Lattice`] (padded dimensions), so compiled
//! kernels bind to it unchanged; the halo guarantees that any pattern
//! anchored at an *owned* site reads only cells present in the view, and
//! because owned cells sit at least `halo` away from the padded edge, those
//! reads never wrap — the torus wrap of the padded lattice only ever
//! affects halo cells' own (unused) neighborhoods.
//!
//! Boundary state moves through [`SubLattice::pack_rect`] /
//! [`SubLattice::unpack_rect_diff`]: row-major byte strips suitable for
//! message frames. Unpacking reports the cells that actually changed as a
//! `(site, old, new)` journal, which is exactly what incremental kernels
//! and propensity caches consume — halo maintenance is change-journal
//! maintenance across the domain edge.

use crate::geometry::{Dims, Site};
use crate::journal::Change;
use crate::lattice::Lattice;

/// A halo-padded private copy of one rectangular domain of a global lattice.
#[derive(Clone, Debug)]
pub struct SubLattice {
    /// The padded `(w + 2·halo) × (h + 2·halo)` lattice.
    lattice: Lattice,
    /// Halo ring width (the model's interaction radius).
    halo: u32,
    /// Global coordinates of the owned rectangle's top-left cell.
    origin_x: u32,
    origin_y: u32,
    /// Owned rectangle size.
    owned_w: u32,
    owned_h: u32,
    /// Geometry of the global lattice this view was cut from.
    global: Dims,
}

impl SubLattice {
    /// Cut the `w × h` rectangle at `(x0, y0)` out of `global`, copying the
    /// owned cells and a surrounding halo ring of width `halo` (wrapped on
    /// the torus).
    ///
    /// # Panics
    ///
    /// Panics if the rectangle is empty, exceeds the lattice, or `2·halo`
    /// is not strictly smaller than both rectangle sides (a wider halo
    /// would fold one neighbor strip onto several, breaking the one-frame-
    /// per-direction exchange protocol).
    pub fn scatter(global: &Lattice, x0: u32, y0: u32, w: u32, h: u32, halo: u32) -> Self {
        let dims = global.dims();
        assert!(w > 0 && h > 0, "sub-lattice must be non-empty");
        assert!(
            x0 + w <= dims.width() && y0 + h <= dims.height(),
            "sub-lattice {w}x{h}@({x0},{y0}) exceeds {}x{}",
            dims.width(),
            dims.height()
        );
        assert!(
            w > 2 * halo && h > 2 * halo,
            "domain {w}x{h} too small for halo {halo}"
        );
        let pw = w + 2 * halo;
        let ph = h + 2 * halo;
        let mut cells = Vec::with_capacity(pw as usize * ph as usize);
        for ly in 0..ph {
            for lx in 0..pw {
                let gx = x0 as i64 + lx as i64 - halo as i64;
                let gy = y0 as i64 + ly as i64 - halo as i64;
                cells.push(global.get(dims.site_at(gx, gy)));
            }
        }
        SubLattice {
            lattice: Lattice::from_cells(Dims::new(pw, ph), cells),
            halo,
            origin_x: x0,
            origin_y: y0,
            owned_w: w,
            owned_h: h,
            global: dims,
        }
    }

    /// The padded lattice view (kernels bind to this).
    pub fn lattice(&self) -> &Lattice {
        &self.lattice
    }

    /// Mutable padded lattice view.
    pub fn lattice_mut(&mut self) -> &mut Lattice {
        &mut self.lattice
    }

    /// Halo ring width.
    pub fn halo(&self) -> u32 {
        self.halo
    }

    /// Owned rectangle width.
    pub fn owned_w(&self) -> u32 {
        self.owned_w
    }

    /// Owned rectangle height.
    pub fn owned_h(&self) -> u32 {
        self.owned_h
    }

    /// Padded width.
    pub fn padded_w(&self) -> u32 {
        self.owned_w + 2 * self.halo
    }

    /// The local (padded) site at padded coordinates `(lx, ly)`.
    #[inline]
    pub fn local_site(&self, lx: u32, ly: u32) -> Site {
        Site(ly * self.padded_w() + lx)
    }

    /// Is a local site inside the owned rectangle (not halo)?
    #[inline]
    pub fn is_owned(&self, local: Site) -> bool {
        let pw = self.padded_w();
        let lx = local.0 % pw;
        let ly = local.0 / pw;
        lx >= self.halo
            && lx < self.halo + self.owned_w
            && ly >= self.halo
            && ly < self.halo + self.owned_h
    }

    /// Map a local (padded) site to the global site it mirrors.
    #[inline]
    pub fn to_global(&self, local: Site) -> Site {
        let pw = self.padded_w();
        let lx = local.0 % pw;
        let ly = local.0 / pw;
        self.global.site_at(
            self.origin_x as i64 + lx as i64 - self.halo as i64,
            self.origin_y as i64 + ly as i64 - self.halo as i64,
        )
    }

    /// Map a global site to the local *owned* site holding it, if this
    /// sub-lattice owns it.
    #[inline]
    pub fn owned_local(&self, global: Site) -> Option<Site> {
        let gx = global.0 % self.global.width();
        let gy = global.0 / self.global.width();
        let dx = gx.wrapping_sub(self.origin_x);
        let dy = gy.wrapping_sub(self.origin_y);
        if dx < self.owned_w && dy < self.owned_h {
            Some(self.local_site(dx + self.halo, dy + self.halo))
        } else {
            None
        }
    }

    /// Copy the owned rectangle back into the global lattice.
    pub fn gather_into(&self, global: &mut Lattice) {
        assert_eq!(global.dims(), self.global, "gather into foreign lattice");
        let pw = self.padded_w() as usize;
        let gw = self.global.width() as usize;
        for ly in 0..self.owned_h {
            let src = (ly + self.halo) as usize * pw + self.halo as usize;
            let dst = (self.origin_y + ly) as usize * gw + self.origin_x as usize;
            let row = &self.lattice.cells()[src..src + self.owned_w as usize];
            global.cells_mut()[dst..dst + self.owned_w as usize].copy_from_slice(row);
        }
    }

    /// Append the `w × h` local rectangle at `(lx0, ly0)` (padded
    /// coordinates) to `out`, row-major. An empty rectangle appends nothing.
    pub fn pack_rect(&self, lx0: u32, ly0: u32, w: u32, h: u32, out: &mut Vec<u8>) {
        let pw = self.padded_w() as usize;
        debug_assert!(
            lx0 + w <= self.padded_w() && (ly0 + h) * self.padded_w() <= self.lattice.len() as u32
        );
        for ly in ly0..ly0 + h {
            let start = ly as usize * pw + lx0 as usize;
            out.extend_from_slice(&self.lattice.cells()[start..start + w as usize]);
        }
    }

    /// Overwrite the `w × h` local rectangle at `(lx0, ly0)` with `data`
    /// (row-major), appending a `(site, old, new)` record to `changes` for
    /// every cell whose state actually changed.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly `w · h` bytes.
    pub fn unpack_rect_diff(
        &mut self,
        lx0: u32,
        ly0: u32,
        w: u32,
        h: u32,
        data: &[u8],
        changes: &mut Vec<Change>,
    ) {
        assert_eq!(data.len(), (w * h) as usize, "halo payload size mismatch");
        let pw = self.padded_w();
        let mut i = 0;
        for ly in ly0..ly0 + h {
            for lx in lx0..lx0 + w {
                let site = Site(ly * pw + lx);
                let new = data[i];
                i += 1;
                let old = self.lattice.get(site);
                if old != new {
                    self.lattice.set(site, new);
                    changes.push((site, old, new));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numbered(dims: Dims) -> Lattice {
        let cells = (0..dims.sites()).map(|i| (i % 7) as u8).collect();
        Lattice::from_cells(dims, cells)
    }

    #[test]
    fn scatter_copies_owned_and_wrapped_halo() {
        let g = numbered(Dims::new(8, 6));
        let sub = SubLattice::scatter(&g, 4, 0, 4, 3, 1);
        // Owned corner (4, 0) global == local (1, 1).
        assert_eq!(
            sub.lattice().get(sub.local_site(1, 1)),
            g.get(g.dims().site_at(4, 0))
        );
        // Halo above the top row wraps to global row 5.
        assert_eq!(
            sub.lattice().get(sub.local_site(1, 0)),
            g.get(g.dims().site_at(4, 5))
        );
        // Halo right of the owned region wraps to global column 0.
        assert_eq!(
            sub.lattice().get(sub.local_site(5, 1)),
            g.get(g.dims().site_at(8, 0))
        );
    }

    #[test]
    fn to_global_and_owned_local_roundtrip() {
        let g = numbered(Dims::new(10, 10));
        let sub = SubLattice::scatter(&g, 5, 5, 5, 5, 2);
        for ly in 2..7u32 {
            for lx in 2..7u32 {
                let local = sub.local_site(lx, ly);
                assert!(sub.is_owned(local));
                let global = sub.to_global(local);
                assert_eq!(sub.owned_local(global), Some(local));
                assert_eq!(sub.lattice().get(local), g.get(global));
            }
        }
        // A halo cell maps to a global site this shard does not own.
        let halo_cell = sub.local_site(0, 3);
        assert!(!sub.is_owned(halo_cell));
        assert_eq!(sub.owned_local(sub.to_global(halo_cell)), None);
    }

    #[test]
    fn gather_restores_the_global_lattice() {
        let g = numbered(Dims::new(6, 4));
        let mut out = Lattice::filled(Dims::new(6, 4), 9);
        for (x0, y0) in [(0, 0), (3, 0), (0, 2), (3, 2)] {
            let sub = SubLattice::scatter(&g, x0, y0, 3, 2, 0);
            sub.gather_into(&mut out);
        }
        assert_eq!(out, g);
    }

    #[test]
    fn pack_unpack_reports_diffs_only() {
        let g = numbered(Dims::new(8, 8));
        let a = SubLattice::scatter(&g, 0, 0, 4, 4, 1);
        let mut b = a.clone();
        let mut strip = Vec::new();
        a.pack_rect(1, 1, 4, 1, &mut strip);
        assert_eq!(strip.len(), 4);
        // Identical content: no changes recorded.
        let mut changes = Vec::new();
        b.unpack_rect_diff(1, 1, 4, 1, &strip, &mut changes);
        assert!(changes.is_empty());
        // Mutate one cell; the diff journal pins exactly that cell.
        let site = b.local_site(2, 1);
        let old = b.lattice().get(site);
        b.lattice_mut().set(site, 6);
        let mut changes = Vec::new();
        b.unpack_rect_diff(1, 1, 4, 1, &strip, &mut changes);
        assert_eq!(changes, vec![(site, 6, old)]);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn oversized_halo_rejected() {
        let g = numbered(Dims::new(8, 8));
        SubLattice::scatter(&g, 0, 0, 4, 4, 2);
    }
}
