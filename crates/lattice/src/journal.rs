//! Change journal: a record of mutated sites for incremental bookkeeping.
//!
//! Incremental data structures (the VSSM enabled-site index, the per-chunk
//! propensity cache in `psr-ca`) need to know *which* sites changed between
//! two points in time, and which *anchor* sites may have had their
//! enabledness altered by those changes. A [`ChangeJournal`] collects
//! `(site, old, new)` records as the lattice is mutated; the
//! [`affected_sites`] helper expands a changed site into the set of sites
//! whose reaction neighborhood can see it.
//!
//! Invariant: replaying a journal's entries (`set(site, new)` in order)
//! against a lattice in the journal's starting configuration reproduces the
//! final configuration; replaying `(site, old)` in *reverse* order undoes
//! it. Entries with `old == new` are permitted (the lattice was written but
//! not changed) and harmless to consumers that re-derive state from the
//! lattice.

use crate::geometry::{Dims, Site};
use crate::lattice::{Lattice, State};
use crate::neighborhood::Neighborhood;

/// A `(site, old_state, new_state)` mutation record.
pub type Change = (Site, State, State);

/// An append-only log of lattice mutations.
///
/// The journal is deliberately dumb: it does not deduplicate sites (a site
/// written twice appears twice, preserving replay order) and does not touch
/// the lattice itself. Use [`Lattice::set_journaled`] to mutate and record
/// in one call, or [`record`](ChangeJournal::record) when the mutation
/// already happened elsewhere.
#[derive(Clone, Debug, Default)]
pub struct ChangeJournal {
    entries: Vec<Change>,
}

impl ChangeJournal {
    /// An empty journal.
    pub fn new() -> Self {
        ChangeJournal::default()
    }

    /// An empty journal with room for `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        ChangeJournal {
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Append one mutation record.
    #[inline]
    pub fn record(&mut self, site: Site, old: State, new: State) {
        self.entries.push((site, old, new));
    }

    /// Append every record from a change slice (the `(site, old, new)`
    /// triples produced by `ReactionType::execute`).
    pub fn record_all(&mut self, changes: &[Change]) {
        self.entries.extend_from_slice(changes);
    }

    /// The recorded entries, oldest first.
    pub fn entries(&self) -> &[Change] {
        &self.entries
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Forget all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Move all entries out, leaving the journal empty.
    pub fn take(&mut self) -> Vec<Change> {
        std::mem::take(&mut self.entries)
    }

    /// Distinct sites whose reaction enabledness may have changed, i.e. the
    /// union of [`affected_sites`] over every journaled change, deduplicated
    /// and sorted.
    ///
    /// `radius` is the maximum L1 pattern extent of the model (see
    /// `Model::max_pattern_extent` in `psr-model`): a site `s` can only be
    /// affected by a change at `x` if `‖s − x‖₁ ≤ radius`.
    pub fn affected_sites(&self, dims: Dims, radius: u32) -> Vec<Site> {
        let ball = Neighborhood::l1_ball(radius);
        let mut sites: Vec<Site> = self
            .entries
            .iter()
            .flat_map(|&(site, _, _)| ball.sites_at(dims, site))
            .collect();
        sites.sort_unstable();
        sites.dedup();
        sites
    }
}

/// Sites whose anchor enabledness may depend on the state of `change`: the
/// L1 ball of `radius` around the changed site, materialised on the torus.
///
/// This over-approximates the exact update stencil (the negated transform
/// offsets of the model's reactions) but is correct for any model whose
/// pattern extent is at most `radius`, because a pattern anchored at `s`
/// only reads sites within `radius` of `s`.
pub fn affected_sites(dims: Dims, change: Site, radius: u32) -> Vec<Site> {
    Neighborhood::l1_ball(radius).sites_at(dims, change)
}

impl Lattice {
    /// Set the state of a site, recording the mutation in `journal`.
    ///
    /// Returns the previous state, exactly like [`Lattice::set`].
    #[inline]
    pub fn set_journaled(
        &mut self,
        site: Site,
        state: State,
        journal: &mut ChangeJournal,
    ) -> State {
        let old = self.set(site, state);
        journal.record(site, old, state);
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Dims;

    #[test]
    fn journaled_set_records_old_and_new() {
        let mut lattice = Lattice::filled(Dims::new(3, 3), 0);
        let mut journal = ChangeJournal::new();
        lattice.set_journaled(Site(4), 2, &mut journal);
        lattice.set_journaled(Site(4), 1, &mut journal);
        assert_eq!(journal.entries(), &[(Site(4), 0, 2), (Site(4), 2, 1)]);
        assert_eq!(journal.len(), 2);
    }

    #[test]
    fn replay_reproduces_and_reverse_undoes() {
        let dims = Dims::new(4, 4);
        let start = Lattice::filled(dims, 0);
        let mut lattice = start.clone();
        let mut journal = ChangeJournal::new();
        for (i, s) in [(0u32, 3u8), (5, 1), (0, 2), (9, 1)] {
            lattice.set_journaled(Site(i), s, &mut journal);
        }
        // Forward replay from the start configuration matches.
        let mut replay = start.clone();
        for &(site, _, new) in journal.entries() {
            replay.set(site, new);
        }
        assert_eq!(replay, lattice);
        // Reverse replay of old states undoes everything.
        for &(site, old, _) in journal.entries().iter().rev() {
            lattice.set(site, old);
        }
        assert_eq!(lattice, start);
    }

    #[test]
    fn affected_sites_is_l1_ball() {
        let dims = Dims::new(5, 5);
        let center = dims.site_at(2, 2);
        let ball = affected_sites(dims, center, 1);
        assert_eq!(ball.len(), 5);
        assert!(ball.contains(&center));
        assert!(ball.contains(&dims.site_at(1, 2)));
        assert!(ball.contains(&dims.site_at(2, 3)));
        // Radius 0: only the site itself.
        assert_eq!(affected_sites(dims, center, 0), vec![center]);
    }

    #[test]
    fn affected_sites_wrap_on_torus() {
        let dims = Dims::new(4, 4);
        let corner = dims.site_at(0, 0);
        let ball = affected_sites(dims, corner, 1);
        assert!(ball.contains(&dims.site_at(3, 0)));
        assert!(ball.contains(&dims.site_at(0, 3)));
    }

    #[test]
    fn journal_affected_sites_dedups_across_entries() {
        let dims = Dims::new(6, 6);
        let mut lattice = Lattice::filled(dims, 0);
        let mut journal = ChangeJournal::new();
        // Two adjacent changes: their radius-1 balls share two sites.
        lattice.set_journaled(dims.site_at(2, 2), 1, &mut journal);
        lattice.set_journaled(dims.site_at(3, 2), 1, &mut journal);
        let affected = journal.affected_sites(dims, 1);
        // 5 + 5 - 2 shared = 8 distinct sites.
        assert_eq!(affected.len(), 8);
        let mut sorted = affected.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, affected, "result must be sorted and deduped");
    }

    #[test]
    fn clear_and_take_empty_the_journal() {
        let mut journal = ChangeJournal::with_capacity(4);
        journal.record(Site(0), 0, 1);
        journal.record_all(&[(Site(1), 0, 2)]);
        assert_eq!(journal.take(), vec![(Site(0), 0, 1), (Site(1), 0, 2)]);
        assert!(journal.is_empty());
        journal.record(Site(2), 1, 0);
        journal.clear();
        assert!(journal.is_empty());
    }
}
