//! ASCII rendering of lattice configurations.
//!
//! The examples print snapshots of the surface (CO/O islands, phase fronts)
//! to the terminal; this module maps state ids to glyphs.

use crate::lattice::{Lattice, State};

/// Render a lattice as text, one row per line.
///
/// `glyphs[id]` is the character for state `id`; ids beyond the table render
/// as `'?'`.
pub fn render(lattice: &Lattice, glyphs: &[char]) -> String {
    let dims = lattice.dims();
    let w = dims.width() as usize;
    let mut out = String::with_capacity(lattice.len() + dims.height() as usize);
    for (i, &cell) in lattice.cells().iter().enumerate() {
        out.push(glyph(cell, glyphs));
        if (i + 1) % w == 0 {
            out.push('\n');
        }
    }
    out
}

/// Render only every `stride`-th row and column (for large lattices).
pub fn render_downsampled(lattice: &Lattice, glyphs: &[char], stride: usize) -> String {
    assert!(stride > 0, "stride must be positive");
    let dims = lattice.dims();
    let mut out = String::new();
    for y in (0..dims.height() as usize).step_by(stride) {
        for x in (0..dims.width() as usize).step_by(stride) {
            let cell = lattice.cells()[y * dims.width() as usize + x];
            out.push(glyph(cell, glyphs));
        }
        out.push('\n');
    }
    out
}

fn glyph(state: State, glyphs: &[char]) -> char {
    glyphs.get(state as usize).copied().unwrap_or('?')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Dims;

    #[test]
    fn renders_rows() {
        let l = Lattice::from_cells(Dims::new(2, 2), vec![0, 1, 1, 0]);
        let s = render(&l, &['.', 'C']);
        assert_eq!(s, ".C\nC.\n");
    }

    #[test]
    fn unknown_state_renders_question_mark() {
        let l = Lattice::from_cells(Dims::new(1, 1), vec![9]);
        assert_eq!(render(&l, &['.']), "?\n");
    }

    #[test]
    fn downsampling_shrinks_output() {
        let l = Lattice::filled(Dims::new(8, 8), 0);
        let s = render_downsampled(&l, &['.'], 2);
        assert_eq!(s.lines().count(), 4);
        assert_eq!(s.lines().next().expect("row").len(), 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_stride_panics() {
        let l = Lattice::filled(Dims::new(2, 2), 0);
        render_downsampled(&l, &['.'], 0);
    }
}
