//! Plain-text snapshots of lattice configurations.
//!
//! Long simulations (the Fig 7 sweeps, the oscillation studies) benefit
//! from checkpointing, and the examples exchange configurations with
//! external plotting. The format is deliberately trivial:
//!
//! ```text
//! psr-lattice v1
//! <width> <height>
//! <row 0: one state id per cell, space separated>
//! …
//! ```

use crate::geometry::Dims;
use crate::lattice::Lattice;
use std::fmt::Write as _;

/// Magic header line of the snapshot format.
const MAGIC: &str = "psr-lattice v1";

/// Serialise a lattice to the snapshot text format.
pub fn to_text(lattice: &Lattice) -> String {
    let dims = lattice.dims();
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC}");
    let _ = writeln!(out, "{} {}", dims.width(), dims.height());
    for y in 0..dims.height() {
        let row: Vec<String> = (0..dims.width())
            .map(|x| lattice.get(dims.site_at(x as i64, y as i64)).to_string())
            .collect();
        let _ = writeln!(out, "{}", row.join(" "));
    }
    out
}

/// Parse a snapshot produced by [`to_text`].
///
/// # Errors
///
/// Returns a description of the first format violation encountered.
pub fn from_text(text: &str) -> Result<Lattice, String> {
    let mut lines = text.lines();
    let magic = lines.next().ok_or("empty snapshot")?;
    if magic.trim() != MAGIC {
        return Err(format!("bad header {magic:?}, expected {MAGIC:?}"));
    }
    let dims_line = lines.next().ok_or("missing dimension line")?;
    let mut parts = dims_line.split_whitespace();
    let width: u32 = parts
        .next()
        .ok_or("missing width")?
        .parse()
        .map_err(|e| format!("bad width: {e}"))?;
    let height: u32 = parts
        .next()
        .ok_or("missing height")?
        .parse()
        .map_err(|e| format!("bad height: {e}"))?;
    if width == 0 || height == 0 {
        return Err("dimensions must be positive".to_owned());
    }
    let dims = Dims::new(width, height);
    let mut cells = Vec::with_capacity((width * height) as usize);
    for y in 0..height {
        let row = lines.next().ok_or_else(|| format!("missing row {y}"))?;
        let mut count = 0u32;
        for token in row.split_whitespace() {
            let v: u8 = token
                .parse()
                .map_err(|e| format!("row {y}: bad cell {token:?}: {e}"))?;
            cells.push(v);
            count += 1;
        }
        if count != width {
            return Err(format!("row {y} has {count} cells, expected {width}"));
        }
    }
    if lines.any(|l| !l.trim().is_empty()) {
        return Err("trailing content after the last row".to_owned());
    }
    Ok(Lattice::from_cells(dims, cells))
}

/// Write a snapshot to a file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save(lattice: &Lattice, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, to_text(lattice))
}

/// Read a snapshot from a file.
///
/// # Errors
///
/// Propagates I/O errors; format violations become `InvalidData`.
pub fn load(path: &std::path::Path) -> std::io::Result<Lattice> {
    let text = std::fs::read_to_string(path)?;
    from_text(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let dims = Dims::new(4, 3);
        let cells: Vec<u8> = (0..12).map(|i| (i % 5) as u8).collect();
        let lattice = Lattice::from_cells(dims, cells);
        let text = to_text(&lattice);
        let back = from_text(&text).expect("parse");
        assert_eq!(back, lattice);
    }

    #[test]
    fn file_roundtrip() {
        let dims = Dims::new(3, 3);
        let lattice = Lattice::from_cells(dims, vec![0, 1, 2, 2, 1, 0, 1, 1, 1]);
        let path = std::env::temp_dir().join("psr_snapshot_test.txt");
        save(&lattice, &path).expect("save");
        let back = load(&path).expect("load");
        assert_eq!(back, lattice);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(from_text("nonsense\n2 2\n0 0\n0 0\n")
            .unwrap_err()
            .contains("bad header"));
    }

    #[test]
    fn rejects_short_row() {
        let text = format!("{MAGIC}\n3 1\n0 1\n");
        assert!(from_text(&text).unwrap_err().contains("has 2 cells"));
    }

    #[test]
    fn rejects_missing_row() {
        let text = format!("{MAGIC}\n2 2\n0 0\n");
        assert!(from_text(&text).unwrap_err().contains("missing row 1"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let text = format!("{MAGIC}\n1 1\n0\nextra\n");
        assert!(from_text(&text).unwrap_err().contains("trailing"));
    }

    #[test]
    fn rejects_non_numeric_cell() {
        let text = format!("{MAGIC}\n2 1\n0 x\n");
        assert!(from_text(&text).unwrap_err().contains("bad cell"));
    }
}
