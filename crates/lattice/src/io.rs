//! Plain-text snapshots of lattice configurations.
//!
//! Long simulations (the Fig 7 sweeps, the oscillation studies) benefit
//! from checkpointing, and the examples exchange configurations with
//! external plotting. The v1 format is deliberately trivial:
//!
//! ```text
//! psr-lattice v1
//! <width> <height>
//! <row 0: one state id per cell, space separated>
//! …
//! ```
//!
//! The v2 format is the checkpoint format of `psr-engine`: the same lattice
//! body prefixed by resume metadata, so a half-finished run can continue
//! *bit-identically* (same clock, same step count, same RNG stream):
//!
//! ```text
//! psr-lattice v2
//! time_bits <u64: f64::to_bits of the simulated clock>
//! steps <u64: algorithm steps completed>
//! rng <u64> <u64: opaque generator state words>
//! <width> <height>
//! <rows as in v1>
//! ```
//!
//! The clock is stored as raw IEEE-754 bits because a decimal rendering
//! would lose the low mantissa bits and break bit-identical resume.

use crate::geometry::Dims;
use crate::lattice::Lattice;
use std::fmt::Write as _;

/// Magic header line of the v1 snapshot format.
const MAGIC: &str = "psr-lattice v1";

/// Magic header line of the v2 (checkpoint) snapshot format.
const MAGIC_V2: &str = "psr-lattice v2";

/// Serialise a lattice to the snapshot text format.
pub fn to_text(lattice: &Lattice) -> String {
    let dims = lattice.dims();
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC}");
    let _ = writeln!(out, "{} {}", dims.width(), dims.height());
    for y in 0..dims.height() {
        let row: Vec<String> = (0..dims.width())
            .map(|x| lattice.get(dims.site_at(x as i64, y as i64)).to_string())
            .collect();
        let _ = writeln!(out, "{}", row.join(" "));
    }
    out
}

/// Parse the dimension line plus cell rows shared by both format versions,
/// rejecting short/long rows, malformed cells and trailing garbage.
fn parse_body(lines: &mut std::str::Lines<'_>) -> Result<Lattice, String> {
    let dims_line = lines.next().ok_or("missing dimension line")?;
    let mut parts = dims_line.split_whitespace();
    let width: u32 = parts
        .next()
        .ok_or("missing width")?
        .parse()
        .map_err(|e| format!("bad width: {e}"))?;
    let height: u32 = parts
        .next()
        .ok_or("missing height")?
        .parse()
        .map_err(|e| format!("bad height: {e}"))?;
    if parts.next().is_some() {
        return Err("trailing tokens on the dimension line".to_owned());
    }
    if width == 0 || height == 0 {
        return Err("dimensions must be positive".to_owned());
    }
    let dims = Dims::new(width, height);
    let mut cells = Vec::with_capacity((width * height) as usize);
    for y in 0..height {
        let row = lines.next().ok_or_else(|| format!("missing row {y}"))?;
        let mut count = 0u32;
        for token in row.split_whitespace() {
            let v: u8 = token
                .parse()
                .map_err(|e| format!("row {y}: bad cell {token:?}: {e}"))?;
            cells.push(v);
            count += 1;
        }
        if count != width {
            return Err(format!("row {y} has {count} cells, expected {width}"));
        }
    }
    if lines.any(|l| !l.trim().is_empty()) {
        return Err("trailing content after the last row".to_owned());
    }
    Ok(Lattice::from_cells(dims, cells))
}

/// Parse a snapshot produced by [`to_text`].
///
/// # Errors
///
/// Returns a description of the first format violation encountered.
pub fn from_text(text: &str) -> Result<Lattice, String> {
    let mut lines = text.lines();
    let magic = lines.next().ok_or("empty snapshot")?;
    if magic.trim() != MAGIC {
        return Err(format!("bad header {magic:?}, expected {MAGIC:?}"));
    }
    parse_body(&mut lines)
}

/// Resume metadata carried by a v2 (checkpoint) snapshot.
///
/// The `rng` words are opaque to this crate — `psr-engine` stores the
/// serialised `Pcg32` state there; any generator whose state fits two words
/// can use the slots.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SnapshotMeta {
    /// Simulated clock at checkpoint time.
    pub time: f64,
    /// Algorithm steps completed at checkpoint time.
    pub steps: u64,
    /// Opaque RNG state words.
    pub rng: [u64; 2],
}

/// Serialise a lattice plus resume metadata to the v2 checkpoint format.
pub fn to_text_v2(lattice: &Lattice, meta: &SnapshotMeta) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC_V2}");
    let _ = writeln!(out, "time_bits {}", meta.time.to_bits());
    let _ = writeln!(out, "steps {}", meta.steps);
    let _ = writeln!(out, "rng {} {}", meta.rng[0], meta.rng[1]);
    // Append the v1 body (dims + rows) by reusing the v1 writer minus its
    // header line.
    let v1 = to_text(lattice);
    out.push_str(v1.split_once('\n').map(|(_, body)| body).unwrap_or(""));
    out
}

/// Parse one `<key> <u64>…` metadata line of the v2 header.
fn parse_meta_words<const N: usize>(
    lines: &mut std::str::Lines<'_>,
    key: &str,
) -> Result<[u64; N], String> {
    let line = lines.next().ok_or_else(|| format!("missing {key} line"))?;
    let mut parts = line.split_whitespace();
    let found = parts.next().ok_or_else(|| format!("missing {key} line"))?;
    if found != key {
        return Err(format!("expected {key:?} line, found {found:?}"));
    }
    let mut words = [0u64; N];
    for w in words.iter_mut() {
        *w = parts
            .next()
            .ok_or_else(|| format!("{key}: too few words"))?
            .parse()
            .map_err(|e| format!("{key}: bad word: {e}"))?;
    }
    if parts.next().is_some() {
        return Err(format!("{key}: trailing tokens"));
    }
    Ok(words)
}

/// Parse a checkpoint produced by [`to_text_v2`].
///
/// # Errors
///
/// Returns a description of the first format violation encountered.
pub fn from_text_v2(text: &str) -> Result<(Lattice, SnapshotMeta), String> {
    let mut lines = text.lines();
    let magic = lines.next().ok_or("empty snapshot")?;
    if magic.trim() != MAGIC_V2 {
        return Err(format!("bad header {magic:?}, expected {MAGIC_V2:?}"));
    }
    let [time_bits] = parse_meta_words::<1>(&mut lines, "time_bits")?;
    let [steps] = parse_meta_words::<1>(&mut lines, "steps")?;
    let rng = parse_meta_words::<2>(&mut lines, "rng")?;
    let time = f64::from_bits(time_bits);
    if !time.is_finite() || time < 0.0 {
        return Err(format!("time {time} is not a valid simulation clock"));
    }
    let lattice = parse_body(&mut lines)?;
    Ok((lattice, SnapshotMeta { time, steps, rng }))
}

/// Write a v2 checkpoint to a file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_v2(
    lattice: &Lattice,
    meta: &SnapshotMeta,
    path: &std::path::Path,
) -> std::io::Result<()> {
    std::fs::write(path, to_text_v2(lattice, meta))
}

/// Read a v2 checkpoint from a file.
///
/// # Errors
///
/// Propagates I/O errors; format violations become `InvalidData`.
pub fn load_v2(path: &std::path::Path) -> std::io::Result<(Lattice, SnapshotMeta)> {
    let text = std::fs::read_to_string(path)?;
    from_text_v2(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Write a snapshot to a file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save(lattice: &Lattice, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, to_text(lattice))
}

/// Read a snapshot from a file.
///
/// # Errors
///
/// Propagates I/O errors; format violations become `InvalidData`.
pub fn load(path: &std::path::Path) -> std::io::Result<Lattice> {
    let text = std::fs::read_to_string(path)?;
    from_text(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let dims = Dims::new(4, 3);
        let cells: Vec<u8> = (0..12).map(|i| (i % 5) as u8).collect();
        let lattice = Lattice::from_cells(dims, cells);
        let text = to_text(&lattice);
        let back = from_text(&text).expect("parse");
        assert_eq!(back, lattice);
    }

    #[test]
    fn file_roundtrip() {
        let dims = Dims::new(3, 3);
        let lattice = Lattice::from_cells(dims, vec![0, 1, 2, 2, 1, 0, 1, 1, 1]);
        let path = std::env::temp_dir().join("psr_snapshot_test.txt");
        save(&lattice, &path).expect("save");
        let back = load(&path).expect("load");
        assert_eq!(back, lattice);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(from_text("nonsense\n2 2\n0 0\n0 0\n")
            .unwrap_err()
            .contains("bad header"));
    }

    #[test]
    fn rejects_short_row() {
        let text = format!("{MAGIC}\n3 1\n0 1\n");
        assert!(from_text(&text).unwrap_err().contains("has 2 cells"));
    }

    #[test]
    fn rejects_missing_row() {
        let text = format!("{MAGIC}\n2 2\n0 0\n");
        assert!(from_text(&text).unwrap_err().contains("missing row 1"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let text = format!("{MAGIC}\n1 1\n0\nextra\n");
        assert!(from_text(&text).unwrap_err().contains("trailing"));
    }

    #[test]
    fn rejects_non_numeric_cell() {
        let text = format!("{MAGIC}\n2 1\n0 x\n");
        assert!(from_text(&text).unwrap_err().contains("bad cell"));
    }

    #[test]
    fn rejects_long_row() {
        let text = format!("{MAGIC}\n2 1\n0 1 2\n");
        assert!(from_text(&text).unwrap_err().contains("has 3 cells"));
    }

    #[test]
    fn rejects_dimension_line_garbage() {
        let text = format!("{MAGIC}\n2 1 9\n0 1\n");
        assert!(from_text(&text).unwrap_err().contains("dimension line"));
    }

    fn meta() -> SnapshotMeta {
        SnapshotMeta {
            // A value with low mantissa bits set: decimal printing at any
            // fixed precision would corrupt it, bit storage must not.
            time: f64::from_bits(0x3FF0_0000_0000_0002),
            steps: 12345,
            rng: [0xdead_beef_0123_4567, 0x8765_4321_0bad_f00d | 1],
        }
    }

    #[test]
    fn v2_roundtrip_preserves_meta_bits() {
        let lattice = Lattice::from_cells(Dims::new(3, 2), vec![0, 1, 2, 3, 4, 5]);
        let m = meta();
        let text = to_text_v2(&lattice, &m);
        let (back, back_meta) = from_text_v2(&text).expect("parse");
        assert_eq!(back, lattice);
        assert_eq!(back_meta.time.to_bits(), m.time.to_bits());
        assert_eq!(back_meta.steps, m.steps);
        assert_eq!(back_meta.rng, m.rng);
    }

    #[test]
    fn v2_file_roundtrip() {
        let lattice = Lattice::from_cells(Dims::new(2, 2), vec![1, 0, 0, 1]);
        let path = std::env::temp_dir().join("psr_snapshot_v2_test.txt");
        save_v2(&lattice, &meta(), &path).expect("save");
        let (back, back_meta) = load_v2(&path).expect("load");
        assert_eq!(back, lattice);
        assert_eq!(back_meta, meta());
    }

    #[test]
    fn v2_rejects_v1_header_and_vice_versa() {
        let lattice = Lattice::from_cells(Dims::new(1, 1), vec![0]);
        assert!(from_text_v2(&to_text(&lattice)).is_err());
        assert!(from_text(&to_text_v2(&lattice, &meta())).is_err());
    }

    #[test]
    fn v2_rejects_missing_and_malformed_meta() {
        let text = format!("{MAGIC_V2}\nsteps 3\nrng 1 1\n1 1\n0\n");
        assert!(from_text_v2(&text).unwrap_err().contains("time_bits"));
        let text = format!("{MAGIC_V2}\ntime_bits 0\nsteps 3\nrng 1\n1 1\n0\n");
        assert!(from_text_v2(&text).unwrap_err().contains("too few words"));
        let nan = f64::NAN.to_bits();
        let text = format!("{MAGIC_V2}\ntime_bits {nan}\nsteps 3\nrng 1 1\n1 1\n0\n");
        assert!(from_text_v2(&text).unwrap_err().contains("not a valid"));
    }

    #[test]
    fn v2_rejects_trailing_garbage() {
        let lattice = Lattice::from_cells(Dims::new(1, 1), vec![0]);
        let text = format!("{}junk\n", to_text_v2(&lattice, &meta()));
        assert!(from_text_v2(&text).unwrap_err().contains("trailing"));
    }
}
