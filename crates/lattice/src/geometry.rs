//! Torus geometry: dimensions, sites, coordinates and offsets.
//!
//! Sites are stored as flat row-major indices ([`Site`]); the conversion to
//! `(x, y)` coordinates and back, and the periodic translation by an
//! [`Offset`], live on [`Dims`]. All reaction-type neighborhoods in the paper
//! are defined by offsets relative to a site (`s + (1,0)` etc.), and the
//! translation-invariance property of §2 is automatic because offsets are
//! applied modulo the lattice dimensions.

/// Lattice dimensions `L0 × L1` (width × height) with periodic wrapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Dims {
    width: u32,
    height: u32,
}

/// A lattice site as a flat row-major index: `index = y * width + x`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Site(pub u32);

/// Integer coordinates of a site, `x` along `L0`, `y` along `L1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column, in `[0, L0)` after wrapping.
    pub x: i64,
    /// Row, in `[0, L1)` after wrapping.
    pub y: i64,
}

/// A translation-invariant displacement between sites.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Offset {
    /// Displacement along `x`.
    pub dx: i32,
    /// Displacement along `y`.
    pub dy: i32,
}

impl Offset {
    /// The zero offset (a site relative to itself).
    pub const ZERO: Offset = Offset { dx: 0, dy: 0 };

    /// Construct an offset.
    pub const fn new(dx: i32, dy: i32) -> Self {
        Offset { dx, dy }
    }

    /// Component-wise sum.
    pub fn plus(self, other: Offset) -> Offset {
        Offset::new(self.dx + other.dx, self.dy + other.dy)
    }

    /// The opposite displacement.
    pub fn negated(self) -> Offset {
        Offset::new(-self.dx, -self.dy)
    }

    /// Manhattan (L1) norm — the lattice distance spanned by this offset.
    pub fn l1_norm(self) -> u32 {
        self.dx.unsigned_abs() + self.dy.unsigned_abs()
    }

    /// Chebyshev (L∞) norm.
    pub fn linf_norm(self) -> u32 {
        self.dx.unsigned_abs().max(self.dy.unsigned_abs())
    }

    /// Rotate the offset by 90° counter-clockwise `quarter_turns` times.
    ///
    /// Used to generate the orientation variants of a reaction pattern
    /// (Table I has four rotations of the CO+O pattern).
    pub fn rotated(self, quarter_turns: u32) -> Offset {
        let mut o = self;
        for _ in 0..(quarter_turns % 4) {
            o = Offset::new(-o.dy, o.dx);
        }
        o
    }
}

impl Dims {
    /// Create dimensions `width × height`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the site count overflows `u32`.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(
            width > 0 && height > 0,
            "lattice dimensions must be positive"
        );
        assert!(
            (width as u64) * (height as u64) <= u32::MAX as u64,
            "lattice of {width}x{height} sites exceeds u32 indexing"
        );
        Dims { width, height }
    }

    /// Square lattice `side × side`.
    pub fn square(side: u32) -> Self {
        Dims::new(side, side)
    }

    /// Width `L0`.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height `L1`.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total number of sites `N = L0 · L1`.
    pub fn sites(&self) -> u32 {
        self.width * self.height
    }

    /// Wrap arbitrary integer coordinates onto the torus and return the site.
    pub fn site_at(&self, x: i64, y: i64) -> Site {
        let w = self.width as i64;
        let h = self.height as i64;
        let x = x.rem_euclid(w) as u32;
        let y = y.rem_euclid(h) as u32;
        Site(y * self.width + x)
    }

    /// Coordinates of a site.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the site is out of range for these dimensions.
    pub fn coord(&self, site: Site) -> Coord {
        debug_assert!(site.0 < self.sites(), "site {} out of range", site.0);
        Coord {
            x: (site.0 % self.width) as i64,
            y: (site.0 / self.width) as i64,
        }
    }

    /// Translate `site` by `offset` with periodic wrapping.
    #[inline]
    pub fn translate(&self, site: Site, offset: Offset) -> Site {
        let c = self.coord(site);
        self.site_at(c.x + offset.dx as i64, c.y + offset.dy as i64)
    }

    /// Iterate over all sites in row-major order.
    pub fn iter_sites(&self) -> impl Iterator<Item = Site> + '_ {
        (0..self.sites()).map(Site)
    }

    /// True if `site` is a valid index for these dimensions.
    pub fn contains(&self, site: Site) -> bool {
        site.0 < self.sites()
    }

    /// The periodic (toroidal) L1 distance between two sites.
    pub fn torus_l1_distance(&self, a: Site, b: Site) -> u32 {
        let ca = self.coord(a);
        let cb = self.coord(b);
        let w = self.width as i64;
        let h = self.height as i64;
        let dx = (ca.x - cb.x).rem_euclid(w);
        let dy = (ca.y - cb.y).rem_euclid(h);
        let dx = dx.min(w - dx) as u32;
        let dy = dy.min(h - dy) as u32;
        dx + dy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_coord_roundtrip() {
        let d = Dims::new(7, 5);
        for s in d.iter_sites() {
            let c = d.coord(s);
            assert_eq!(d.site_at(c.x, c.y), s);
        }
    }

    #[test]
    fn wrapping_is_periodic() {
        let d = Dims::new(10, 10);
        assert_eq!(d.site_at(-1, 0), d.site_at(9, 0));
        assert_eq!(d.site_at(10, 3), d.site_at(0, 3));
        assert_eq!(d.site_at(0, -1), d.site_at(0, 9));
        assert_eq!(d.site_at(25, 31), d.site_at(5, 1));
    }

    #[test]
    fn translate_is_invertible() {
        let d = Dims::new(8, 6);
        let o = Offset::new(3, -2);
        for s in d.iter_sites() {
            assert_eq!(d.translate(d.translate(s, o), o.negated()), s);
        }
    }

    #[test]
    fn translation_invariance() {
        // Nb(s + t) = Nb(s) + t for any offset, paper §2 property 2.
        let d = Dims::new(9, 9);
        let nb = [Offset::new(1, 0), Offset::new(0, 1), Offset::new(-1, 0)];
        let s = d.site_at(2, 3);
        let t = Offset::new(4, 5);
        let st = d.translate(s, t);
        for o in nb {
            assert_eq!(d.translate(st, o), d.translate(d.translate(s, o), t));
        }
    }

    #[test]
    fn offset_rotation_cycles() {
        let o = Offset::new(1, 0);
        assert_eq!(o.rotated(1), Offset::new(0, 1));
        assert_eq!(o.rotated(2), Offset::new(-1, 0));
        assert_eq!(o.rotated(3), Offset::new(0, -1));
        assert_eq!(o.rotated(4), o);
    }

    #[test]
    fn offset_norms() {
        let o = Offset::new(-3, 2);
        assert_eq!(o.l1_norm(), 5);
        assert_eq!(o.linf_norm(), 3);
        assert_eq!(Offset::ZERO.l1_norm(), 0);
    }

    #[test]
    fn torus_distance_wraps_around() {
        let d = Dims::new(10, 10);
        let a = d.site_at(0, 0);
        let b = d.site_at(9, 0);
        assert_eq!(d.torus_l1_distance(a, b), 1);
        let c = d.site_at(5, 5);
        assert_eq!(d.torus_l1_distance(a, c), 10);
        assert_eq!(d.torus_l1_distance(a, a), 0);
    }

    #[test]
    fn torus_distance_symmetric() {
        let d = Dims::new(7, 11);
        let a = d.site_at(1, 2);
        let b = d.site_at(6, 9);
        assert_eq!(d.torus_l1_distance(a, b), d.torus_l1_distance(b, a));
    }

    #[test]
    fn rectangular_dims() {
        let d = Dims::new(4, 3);
        assert_eq!(d.sites(), 12);
        assert_eq!(d.width(), 4);
        assert_eq!(d.height(), 3);
        assert_eq!(d.iter_sites().count(), 12);
        assert!(d.contains(Site(11)));
        assert!(!d.contains(Site(12)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_panics() {
        Dims::new(0, 5);
    }

    #[test]
    fn offset_plus() {
        assert_eq!(
            Offset::new(1, 2).plus(Offset::new(-3, 4)),
            Offset::new(-2, 6)
        );
    }
}
