//! The configuration `S : Ω → D` as a flat array of state ids.

use crate::geometry::{Dims, Offset, Site};

/// A state id — an element of the domain `D` (paper §2).
///
/// The mapping between ids and chemical species (`*`, `CO`, `O`, …) is owned
/// by `psr-model`; the lattice only stores the ids. `u8` keeps a 1000×1000
/// lattice at 1 MB, which fits in L2 on most machines.
pub type State = u8;

/// A complete assignment of states to sites.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lattice {
    dims: Dims,
    cells: Vec<State>,
}

impl Lattice {
    /// Create a lattice with every site in state `fill`.
    pub fn filled(dims: Dims, fill: State) -> Self {
        Lattice {
            dims,
            cells: vec![fill; dims.sites() as usize],
        }
    }

    /// Create a lattice from an explicit cell vector (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `cells.len() != dims.sites()`.
    pub fn from_cells(dims: Dims, cells: Vec<State>) -> Self {
        assert_eq!(
            cells.len(),
            dims.sites() as usize,
            "cell vector length does not match dimensions"
        );
        Lattice { dims, cells }
    }

    /// Lattice dimensions.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Number of sites `N`.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Always false: lattices have at least one site.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// State of a site.
    #[inline]
    pub fn get(&self, site: Site) -> State {
        self.cells[site.0 as usize]
    }

    /// Set the state of a site, returning the previous state.
    #[inline]
    pub fn set(&mut self, site: Site, state: State) -> State {
        std::mem::replace(&mut self.cells[site.0 as usize], state)
    }

    /// State at `site + offset` (periodic).
    #[inline]
    pub fn get_rel(&self, site: Site, offset: Offset) -> State {
        self.get(self.dims.translate(site, offset))
    }

    /// Raw row-major cell slice.
    pub fn cells(&self) -> &[State] {
        &self.cells
    }

    /// Mutable raw cell slice (used by the parallel executor).
    pub fn cells_mut(&mut self) -> &mut [State] {
        &mut self.cells
    }

    /// Count sites currently in `state`.
    pub fn count(&self, state: State) -> usize {
        self.cells.iter().filter(|&&c| c == state).count()
    }

    /// Fraction of sites in `state` (the paper's "coverage").
    pub fn fraction(&self, state: State) -> f64 {
        self.count(state) as f64 / self.len() as f64
    }

    /// Counts for every state id up to `num_states`.
    pub fn histogram(&self, num_states: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_states];
        for &c in &self.cells {
            let idx = c as usize;
            assert!(
                idx < num_states,
                "state id {idx} out of range (< {num_states})"
            );
            counts[idx] += 1;
        }
        counts
    }

    /// Iterate `(site, state)` pairs in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Site, State)> + '_ {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, &s)| (Site(i as u32), s))
    }

    /// Sites currently in `state`.
    pub fn sites_in_state(&self, state: State) -> Vec<Site> {
        self.iter()
            .filter(|&(_, s)| s == state)
            .map(|(site, _)| site)
            .collect()
    }

    /// Overwrite every site with `state`.
    pub fn fill(&mut self, state: State) {
        self.cells.fill(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_lattice_is_uniform() {
        let l = Lattice::filled(Dims::new(4, 4), 2);
        assert_eq!(l.count(2), 16);
        assert_eq!(l.count(0), 0);
        assert_eq!(l.fraction(2), 1.0);
    }

    #[test]
    fn set_returns_previous() {
        let mut l = Lattice::filled(Dims::new(3, 3), 0);
        let s = Site(4);
        assert_eq!(l.set(s, 7), 0);
        assert_eq!(l.set(s, 1), 7);
        assert_eq!(l.get(s), 1);
    }

    #[test]
    fn get_rel_wraps() {
        let d = Dims::new(3, 3);
        let mut l = Lattice::filled(d, 0);
        l.set(d.site_at(0, 0), 5);
        assert_eq!(l.get_rel(d.site_at(2, 0), Offset::new(1, 0)), 5);
        assert_eq!(l.get_rel(d.site_at(0, 2), Offset::new(0, 1)), 5);
    }

    #[test]
    fn histogram_counts_everything() {
        let d = Dims::new(2, 2);
        let l = Lattice::from_cells(d, vec![0, 1, 1, 2]);
        assert_eq!(l.histogram(3), vec![1, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn histogram_rejects_out_of_range_state() {
        let d = Dims::new(2, 1);
        let l = Lattice::from_cells(d, vec![0, 5]);
        l.histogram(3);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_cells_length_mismatch_panics() {
        Lattice::from_cells(Dims::new(2, 2), vec![0; 3]);
    }

    #[test]
    fn sites_in_state_finds_all() {
        let d = Dims::new(3, 1);
        let l = Lattice::from_cells(d, vec![1, 0, 1]);
        assert_eq!(l.sites_in_state(1), vec![Site(0), Site(2)]);
        assert_eq!(l.sites_in_state(0), vec![Site(1)]);
        assert!(l.sites_in_state(9).is_empty());
    }

    #[test]
    fn fill_overwrites() {
        let mut l = Lattice::from_cells(Dims::new(2, 1), vec![1, 2]);
        l.fill(3);
        assert_eq!(l.count(3), 2);
    }

    #[test]
    fn iter_visits_in_row_major_order() {
        let d = Dims::new(2, 2);
        let l = Lattice::from_cells(d, vec![9, 8, 7, 6]);
        let collected: Vec<(u32, State)> = l.iter().map(|(s, v)| (s.0, v)).collect();
        assert_eq!(collected, vec![(0, 9), (1, 8), (2, 7), (3, 6)]);
    }
}
