//! The configuration `S : Ω → D` as a flat array of state ids.

use crate::geometry::{Dims, Offset, Site};
use crate::wrap::WrapTables;

/// A state id — an element of the domain `D` (paper §2).
///
/// The mapping between ids and chemical species (`*`, `CO`, `O`, …) is owned
/// by `psr-model`; the lattice only stores the ids. `u8` keeps a 1000×1000
/// lattice at 1 MB, which fits in L2 on most machines.
pub type State = u8;

/// Per-axis displacement served by every lattice's built-in wrap tables
/// without falling back to division (larger offsets remain correct via
/// [`Dims::translate`]). Covers every pattern in the model library.
const WRAP_RADIUS: u32 = 4;

/// A complete assignment of states to sites.
///
/// Equality and hashing consider only the geometry and the cell states; the
/// precomputed wrap tables are derived data.
#[derive(Clone, Debug)]
pub struct Lattice {
    dims: Dims,
    cells: Vec<State>,
    /// Strength-reduced torus translation (see [`WrapTables`]); derived
    /// from `dims`, rebuilt on construction, excluded from comparisons.
    wrap: WrapTables,
}

impl PartialEq for Lattice {
    fn eq(&self, other: &Self) -> bool {
        self.dims == other.dims && self.cells == other.cells
    }
}

impl Eq for Lattice {}

impl Lattice {
    /// Create a lattice with every site in state `fill`.
    pub fn filled(dims: Dims, fill: State) -> Self {
        Lattice {
            dims,
            cells: vec![fill; dims.sites() as usize],
            wrap: WrapTables::new(dims, WRAP_RADIUS),
        }
    }

    /// Create a lattice from an explicit cell vector (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `cells.len() != dims.sites()`.
    pub fn from_cells(dims: Dims, cells: Vec<State>) -> Self {
        assert_eq!(
            cells.len(),
            dims.sites() as usize,
            "cell vector length does not match dimensions"
        );
        Lattice {
            dims,
            cells,
            wrap: WrapTables::new(dims, WRAP_RADIUS),
        }
    }

    /// Lattice dimensions.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Number of sites `N`.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Always false: lattices have at least one site.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// State of a site.
    #[inline]
    pub fn get(&self, site: Site) -> State {
        self.cells[site.0 as usize]
    }

    /// Set the state of a site, returning the previous state.
    #[inline]
    pub fn set(&mut self, site: Site, state: State) -> State {
        std::mem::replace(&mut self.cells[site.0 as usize], state)
    }

    /// State at `site + offset` (periodic), served from the wrap tables.
    #[inline]
    pub fn get_rel(&self, site: Site, offset: Offset) -> State {
        self.get(self.wrap.translate(site, offset))
    }

    /// Translate `site` by `offset` using the precomputed wrap tables (one
    /// division instead of the three in [`Dims::translate`]; exact for any
    /// offset, fastest for `|d| ≤ 4` per axis).
    #[inline]
    pub fn translate(&self, site: Site, offset: Offset) -> Site {
        self.wrap.translate(site, offset)
    }

    /// The lattice's precomputed wrap tables (shared with compiled kernels
    /// so neighbor-table construction stays division-free).
    pub fn wrap_tables(&self) -> &WrapTables {
        &self.wrap
    }

    /// Raw row-major cell slice.
    pub fn cells(&self) -> &[State] {
        &self.cells
    }

    /// Mutable raw cell slice (used by the parallel executor).
    pub fn cells_mut(&mut self) -> &mut [State] {
        &mut self.cells
    }

    /// Count sites currently in `state`.
    pub fn count(&self, state: State) -> usize {
        self.cells.iter().filter(|&&c| c == state).count()
    }

    /// Fraction of sites in `state` (the paper's "coverage").
    pub fn fraction(&self, state: State) -> f64 {
        self.count(state) as f64 / self.len() as f64
    }

    /// Counts for every state id up to `num_states`.
    pub fn histogram(&self, num_states: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_states];
        self.histogram_into(&mut counts);
        counts
    }

    /// Count every state id into a caller-provided buffer (zeroed first) —
    /// the allocation-free variant of [`histogram`](Self::histogram) for
    /// observers called once per sample.
    ///
    /// # Panics
    ///
    /// Panics if a cell holds a state id `>= counts.len()`.
    pub fn histogram_into(&self, counts: &mut [usize]) {
        counts.fill(0);
        let num_states = counts.len();
        for &c in &self.cells {
            let idx = c as usize;
            assert!(
                idx < num_states,
                "state id {idx} out of range (< {num_states})"
            );
            counts[idx] += 1;
        }
    }

    /// Iterate `(site, state)` pairs in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Site, State)> + '_ {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, &s)| (Site(i as u32), s))
    }

    /// Sites currently in `state` (allocating; see
    /// [`iter_sites_in_state`](Self::iter_sites_in_state) for the lazy
    /// variant observers should prefer).
    pub fn sites_in_state(&self, state: State) -> Vec<Site> {
        self.iter_sites_in_state(state).collect()
    }

    /// Iterate the sites currently in `state`, row-major, without
    /// materialising a vector.
    pub fn iter_sites_in_state(&self, state: State) -> impl Iterator<Item = Site> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter(move |&(_, &s)| s == state)
            .map(|(i, _)| Site(i as u32))
    }

    /// Overwrite every site with `state`.
    pub fn fill(&mut self, state: State) {
        self.cells.fill(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_lattice_is_uniform() {
        let l = Lattice::filled(Dims::new(4, 4), 2);
        assert_eq!(l.count(2), 16);
        assert_eq!(l.count(0), 0);
        assert_eq!(l.fraction(2), 1.0);
    }

    #[test]
    fn set_returns_previous() {
        let mut l = Lattice::filled(Dims::new(3, 3), 0);
        let s = Site(4);
        assert_eq!(l.set(s, 7), 0);
        assert_eq!(l.set(s, 1), 7);
        assert_eq!(l.get(s), 1);
    }

    #[test]
    fn get_rel_wraps() {
        let d = Dims::new(3, 3);
        let mut l = Lattice::filled(d, 0);
        l.set(d.site_at(0, 0), 5);
        assert_eq!(l.get_rel(d.site_at(2, 0), Offset::new(1, 0)), 5);
        assert_eq!(l.get_rel(d.site_at(0, 2), Offset::new(0, 1)), 5);
    }

    #[test]
    fn histogram_counts_everything() {
        let d = Dims::new(2, 2);
        let l = Lattice::from_cells(d, vec![0, 1, 1, 2]);
        assert_eq!(l.histogram(3), vec![1, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn histogram_rejects_out_of_range_state() {
        let d = Dims::new(2, 1);
        let l = Lattice::from_cells(d, vec![0, 5]);
        l.histogram(3);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_cells_length_mismatch_panics() {
        Lattice::from_cells(Dims::new(2, 2), vec![0; 3]);
    }

    #[test]
    fn sites_in_state_finds_all() {
        let d = Dims::new(3, 1);
        let l = Lattice::from_cells(d, vec![1, 0, 1]);
        assert_eq!(l.sites_in_state(1), vec![Site(0), Site(2)]);
        assert_eq!(l.sites_in_state(0), vec![Site(1)]);
        assert!(l.sites_in_state(9).is_empty());
    }

    #[test]
    fn fill_overwrites() {
        let mut l = Lattice::from_cells(Dims::new(2, 1), vec![1, 2]);
        l.fill(3);
        assert_eq!(l.count(3), 2);
    }

    #[test]
    fn iter_sites_in_state_matches_vec_variant() {
        let d = Dims::new(4, 2);
        let l = Lattice::from_cells(d, vec![1, 0, 1, 2, 1, 0, 0, 1]);
        for state in 0..3 {
            assert_eq!(
                l.iter_sites_in_state(state).collect::<Vec<_>>(),
                l.sites_in_state(state)
            );
        }
    }

    #[test]
    fn histogram_into_reuses_buffer() {
        let d = Dims::new(2, 2);
        let l = Lattice::from_cells(d, vec![0, 1, 1, 2]);
        let mut buf = vec![9usize; 3];
        l.histogram_into(&mut buf);
        assert_eq!(buf, vec![1, 2, 1]);
    }

    #[test]
    fn lattice_translate_matches_dims_translate() {
        let d = Dims::new(5, 3);
        let l = Lattice::filled(d, 0);
        for s in d.iter_sites() {
            for o in [
                Offset::ZERO,
                Offset::new(1, 0),
                Offset::new(-4, 4),
                Offset::new(7, -9), // beyond the wrap-table radius
            ] {
                assert_eq!(l.translate(s, o), d.translate(s, o));
            }
        }
    }

    #[test]
    fn equality_ignores_wrap_tables() {
        let d = Dims::new(3, 3);
        assert_eq!(Lattice::filled(d, 1), Lattice::from_cells(d, vec![1; 9]));
        assert_ne!(Lattice::filled(d, 1), Lattice::filled(d, 0));
        assert_ne!(
            Lattice::filled(Dims::new(9, 1), 1),
            Lattice::filled(Dims::new(1, 9), 1)
        );
    }

    #[test]
    fn iter_visits_in_row_major_order() {
        let d = Dims::new(2, 2);
        let l = Lattice::from_cells(d, vec![9, 8, 7, 6]);
        let collected: Vec<(u32, State)> = l.iter().map(|(s, v)| (s.0, v)).collect();
        assert_eq!(collected, vec![(0, 9), (1, 8), (2, 7), (3, 6)]);
    }
}
