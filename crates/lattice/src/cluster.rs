//! Connected-component (island) analysis.
//!
//! ZGB-type models develop islands of adsorbed CO and O; cluster statistics
//! are a standard morphological observable and are used by the
//! `zgb_phase_diagram` example to illustrate the poisoned phases. Components
//! are computed with a union-find over 4-connected (von Neumann) same-state
//! neighbors, respecting periodic boundaries.

use crate::geometry::{Offset, Site};
use crate::lattice::{Lattice, State};

/// Union-find with path halving and union by size.
#[derive(Clone, Debug)]
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
    }
}

/// Connected components of same-state sites (4-connectivity, periodic).
#[derive(Clone, Debug)]
pub struct Clusters {
    /// Component label per site (dense, arbitrary ids).
    labels: Vec<u32>,
    /// Size of each component, indexed by label.
    sizes: Vec<usize>,
    /// State of each component.
    states: Vec<State>,
}

impl Clusters {
    /// Label all connected components of `lattice`.
    pub fn find(lattice: &Lattice) -> Self {
        let dims = lattice.dims();
        let n = lattice.len();
        let mut uf = UnionFind::new(n);
        let right = Offset::new(1, 0);
        let down = Offset::new(0, 1);
        for (site, state) in lattice.iter() {
            for off in [right, down] {
                let nb = dims.translate(site, off);
                if lattice.get(nb) == state {
                    uf.union(site.0, nb.0);
                }
            }
        }
        // Compact root ids into dense labels.
        let mut root_to_label = vec![u32::MAX; n];
        let mut labels = vec![0u32; n];
        let mut sizes = Vec::new();
        let mut states = Vec::new();
        for i in 0..n as u32 {
            let root = uf.find(i);
            let label = if root_to_label[root as usize] == u32::MAX {
                let l = sizes.len() as u32;
                root_to_label[root as usize] = l;
                sizes.push(0);
                states.push(lattice.get(Site(root)));
                l
            } else {
                root_to_label[root as usize]
            };
            labels[i as usize] = label;
            sizes[label as usize] += 1;
        }
        Clusters {
            labels,
            sizes,
            states,
        }
    }

    /// Component label of a site.
    pub fn label(&self, site: Site) -> u32 {
        self.labels[site.0 as usize]
    }

    /// Number of components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Size of the component with `label`.
    pub fn size(&self, label: u32) -> usize {
        self.sizes[label as usize]
    }

    /// State shared by all sites of the component with `label`.
    pub fn state(&self, label: u32) -> State {
        self.states[label as usize]
    }

    /// Summary statistics for components of one state.
    pub fn stats_for(&self, state: State) -> ClusterStats {
        let sizes: Vec<usize> = self
            .sizes
            .iter()
            .zip(&self.states)
            .filter(|&(_, &s)| s == state)
            .map(|(&sz, _)| sz)
            .collect();
        ClusterStats::from_sizes(&sizes)
    }
}

/// Island-size summary for one state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterStats {
    /// Number of islands.
    pub count: usize,
    /// Largest island size (0 if none).
    pub largest: usize,
    /// Mean island size (0.0 if none).
    pub mean_size: f64,
}

impl ClusterStats {
    fn from_sizes(sizes: &[usize]) -> Self {
        if sizes.is_empty() {
            return ClusterStats {
                count: 0,
                largest: 0,
                mean_size: 0.0,
            };
        }
        ClusterStats {
            count: sizes.len(),
            largest: *sizes.iter().max().expect("non-empty"),
            mean_size: sizes.iter().sum::<usize>() as f64 / sizes.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Dims;

    #[test]
    fn uniform_lattice_is_one_cluster() {
        let l = Lattice::filled(Dims::new(5, 5), 1);
        let c = Clusters::find(&l);
        assert_eq!(c.count(), 1);
        assert_eq!(c.size(0), 25);
        assert_eq!(c.state(0), 1);
    }

    #[test]
    fn checkerboard_on_even_lattice() {
        // On an even-sized torus, a checkerboard has no same-state
        // 4-neighbors, so every site is its own cluster.
        let d = Dims::new(4, 4);
        let cells: Vec<u8> = (0..16).map(|i| (((i % 4) + (i / 4)) % 2) as u8).collect();
        let l = Lattice::from_cells(d, cells);
        let c = Clusters::find(&l);
        assert_eq!(c.count(), 16);
    }

    #[test]
    fn wrapping_joins_components() {
        // A single row of 1s wraps into one ring cluster.
        let d = Dims::new(4, 3);
        let mut l = Lattice::filled(d, 0);
        for x in 0..4 {
            l.set(d.site_at(x, 1), 1);
        }
        let c = Clusters::find(&l);
        let stats = c.stats_for(1);
        assert_eq!(stats.count, 1);
        assert_eq!(stats.largest, 4);
    }

    #[test]
    fn separate_islands_counted() {
        let d = Dims::new(7, 1);
        // 1 1 0 1 0 1 1  -> islands {0,1},{3},{5,6} but 5,6 wraps to 0,1: one island of 4.
        let l = Lattice::from_cells(d, vec![1, 1, 0, 1, 0, 1, 1]);
        let c = Clusters::find(&l);
        let stats = c.stats_for(1);
        assert_eq!(stats.count, 2);
        assert_eq!(stats.largest, 4);
        assert!((stats.mean_size - 2.5).abs() < 1e-12);
    }

    #[test]
    fn stats_for_absent_state() {
        let l = Lattice::filled(Dims::new(3, 3), 0);
        let c = Clusters::find(&l);
        let stats = c.stats_for(7);
        assert_eq!(stats.count, 0);
        assert_eq!(stats.largest, 0);
        assert_eq!(stats.mean_size, 0.0);
    }

    #[test]
    fn labels_are_consistent() {
        let d = Dims::new(6, 6);
        let mut l = Lattice::filled(d, 0);
        l.set(d.site_at(2, 2), 1);
        l.set(d.site_at(2, 3), 1);
        let c = Clusters::find(&l);
        assert_eq!(c.label(d.site_at(2, 2)), c.label(d.site_at(2, 3)));
        assert_ne!(c.label(d.site_at(2, 2)), c.label(d.site_at(0, 0)));
    }
}
