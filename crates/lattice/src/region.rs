//! Rectangular regions and tilings.
//!
//! Block Cellular Automata (paper §5, Fig 3) and the Segers domain
//! decomposition (paper §3) both carve the lattice into rectangular blocks.
//! A [`Region`] is an axis-aligned rectangle on the torus; [`Region::tile`]
//! produces a non-overlapping cover of the whole lattice.

use crate::geometry::{Dims, Site};

/// An axis-aligned rectangle of sites, anchored at `(x0, y0)` (wrapped).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    /// Left column (may exceed lattice width; wrapped on materialisation).
    pub x0: i64,
    /// Top row.
    pub y0: i64,
    /// Width in sites.
    pub w: u32,
    /// Height in sites.
    pub h: u32,
}

impl Region {
    /// Create a region.
    ///
    /// # Panics
    ///
    /// Panics if width or height is zero.
    pub fn new(x0: i64, y0: i64, w: u32, h: u32) -> Self {
        assert!(w > 0 && h > 0, "region dimensions must be positive");
        Region { x0, y0, w, h }
    }

    /// Number of sites in the region.
    pub fn area(&self) -> u64 {
        self.w as u64 * self.h as u64
    }

    /// Number of sites on the boundary (perimeter cells).
    ///
    /// The volume/boundary ratio governs communication cost in the Segers
    /// domain-decomposition approach (paper §3).
    pub fn boundary_sites(&self) -> u64 {
        if self.w <= 2 || self.h <= 2 {
            self.area()
        } else {
            self.area() - (self.w as u64 - 2) * (self.h as u64 - 2)
        }
    }

    /// Volume-to-boundary ratio.
    pub fn volume_boundary_ratio(&self) -> f64 {
        self.area() as f64 / self.boundary_sites() as f64
    }

    /// Materialise the (wrapped) sites of the region, row-major.
    pub fn sites(&self, dims: Dims) -> Vec<Site> {
        let mut out = Vec::with_capacity(self.area() as usize);
        for dy in 0..self.h as i64 {
            for dx in 0..self.w as i64 {
                out.push(dims.site_at(self.x0 + dx, self.y0 + dy));
            }
        }
        out
    }

    /// Tile `dims` with `bw × bh` blocks starting at offset `(ox, oy)`.
    ///
    /// With a nonzero offset this produces the *shifted* block grid used by
    /// BCAs between steps (paper Fig 3). Blocks at the seam wrap around the
    /// torus. The tiling is exact when `bw` divides the width and `bh` the
    /// height; otherwise the rightmost/bottom blocks are clipped.
    pub fn tile(dims: Dims, bw: u32, bh: u32, ox: i64, oy: i64) -> Vec<Region> {
        assert!(bw > 0 && bh > 0, "block dimensions must be positive");
        let mut blocks = Vec::new();
        let mut y = 0;
        while y < dims.height() {
            let h = bh.min(dims.height() - y);
            let mut x = 0;
            while x < dims.width() {
                let w = bw.min(dims.width() - x);
                blocks.push(Region::new(x as i64 + ox, y as i64 + oy, w, h));
                x += bw;
            }
            y += bh;
        }
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_boundary() {
        let r = Region::new(0, 0, 4, 4);
        assert_eq!(r.area(), 16);
        assert_eq!(r.boundary_sites(), 12);
        assert!((r.volume_boundary_ratio() - 16.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn thin_region_is_all_boundary() {
        let r = Region::new(0, 0, 10, 2);
        assert_eq!(r.boundary_sites(), 20);
        let r1 = Region::new(0, 0, 1, 7);
        assert_eq!(r1.boundary_sites(), 7);
    }

    #[test]
    fn sites_wrap() {
        let d = Dims::new(4, 4);
        let r = Region::new(3, 3, 2, 2);
        let sites = r.sites(d);
        assert_eq!(sites.len(), 4);
        assert!(sites.contains(&d.site_at(3, 3)));
        assert!(sites.contains(&d.site_at(0, 0)));
    }

    #[test]
    fn exact_tiling_covers_without_overlap() {
        let d = Dims::new(9, 6);
        let blocks = Region::tile(d, 3, 3, 0, 0);
        assert_eq!(blocks.len(), 6);
        let mut seen = vec![false; d.sites() as usize];
        for b in &blocks {
            for s in b.sites(d) {
                assert!(!seen[s.0 as usize], "site {} covered twice", s.0);
                seen[s.0 as usize] = true;
            }
        }
        assert!(seen.iter().all(|&v| v));
    }

    #[test]
    fn shifted_tiling_still_covers() {
        // The BCA shift (paper Fig 3): same blocks, offset by 1 — on the
        // torus the cover is still exact and disjoint.
        let d = Dims::new(9, 9);
        let blocks = Region::tile(d, 3, 3, 1, 1);
        let mut seen = vec![false; d.sites() as usize];
        for b in &blocks {
            for s in b.sites(d) {
                assert!(!seen[s.0 as usize]);
                seen[s.0 as usize] = true;
            }
        }
        assert!(seen.iter().all(|&v| v));
    }

    #[test]
    fn clipped_tiling_covers() {
        let d = Dims::new(7, 5);
        let blocks = Region::tile(d, 3, 2, 0, 0);
        let total: u64 = blocks.iter().map(|b| b.area()).sum();
        assert_eq!(total, 35);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_region_panics() {
        Region::new(0, 0, 0, 3);
    }
}
