//! Strength-reduced torus translation via precomputed wrap tables.
//!
//! [`Dims::translate`](crate::geometry::Dims::translate) pays three integer
//! divisions per call (one to split the flat site index into coordinates,
//! two `rem_euclid` to wrap them). Pattern matching and neighbor-table
//! construction perform millions of translations with *small* offsets, for
//! which the wrapped coordinate can be read from a table instead: for every
//! raw coordinate `x + dx` with `|dx| ≤ radius` the wrapped column is
//! `x_wrap[x + dx + radius]`, and likewise for rows — with the row table
//! pre-multiplied by the lattice width so the translated site index is a
//! plain sum of two table loads.
//!
//! Offsets beyond the table radius fall back to the exact `Dims` arithmetic,
//! so a [`WrapTables`] is correct for *any* offset and merely fastest for
//! the common small ones.

use crate::geometry::{Dims, Offset, Site};

/// Precomputed wrapped row/column lookup tables for one lattice geometry.
#[derive(Clone, Debug)]
pub struct WrapTables {
    dims: Dims,
    radius: i32,
    /// `x_wrap[x + radius + dx]` = wrapped column of `x + dx`, for
    /// `x ∈ [0, w)` and `|dx| ≤ radius`.
    x_wrap: Vec<u32>,
    /// `y_wrap[y + radius + dy]` = wrapped row of `y + dy`, **pre-multiplied
    /// by the width** so it is directly the row base of the flat index.
    y_wrap: Vec<u32>,
}

impl WrapTables {
    /// Build tables covering displacements up to `radius` per axis.
    pub fn new(dims: Dims, radius: u32) -> Self {
        let w = dims.width();
        let h = dims.height();
        let r = radius as i64;
        let x_wrap = (-r..w as i64 + r)
            .map(|x| x.rem_euclid(w as i64) as u32)
            .collect();
        let y_wrap = (-r..h as i64 + r)
            .map(|y| y.rem_euclid(h as i64) as u32 * w)
            .collect();
        WrapTables {
            dims,
            radius: radius as i32,
            x_wrap,
            y_wrap,
        }
    }

    /// The geometry the tables were built for.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Largest per-axis displacement served from the tables.
    pub fn radius(&self) -> u32 {
        self.radius as u32
    }

    /// True if `offset` is within the table radius on both axes.
    #[inline]
    pub fn covers(&self, offset: Offset) -> bool {
        offset.dx.abs() <= self.radius && offset.dy.abs() <= self.radius
    }

    /// Translate wrapped coordinates `(x, y)` by `offset` (must be covered).
    ///
    /// No division: two table loads and an add. Callers that sweep the
    /// lattice row-major can carry `(x, y)` along and skip the index split
    /// entirely.
    #[inline]
    pub fn translate_xy(&self, x: u32, y: u32, offset: Offset) -> Site {
        debug_assert!(self.covers(offset), "offset {offset:?} outside tables");
        let col = self.x_wrap[(x as i32 + self.radius + offset.dx) as usize];
        let row = self.y_wrap[(y as i32 + self.radius + offset.dy) as usize];
        Site(row + col)
    }

    /// Translate `site` by `offset` with periodic wrapping.
    ///
    /// One division (splitting the flat index) instead of three; offsets
    /// outside the table radius take the exact [`Dims::translate`] path.
    #[inline]
    pub fn translate(&self, site: Site, offset: Offset) -> Site {
        if !self.covers(offset) {
            return self.dims.translate(site, offset);
        }
        let w = self.dims.width();
        self.translate_xy(site.0 % w, site.0 / w, offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agrees_with_dims_translate_inside_radius() {
        let dims = Dims::new(7, 5);
        let wrap = WrapTables::new(dims, 3);
        for site in dims.iter_sites() {
            for dx in -3..=3 {
                for dy in -3..=3 {
                    let o = Offset::new(dx, dy);
                    assert_eq!(
                        wrap.translate(site, o),
                        dims.translate(site, o),
                        "site {site:?} offset {o:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn falls_back_beyond_radius() {
        let dims = Dims::new(9, 4);
        let wrap = WrapTables::new(dims, 2);
        let big = Offset::new(-13, 7);
        assert!(!wrap.covers(big));
        for site in dims.iter_sites() {
            assert_eq!(wrap.translate(site, big), dims.translate(site, big));
        }
    }

    #[test]
    fn translate_xy_matches_translate() {
        let dims = Dims::new(6, 6);
        let wrap = WrapTables::new(dims, 2);
        for y in 0..6 {
            for x in 0..6 {
                let site = dims.site_at(x as i64, y as i64);
                let o = Offset::new(-2, 1);
                assert_eq!(wrap.translate_xy(x, y, o), dims.translate(site, o));
            }
        }
    }

    #[test]
    fn tables_handle_lattices_smaller_than_radius() {
        // 2-wide torus with radius 4: +1 and -1 alias to the same column.
        let dims = Dims::new(2, 2);
        let wrap = WrapTables::new(dims, 4);
        for site in dims.iter_sites() {
            for dx in -4..=4 {
                for dy in -4..=4 {
                    let o = Offset::new(dx, dy);
                    assert_eq!(wrap.translate(site, o), dims.translate(site, o));
                }
            }
        }
    }
}
