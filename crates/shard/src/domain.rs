//! Shard-grid geometry: rectangular worker domains tiled over the torus.
//!
//! A [`ShardGrid`] splits the `W × H` global lattice into `gx × gy` equal
//! rectangles, one per worker, numbered row-major (`id = gy_i · gx + gx_i`).
//! Neighborhood is the full 8-direction Moore stencil on the *grid torus*:
//! with small grids a worker can be its own neighbor (1×1, 1×N) or see the
//! same worker in two directions (2×N). The exchange protocol never relies
//! on neighbor ids being distinct — frames are keyed by the direction they
//! travel, so wraps and self-sends resolve unambiguously.

use psr_lattice::Dims;

/// The eight halo-exchange directions, in protocol order. The array is
/// centrally symmetric so [`opposite`] is an index involution.
pub const DIRS: [(i32, i32); 8] = [
    (-1, -1),
    (0, -1),
    (1, -1),
    (-1, 0),
    (1, 0),
    (-1, 1),
    (0, 1),
    (1, 1),
];

/// Index of the direction opposite to `dir` (sender's send direction →
/// receiver-relative direction of the sender).
pub fn opposite(dir: usize) -> usize {
    7 - dir
}

/// Index of `(dx, dy)` in [`DIRS`].
///
/// # Panics
///
/// Panics when `(dx, dy)` is `(0, 0)` or out of range.
pub fn dir_index(dx: i32, dy: i32) -> usize {
    DIRS.iter()
        .position(|&d| d == (dx, dy))
        .expect("not a halo direction")
}

/// A `gx × gy` grid of rectangular worker domains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardGrid {
    gx: u32,
    gy: u32,
}

impl ShardGrid {
    /// A grid of `gx × gy` workers.
    ///
    /// # Panics
    ///
    /// Panics if either side is zero.
    pub fn new(gx: u32, gy: u32) -> Self {
        assert!(gx > 0 && gy > 0, "shard grid must be non-empty");
        ShardGrid { gx, gy }
    }

    /// Grid width (workers along x).
    pub fn gx(&self) -> u32 {
        self.gx
    }

    /// Grid height (workers along y).
    pub fn gy(&self) -> u32 {
        self.gy
    }

    /// Total worker count.
    pub fn workers(&self) -> u32 {
        self.gx * self.gy
    }

    /// The most square `gx × gy` factorisation of `workers` (gx ≥ gy).
    /// Trajectories are grid-invariant, so the shape only affects the
    /// boundary fraction — squarer is cheaper.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn for_workers(workers: u32) -> Self {
        assert!(workers > 0, "shard grid must be non-empty");
        let mut gy = (workers as f64).sqrt() as u32;
        while !workers.is_multiple_of(gy) {
            gy -= 1;
        }
        ShardGrid::new(workers / gy, gy)
    }

    /// Check that the grid tiles `dims` evenly and every domain is wide
    /// enough for a halo ring of width `radius` (each side strictly larger
    /// than `2 · radius`, the same bound the one-frame-per-direction
    /// exchange needs).
    ///
    /// # Errors
    ///
    /// Describes the first violated condition.
    pub fn check(&self, dims: Dims, radius: u32) -> Result<(), String> {
        if !dims.width().is_multiple_of(self.gx) || !dims.height().is_multiple_of(self.gy) {
            return Err(format!(
                "shard grid {}x{} does not divide lattice {}x{}",
                self.gx,
                self.gy,
                dims.width(),
                dims.height()
            ));
        }
        let bw = dims.width() / self.gx;
        let bh = dims.height() / self.gy;
        if bw <= 2 * radius || bh <= 2 * radius {
            return Err(format!(
                "domains of {bw}x{bh} are too small for interaction radius {radius}"
            ));
        }
        Ok(())
    }

    /// Panicking form of [`check`](Self::check).
    ///
    /// # Panics
    ///
    /// Panics when either condition fails.
    pub fn validate(&self, dims: Dims, radius: u32) {
        if let Err(e) = self.check(dims, radius) {
            panic!("{e}");
        }
    }

    /// The owned rectangle of `worker`: `(x0, y0, w, h)` in global
    /// coordinates.
    pub fn domain_of(&self, dims: Dims, worker: u32) -> (u32, u32, u32, u32) {
        assert!(worker < self.workers(), "worker {worker} out of range");
        let bw = dims.width() / self.gx;
        let bh = dims.height() / self.gy;
        let gx_i = worker % self.gx;
        let gy_i = worker / self.gx;
        (gx_i * bw, gy_i * bh, bw, bh)
    }

    /// The worker in direction `dir` (index into [`DIRS`]) of `worker`,
    /// wrapping on the grid torus.
    pub fn neighbor(&self, worker: u32, dir: usize) -> u32 {
        let (dx, dy) = DIRS[dir];
        let gx_i = (worker % self.gx) as i64;
        let gy_i = (worker / self.gx) as i64;
        let nx = (gx_i + dx as i64).rem_euclid(self.gx as i64) as u32;
        let ny = (gy_i + dy as i64).rem_euclid(self.gy as i64) as u32;
        ny * self.gx + nx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_an_involution_matching_dirs() {
        for (i, &(dx, dy)) in DIRS.iter().enumerate() {
            assert_eq!(DIRS[opposite(i)], (-dx, -dy));
            assert_eq!(opposite(opposite(i)), i);
            assert_eq!(dir_index(dx, dy), i);
        }
    }

    #[test]
    fn domains_tile_the_lattice() {
        let grid = ShardGrid::new(4, 2);
        let dims = Dims::new(40, 20);
        grid.validate(dims, 1);
        let mut covered = vec![false; 800];
        for w in 0..grid.workers() {
            let (x0, y0, bw, bh) = grid.domain_of(dims, w);
            assert_eq!((bw, bh), (10, 10));
            for y in y0..y0 + bh {
                for x in x0..x0 + bw {
                    let i = (y * 40 + x) as usize;
                    assert!(!covered[i], "site covered twice");
                    covered[i] = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn neighbors_wrap_on_the_grid_torus() {
        let grid = ShardGrid::new(2, 2);
        // Worker 0 at (0, 0): east neighbor is 1, west wraps to 1 as well.
        assert_eq!(grid.neighbor(0, dir_index(1, 0)), 1);
        assert_eq!(grid.neighbor(0, dir_index(-1, 0)), 1);
        assert_eq!(grid.neighbor(0, dir_index(0, 1)), 2);
        assert_eq!(grid.neighbor(0, dir_index(1, 1)), 3);
        // 1×1 grid: every direction is a self-loop.
        let solo = ShardGrid::new(1, 1);
        for d in 0..8 {
            assert_eq!(solo.neighbor(0, d), 0);
        }
    }

    #[test]
    fn for_workers_picks_the_squarest_factorisation() {
        for (n, gx, gy) in [
            (1, 1, 1),
            (2, 2, 1),
            (4, 2, 2),
            (6, 3, 2),
            (7, 7, 1),
            (12, 4, 3),
        ] {
            let grid = ShardGrid::for_workers(n);
            assert_eq!((grid.gx(), grid.gy()), (gx, gy), "workers = {n}");
            assert_eq!(grid.workers(), n);
        }
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn uneven_grid_rejected() {
        ShardGrid::new(3, 1).validate(Dims::new(10, 10), 1);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn undersized_domains_rejected() {
        ShardGrid::new(5, 5).validate(Dims::new(10, 10), 1);
    }
}
