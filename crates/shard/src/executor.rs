//! The sharded PNDCA executor: per-worker domains, message-only boundary
//! state, and two interchangeable schedulers.
//!
//! [`ShardedPndca`] splits the lattice over a [`ShardGrid`] of workers and
//! drives the worker phase protocol (see [`crate::worker`]) with one of:
//!
//! - **Inline** — a lockstep loop over the workers inside the calling
//!   thread. Frames still flow as encoded byte messages, so the protocol
//!   exercised is exactly the threaded one, but phases are timed per
//!   worker and the *critical path* (Σ over phases of the slowest worker)
//!   is accumulated — the honest strong-scaling measure on a machine with
//!   fewer cores than workers.
//! - **Threaded** — one OS thread per worker, mpsc channel inboxes, and a
//!   hub (the calling thread) that consumes per-step reports and the final
//!   gather. Workers demux out-of-order frames with a pending map keyed by
//!   `(kind, step, pos, dir, src)`; adjacent workers may drift by at most
//!   one sweep, non-adjacent ones further, and the hub re-orders reports
//!   by step.
//!
//! Both schedulers produce bit-identical trajectories — nothing random
//! depends on scheduling — and both match the shared-lattice
//! [`ParallelPndca`](psr_parallel::ParallelPndca) on the same
//! `(seed, partition)`, which `tests/differential.rs` pins across grids
//! and all four chunk-selection strategies.

use crate::domain::ShardGrid;
use crate::frame::{self, StepReport, KIND_GATHER, KIND_REPORT};
use crate::net::{self, Wire};
use crate::worker::Worker;
use psr_ca::partition::Partition;
use psr_ca::pndca::ChunkSelection;
use psr_dmc::recorder::Recorder;
use psr_dmc::rsm::RunStats;
use psr_dmc::sim::SimState;
use psr_kernel::CompiledModel;
use psr_model::Model;
use psr_parallel::{apply_coverage_deltas, CommStats};
use std::collections::{BTreeMap, HashMap};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the worker phase machines are driven.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleMode {
    /// Lockstep in the calling thread, with per-phase critical-path timing.
    Inline,
    /// One OS thread per worker over mpsc channels.
    Threaded,
    /// One OS *process* per worker over sockets (see [`crate::net`]): the
    /// hub spawns `psr-shard-worker` children, the boundary frames cross
    /// real kernel sockets with per-peer write coalescing, and the
    /// critical path charges measured on-CPU phase times plus the
    /// transport's measured per-exchange latency.
    Socket(Wire),
}

/// Sharded PNDCA over a conflict-free partition and a worker grid.
pub struct ShardedPndca<'m, 'p> {
    model: &'m Model,
    partition: &'p Partition,
    grid: ShardGrid,
    seed: u64,
    selection: ChunkSelection,
    mode: ScheduleMode,
    compiled: Arc<CompiledModel>,
    step: u64,
    comm: CommStats,
    reaction_executed: Vec<u64>,
    critical_seconds: f64,
    recv_timeout: Duration,
    wire_latency: Option<f64>,
}

impl<'m, 'p> ShardedPndca<'m, 'p> {
    /// Build a sharded executor.
    ///
    /// # Panics
    ///
    /// Panics if the partition violates the non-overlap restriction for
    /// `model` (the same precondition as the shared-lattice executor: it
    /// is what makes one sweep's write sets globally disjoint, which the
    /// write-back protocol relies on), if the grid does not evenly tile
    /// the lattice with domains larger than twice the interaction radius,
    /// or if the model cannot be kernel-compiled.
    pub fn new(model: &'m Model, partition: &'p Partition, grid: ShardGrid, seed: u64) -> Self {
        assert!(
            partition.is_valid_for(model),
            "partition violates the non-overlap restriction; \
             sharded execution would race across domain edges"
        );
        grid.validate(partition.dims(), model.interaction_radius());
        let compiled = Arc::new(
            CompiledModel::try_compile(model)
                .expect("sharded executor requires a kernel-compilable model"),
        );
        ShardedPndca {
            model,
            partition,
            grid,
            seed,
            selection: ChunkSelection::InOrder,
            mode: ScheduleMode::Threaded,
            compiled,
            step: 0,
            comm: CommStats::default(),
            reaction_executed: vec![0; model.num_reactions()],
            critical_seconds: 0.0,
            recv_timeout: Duration::from_secs(60),
            wire_latency: None,
        }
    }

    /// Select any of the four §5 chunk-selection strategies.
    pub fn with_selection(mut self, selection: ChunkSelection) -> Self {
        self.selection = selection;
        self
    }

    /// Choose the scheduler (default: [`ScheduleMode::Threaded`]).
    pub fn with_mode(mut self, mode: ScheduleMode) -> Self {
        self.mode = mode;
        self
    }

    /// Deadline for every socket receive (default 60 s): a peer that sends
    /// nothing for this long fails the run instead of hanging it. Fault
    /// tests shorten it; the in-process schedulers ignore it.
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = timeout;
        self
    }

    /// Continue a run at absolute step `step` (checkpoint resume): the
    /// per-step RNG streams are keyed by absolute step, so resuming at the
    /// recorded step reproduces the uninterrupted trajectory.
    pub fn set_start_step(&mut self, step: u64) {
        self.step = step;
    }

    /// Completed steps.
    pub fn steps_done(&self) -> u64 {
        self.step
    }

    /// The worker grid.
    pub fn grid(&self) -> ShardGrid {
        self.grid
    }

    /// Measured communication totals, summed over workers: interior vs
    /// boundary trials plus every frame (and its encoded bytes) that
    /// crossed a worker boundary.
    pub fn comm_stats(&self) -> CommStats {
        self.comm
    }

    /// Executions per reaction type so far (rate observables).
    pub fn reaction_executions(&self) -> &[u64] {
        &self.reaction_executed
    }

    /// Critical path accumulated so far: Σ over phases of the slowest
    /// worker's time — the wall-clock a fully parallel machine would need,
    /// measurable on any host. Inline mode times phases in the calling
    /// thread; socket mode sums the workers' shipped on-CPU phase times
    /// plus the transport's measured per-exchange latency.
    pub fn critical_path_seconds(&self) -> f64 {
        self.critical_seconds
    }

    /// Measured one-way frame latency of the last socket handshake,
    /// seconds — the real per-exchange wire cost the Segers model charges
    /// for. `None` until a socket run has handshaken.
    pub fn wire_latency_seconds(&self) -> Option<f64> {
        self.wire_latency
    }

    /// Run `steps` sharded PNDCA steps, scattering from and gathering back
    /// into `state.lattice`.
    ///
    /// # Panics
    ///
    /// Panics if the socket transport fails (a worker process died or went
    /// silent); use [`try_run_steps`](Self::try_run_steps) to handle that
    /// as an error instead.
    pub fn run_steps(
        &mut self,
        state: &mut SimState,
        steps: u64,
        recorder: Option<&mut Recorder>,
    ) -> RunStats {
        match self.try_run_steps(state, steps, recorder) {
            Ok(stats) => stats,
            Err(e) => panic!("sharded run failed: {e}"),
        }
    }

    /// [`run_steps`](Self::run_steps), with transport failures as errors.
    /// The in-process schedulers cannot fail; the socket transport reports
    /// dead or silent workers here after tearing the fleet down.
    ///
    /// # Errors
    ///
    /// The first worker failure observed: process death, protocol
    /// violation, or a receive deadline expiring.
    pub fn try_run_steps(
        &mut self,
        state: &mut SimState,
        steps: u64,
        mut recorder: Option<&mut Recorder>,
    ) -> Result<RunStats, String> {
        assert_eq!(
            state.lattice.dims(),
            self.partition.dims(),
            "state and partition dimensions differ"
        );
        if let Some(rec) = recorder.as_deref_mut() {
            rec.record(state.time, &state.coverage);
        }
        let build_workers = |exec: &Self, lattice: &psr_lattice::Lattice| -> Vec<Worker<'m>> {
            (0..exec.grid.workers())
                .map(|id| {
                    Worker::new(
                        exec.model,
                        exec.partition,
                        exec.compiled.clone(),
                        lattice,
                        exec.grid,
                        id,
                        exec.seed,
                        exec.selection,
                    )
                })
                .collect()
        };
        let stats = match self.mode {
            ScheduleMode::Inline => {
                let workers = build_workers(self, &state.lattice);
                self.run_inline(workers, state, steps, recorder)
            }
            ScheduleMode::Threaded => {
                let workers = build_workers(self, &state.lattice);
                self.run_threaded(workers, state, steps, recorder)
            }
            ScheduleMode::Socket(wire) => self.run_socket(wire, state, steps, recorder)?,
        };
        state.bump_mutations();
        Ok(stats)
    }

    /// Fold one step's worker reports into the state, stats, and counters.
    fn apply_step_reports(
        &mut self,
        state: &mut SimState,
        reports: &[StepReport],
        stats: &mut RunStats,
        recorder: &mut Option<&mut Recorder>,
    ) {
        let mut deltas = vec![0i64; self.model.species().len()];
        for rep in reports {
            stats.trials += rep.trials;
            stats.executed += rep.executed;
            for (d, rd) in deltas.iter_mut().zip(&rep.deltas) {
                *d += rd;
            }
            for (x, rx) in self
                .reaction_executed
                .iter_mut()
                .zip(&rep.reaction_executed)
            {
                *x += rx;
            }
            self.comm += rep.comm;
        }
        // Workers' own vectors need not balance (boundary reactions split
        // across owners); only the shard-wide sum does, which is what
        // apply_coverage_deltas requires.
        apply_coverage_deltas(&mut state.coverage, &deltas);
        state.time += 1.0 / self.model.total_rate();
        if let Some(rec) = recorder.as_deref_mut() {
            rec.record(state.time, &state.coverage);
        }
    }

    /// Write one worker's gathered owned rectangle into the global lattice.
    fn apply_gather(&self, lattice: &mut psr_lattice::Lattice, src: u32, payload: &[u8]) {
        let dims = lattice.dims();
        let (x0, y0, bw, bh) = self.grid.domain_of(dims, src);
        assert_eq!(payload.len(), (bw * bh) as usize, "torn gather payload");
        let gw = dims.width() as usize;
        for row in 0..bh as usize {
            let dst = (y0 as usize + row) * gw + x0 as usize;
            let src_off = row * bw as usize;
            lattice.cells_mut()[dst..dst + bw as usize]
                .copy_from_slice(&payload[src_off..src_off + bw as usize]);
        }
    }

    fn run_inline(
        &mut self,
        mut workers: Vec<Worker<'m>>,
        state: &mut SimState,
        steps: u64,
        mut recorder: Option<&mut Recorder>,
    ) -> RunStats {
        let mut stats = RunStats::default();
        let m = self.partition.num_chunks();
        let weighted = self.selection == ChunkSelection::WeightedByRates;
        for _ in 0..steps {
            let step = self.step;
            for w in workers.iter_mut() {
                w.begin_step(step);
            }
            let order: Vec<usize> = if weighted {
                Vec::new()
            } else {
                workers[0].chunk_order(step)
            };
            for pos in 0..m as u32 {
                let chunk = if weighted {
                    self.exchange_inline(&mut workers, |w, sink| w.counts_frames(step, pos, sink));
                    let mut chunk = None;
                    let mut max = 0.0f64;
                    for w in workers.iter_mut() {
                        let t = Instant::now();
                        let c = w.weighted_draw();
                        max = max.max(t.elapsed().as_secs_f64());
                        // Every worker summed the same counts and drew from
                        // its own copy of the same stream — any divergence
                        // is a determinism bug.
                        assert_eq!(*chunk.get_or_insert(c), c, "weighted draw diverged");
                    }
                    self.critical_seconds += max;
                    chunk.expect("at least one worker")
                } else {
                    order[pos as usize]
                };
                self.timed_phase(&mut workers, |w| w.sweep(step, pos, chunk));
                self.exchange_inline(&mut workers, |w, sink| w.wb_frames(step, pos, sink));
                self.exchange_inline(&mut workers, |w, sink| w.halo_frames(step, pos, sink));
                self.timed_phase(&mut workers, |w| w.fold());
            }
            let reports: Vec<StepReport> = workers
                .iter_mut()
                .map(|w| {
                    let bytes = w.report_frame(step);
                    let (_, payload) = frame::decode(&bytes);
                    StepReport::decode(payload)
                })
                .collect();
            self.apply_step_reports(state, &reports, &mut stats, &mut recorder);
            self.step += 1;
        }
        for w in &workers {
            let bytes = w.gather_frame(self.step);
            let (header, payload) = frame::decode(&bytes);
            self.apply_gather(&mut state.lattice, header.src, payload);
        }
        stats
    }

    /// One timed lockstep phase: run `f` on every worker, add the slowest
    /// worker's time to the critical path.
    fn timed_phase(&mut self, workers: &mut [Worker<'m>], mut f: impl FnMut(&mut Worker<'m>)) {
        let mut max = 0.0f64;
        for w in workers.iter_mut() {
            let t = Instant::now();
            f(w);
            max = max.max(t.elapsed().as_secs_f64());
        }
        self.critical_seconds += max;
    }

    /// One timed frame exchange: produce every worker's frames, route them
    /// to per-worker inboxes, then let every worker accept its inbox.
    fn exchange_inline(
        &mut self,
        workers: &mut [Worker<'m>],
        mut produce: impl FnMut(&mut Worker<'m>, &mut frame::VecSink),
    ) {
        let p = workers.len();
        let mut inboxes: Vec<Vec<Vec<u8>>> = vec![Vec::new(); p];
        let mut max = 0.0f64;
        for w in workers.iter_mut() {
            let mut sink = frame::VecSink::default();
            let t = Instant::now();
            produce(w, &mut sink);
            max = max.max(t.elapsed().as_secs_f64());
            for (dest, bytes) in sink.0 {
                inboxes[dest as usize].push(bytes);
            }
        }
        self.critical_seconds += max;
        let mut max = 0.0f64;
        for w in workers.iter_mut() {
            let inbox = std::mem::take(&mut inboxes[w.id() as usize]);
            let t = Instant::now();
            for bytes in &inbox {
                w.accept(bytes);
            }
            max = max.max(t.elapsed().as_secs_f64());
        }
        self.critical_seconds += max;
    }

    fn run_threaded(
        &mut self,
        workers: Vec<Worker<'m>>,
        state: &mut SimState,
        steps: u64,
        mut recorder: Option<&mut Recorder>,
    ) -> RunStats {
        let p = workers.len();
        let start = self.step;
        let m = self.partition.num_chunks();
        let weighted = self.selection == ChunkSelection::WeightedByRates;
        let (report_tx, report_rx) = mpsc::channel::<Vec<u8>>();
        let mut txs = Vec::with_capacity(p);
        let mut rxs = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = mpsc::channel::<Vec<u8>>();
            txs.push(tx);
            rxs.push(rx);
        }
        let mut stats = RunStats::default();
        std::thread::scope(|scope| {
            for (worker, rx) in workers.into_iter().zip(rxs) {
                let txs = txs.clone();
                let report_tx = report_tx.clone();
                scope.spawn(move || {
                    worker_thread(worker, rx, txs, report_tx, start, steps, m, weighted, p)
                });
            }
            drop(report_tx);
            drop(txs);
            // Hub: consume reports (re-ordered by step) and the gathers.
            let mut by_step: BTreeMap<u64, Vec<StepReport>> = BTreeMap::new();
            let mut next = start;
            let mut gathers = 0;
            while gathers < p || next < start + steps {
                let bytes = report_rx.recv().expect("a worker died mid-run");
                let (header, payload) = frame::decode(&bytes);
                match header.kind {
                    KIND_REPORT => {
                        let entry = by_step.entry(header.step).or_default();
                        entry.push(StepReport::decode(payload));
                        while by_step.get(&next).is_some_and(|r| r.len() == p) {
                            let reports = by_step.remove(&next).expect("just checked");
                            self.apply_step_reports(state, &reports, &mut stats, &mut recorder);
                            self.step += 1;
                            next += 1;
                        }
                    }
                    KIND_GATHER => {
                        self.apply_gather(&mut state.lattice, header.src, payload);
                        gathers += 1;
                    }
                    kind => panic!("hub cannot accept frame kind {kind}"),
                }
            }
            assert!(by_step.is_empty(), "reports left over past the last step");
        });
        stats
    }

    /// Drive one socket run: spawn the worker fleet, consume its reports
    /// and gathers, account the critical path from the workers' shipped
    /// on-CPU phase times plus the measured per-exchange wire latency.
    fn run_socket(
        &mut self,
        wire: Wire,
        state: &mut SimState,
        steps: u64,
        mut recorder: Option<&mut Recorder>,
    ) -> Result<RunStats, String> {
        let p = self.grid.workers() as usize;
        let m = self.partition.num_chunks();
        let start = self.step;
        let blob = net::config::encode_config(
            self.model,
            self.partition,
            &state.lattice,
            self.grid,
            self.seed,
            self.selection,
            start,
            steps,
            self.recv_timeout.as_millis() as u64,
        );
        let hub = net::hub::Hub::launch(wire, p as u32, &blob, self.recv_timeout)?;
        let latency = hub.latency;
        self.wire_latency = Some(latency);
        // Exchanges per step on the critical path: write-backs and halos
        // per sweep position, plus the counts all-gather when weighted.
        // Flushes to different peers overlap on a parallel machine, so
        // each exchange phase costs one frame latency — none at all when
        // the grid has a single worker (every send is local).
        let weighted = self.selection == ChunkSelection::WeightedByRates;
        let exchanges_per_step = if p > 1 {
            m as f64 * if weighted { 3.0 } else { 2.0 }
        } else {
            0.0
        };
        let mut stats = RunStats::default();
        let mut by_step: BTreeMap<u64, Vec<StepReport>> = BTreeMap::new();
        let mut next = start;
        let mut gathers = 0;
        // A worker whose final gather has arrived may exit and close its
        // connection while slower peers are still reporting; `done` lets
        // the hub treat that EOF as completion rather than failure.
        let mut done = vec![false; p];
        while gathers < p || next < start + steps {
            let bytes = hub.recv(&done)?;
            let (header, payload) = frame::try_decode(&bytes)?;
            match header.kind {
                KIND_REPORT => {
                    let entry = by_step.entry(header.step).or_default();
                    entry.push(StepReport::decode(payload));
                    while by_step.get(&next).is_some_and(|r| r.len() == p) {
                        let reports = by_step.remove(&next).expect("just checked");
                        let slots = reports
                            .iter()
                            .map(|r| r.phase_busy.len())
                            .max()
                            .unwrap_or(0);
                        for s in 0..slots {
                            let worst = reports
                                .iter()
                                .map(|r| r.phase_busy.get(s).copied().unwrap_or(0.0))
                                .fold(0.0, f64::max);
                            self.critical_seconds += worst;
                        }
                        self.critical_seconds += exchanges_per_step * latency;
                        self.apply_step_reports(state, &reports, &mut stats, &mut recorder);
                        self.step += 1;
                        next += 1;
                    }
                }
                KIND_GATHER => {
                    self.apply_gather(&mut state.lattice, header.src, payload);
                    done[header.src as usize] = true;
                    gathers += 1;
                }
                kind => return Err(format!("hub cannot accept frame kind {kind}")),
            }
        }
        if !by_step.is_empty() {
            return Err("reports left over past the last step".into());
        }
        hub.finish()?;
        Ok(stats)
    }
}

/// The body of one threaded worker: the same phase order as the inline
/// scheduler, with channel sends and a pending-map demux on receive.
#[allow(clippy::too_many_arguments)]
fn worker_thread(
    mut worker: Worker<'_>,
    rx: mpsc::Receiver<Vec<u8>>,
    txs: Vec<mpsc::Sender<Vec<u8>>>,
    report_tx: mpsc::Sender<Vec<u8>>,
    start: u64,
    steps: u64,
    num_chunks: usize,
    weighted: bool,
    num_workers: usize,
) {
    let mut pending: HashMap<frame::FrameKey, Vec<u8>> = HashMap::new();
    let mut sink = frame::VecSink::default();
    let send = |txs: &[mpsc::Sender<Vec<u8>>], sink: &mut frame::VecSink| {
        for (dest, bytes) in sink.0.drain(..) {
            txs[dest as usize].send(bytes).expect("peer inbox closed");
        }
    };
    for step in start..start + steps {
        worker.begin_step(step);
        let order: Vec<usize> = if weighted {
            Vec::new()
        } else {
            worker.chunk_order(step)
        };
        for pos in 0..num_chunks as u32 {
            let chunk = if weighted {
                worker.counts_frames(step, pos, &mut sink);
                send(&txs, &mut sink);
                for src in 0..num_workers as u32 {
                    let bytes = recv_keyed(
                        &rx,
                        &mut pending,
                        (frame::KIND_COUNTS, step, pos, frame::NO_DIR, src),
                    );
                    worker.accept(&bytes);
                }
                worker.weighted_draw()
            } else {
                order[pos as usize]
            };
            worker.sweep(step, pos, chunk);
            worker.wb_frames(step, pos, &mut sink);
            send(&txs, &mut sink);
            recv_directional(
                &rx,
                &mut pending,
                &mut worker,
                frame::KIND_WRITEBACK,
                step,
                pos,
            );
            worker.halo_frames(step, pos, &mut sink);
            send(&txs, &mut sink);
            recv_directional(&rx, &mut pending, &mut worker, frame::KIND_HALO, step, pos);
            worker.fold();
        }
        report_tx
            .send(worker.report_frame(step))
            .expect("hub closed");
    }
    report_tx
        .send(worker.gather_frame(start + steps))
        .expect("hub closed");
}

/// Receive-and-accept the eight directional frames of one phase.
fn recv_directional(
    rx: &mpsc::Receiver<Vec<u8>>,
    pending: &mut HashMap<frame::FrameKey, Vec<u8>>,
    worker: &mut Worker<'_>,
    kind: u8,
    step: u64,
    pos: u32,
) {
    for dir in 0..8u8 {
        let src = worker.neighbor(dir as usize);
        let bytes = recv_keyed(rx, pending, (kind, step, pos, dir, src));
        worker.accept(&bytes);
    }
}

/// Blocking receive of the frame with exactly `key`, buffering every other
/// frame that arrives first.
fn recv_keyed(
    rx: &mpsc::Receiver<Vec<u8>>,
    pending: &mut HashMap<frame::FrameKey, Vec<u8>>,
    key: frame::FrameKey,
) -> Vec<u8> {
    if let Some(bytes) = pending.remove(&key) {
        return bytes;
    }
    loop {
        let bytes = rx.recv().expect("peer hung up mid-sweep");
        let (header, _) = frame::decode(&bytes);
        if header.key() == key {
            return bytes;
        }
        let clash = pending.insert(header.key(), bytes);
        assert!(clash.is_none(), "duplicate frame for {:?}", header.key());
    }
}
