//! The wire format of the sharded executor.
//!
//! Everything that crosses a worker boundary is a byte frame: a fixed
//! 22-byte header followed by a kind-specific payload. Workers never share
//! lattice memory — the frames are self-contained and position-keyed, so
//! the in-process channel transport could be swapped for sockets without
//! touching the protocol.
//!
//! Header layout (little-endian):
//!
//! ```text
//! [kind u8][dir u8][src u32][step u64][pos u32][payload_len u32] payload…
//! ```
//!
//! `dir` is the *receiver-relative* direction of the sender (index into
//! [`DIRS`](crate::domain::DIRS), [`NO_DIR`] for undirected frames). Keying
//! receipt by direction instead of source id is what makes torus wraps
//! unambiguous: on a 2×1 grid the same peer is both the east and the west
//! neighbor, but its two frames per sweep carry different `dir` stamps.

use psr_parallel::CommStats;

/// Halo strip: the sender's post-sweep owned border, row-major cell states.
pub const KIND_HALO: u8 = 0;
/// Write-back: `(global_site u32, new_state u8)` entries for reactions the
/// sender executed into cells the receiver owns.
pub const KIND_WRITEBACK: u8 = 1;
/// Propensity counts: the sender's owned per-(chunk, reaction) enabled-site
/// counts, `u32` each, for the weighted chunk draw.
pub const KIND_COUNTS: u8 = 2;
/// Per-step report from a worker to the hub (see [`StepReport`]).
pub const KIND_REPORT: u8 = 3;
/// Final owned-rectangle state from a worker to the hub.
pub const KIND_GATHER: u8 = 4;
/// Socket handshake: worker → hub, payload is the worker's data address.
pub const KIND_HELLO: u8 = 5;
/// Socket handshake: hub → worker, payload is the run configuration blob.
pub const KIND_CONFIG: u8 = 6;
/// Socket handshake: hub → worker, payload is the peer address table.
pub const KIND_PEERS: u8 = 7;
/// Socket latency probe: the hub sends it during the handshake and the
/// worker echoes it back verbatim, giving the hub a measured round-trip
/// time for the exact transport the run will pay per exchange.
pub const KIND_PING: u8 = 8;

/// `dir` stamp of undirected frames (counts, reports, gathers).
pub const NO_DIR: u8 = 0xFF;

/// Encoded header size in bytes.
pub const HEADER_LEN: usize = 22;

/// Upper bound a receiver accepts for `payload_len` — large enough for a
/// full-lattice CONFIG blob at any size this host can simulate, small
/// enough that garbage on the wire cannot trigger a huge allocation.
pub const MAX_PAYLOAD: usize = 1 << 28;

/// Decoded frame header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// Frame kind (`KIND_*`).
    pub kind: u8,
    /// Receiver-relative direction of the sender, or [`NO_DIR`].
    pub dir: u8,
    /// Sending worker id.
    pub src: u32,
    /// Step the frame belongs to.
    pub step: u64,
    /// Sweep position within the step.
    pub pos: u32,
}

/// Demux key: everything a receiver needs to match a frame to the phase
/// waiting for it.
pub type FrameKey = (u8, u64, u32, u8, u32);

impl FrameHeader {
    /// The demux key of this header.
    pub fn key(&self) -> FrameKey {
        (self.kind, self.step, self.pos, self.dir, self.src)
    }
}

/// Append one encoded frame to `out` — the frames-are-self-delimiting
/// property is what lets the socket transport lay many frames back-to-back
/// in one per-peer send buffer and flush them with a single write, with no
/// extra batch framing and no re-copy.
pub fn encode_into(
    out: &mut Vec<u8>,
    kind: u8,
    dir: u8,
    src: u32,
    step: u64,
    pos: u32,
    payload: &[u8],
) {
    out.reserve(HEADER_LEN + payload.len());
    out.push(kind);
    out.push(dir);
    out.extend_from_slice(&src.to_le_bytes());
    out.extend_from_slice(&step.to_le_bytes());
    out.extend_from_slice(&pos.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Encode a frame.
pub fn encode(kind: u8, dir: u8, src: u32, step: u64, pos: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    encode_into(&mut out, kind, dir, src, step, pos, payload);
    out
}

/// Parse a 22-byte header. Returns the header and the declared payload
/// length (unvalidated against [`MAX_PAYLOAD`] — the caller decides).
///
/// # Panics
///
/// Panics if `bytes` is shorter than [`HEADER_LEN`].
pub fn decode_header(bytes: &[u8]) -> (FrameHeader, usize) {
    let header = FrameHeader {
        kind: bytes[0],
        dir: bytes[1],
        src: u32::from_le_bytes(bytes[2..6].try_into().unwrap()),
        step: u64::from_le_bytes(bytes[6..14].try_into().unwrap()),
        pos: u32::from_le_bytes(bytes[14..18].try_into().unwrap()),
    };
    let payload_len = u32::from_le_bytes(bytes[18..22].try_into().unwrap()) as usize;
    (header, payload_len)
}

/// Decode a complete frame without panicking — the socket receive path,
/// where truncation or garbage is an I/O condition, not a protocol bug.
///
/// # Errors
///
/// Describes the structural violation: short header, oversized declared
/// payload, or a buffer length that disagrees with the declared length.
pub fn try_decode(bytes: &[u8]) -> Result<(FrameHeader, &[u8]), String> {
    if bytes.len() < HEADER_LEN {
        return Err(format!(
            "truncated frame header: {} of {HEADER_LEN} bytes",
            bytes.len()
        ));
    }
    let (header, payload_len) = decode_header(bytes);
    if payload_len > MAX_PAYLOAD {
        return Err(format!(
            "declared payload of {payload_len} bytes exceeds the {MAX_PAYLOAD}-byte cap"
        ));
    }
    if bytes.len() != HEADER_LEN + payload_len {
        return Err(format!(
            "frame payload length mismatch: declared {payload_len}, got {}",
            bytes.len() - HEADER_LEN
        ));
    }
    Ok((header, &bytes[HEADER_LEN..]))
}

/// Decode a frame into its header and payload.
///
/// # Panics
///
/// Panics when the buffer is shorter than a header or the payload length
/// does not match — on the in-process transports a frame is never
/// partially delivered, so a mismatch is a protocol bug, not an I/O
/// condition. The socket paths use [`try_decode`] instead.
pub fn decode(bytes: &[u8]) -> (FrameHeader, &[u8]) {
    match try_decode(bytes) {
        Ok(x) => x,
        Err(e) => panic!("{e}"),
    }
}

/// Where a worker's outgoing frames go: the inline scheduler and the
/// threaded workers collect `(dest, bytes)` pairs ([`VecSink`]), the socket
/// worker appends straight into coalesced per-peer send buffers.
pub trait FrameSink {
    /// Deliver one frame addressed to worker `dest`.
    #[allow(clippy::too_many_arguments)]
    fn frame(
        &mut self,
        dest: u32,
        kind: u8,
        dir: u8,
        src: u32,
        step: u64,
        pos: u32,
        payload: &[u8],
    );
}

/// A [`FrameSink`] that encodes each frame into its own owned buffer —
/// the shape the in-process transports route.
#[derive(Default)]
pub struct VecSink(pub Vec<(u32, Vec<u8>)>);

impl FrameSink for VecSink {
    fn frame(
        &mut self,
        dest: u32,
        kind: u8,
        dir: u8,
        src: u32,
        step: u64,
        pos: u32,
        payload: &[u8],
    ) {
        self.0
            .push((dest, encode(kind, dir, src, step, pos, payload)));
    }
}

/// What one worker tells the hub after finishing a step: its share of the
/// step's trials, the coverage it changed on cells *it owns*, per-reaction
/// execution counts (observable rates), the communication it paid, and —
/// on the socket transport — its measured per-phase busy time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StepReport {
    /// Trials this worker ran (its owned sites, every sweep of the step).
    pub trials: u64,
    /// Reactions executed (anchored at this worker's owned sites).
    pub executed: u64,
    /// Net per-species coverage deltas of owned cells. Workers' vectors
    /// only balance to zero *summed over the shard* — boundary reactions
    /// split their writes across owners.
    pub deltas: Vec<i64>,
    /// Executions per reaction type (for rate observables).
    pub reaction_executed: Vec<u64>,
    /// Measured communication of the step.
    pub comm: CommStats,
    /// Per-phase busy seconds of the step (socket workers only; empty on
    /// the in-process transports). Every worker of a run reports the same
    /// number of slots, so the hub can take the per-slot maximum — the
    /// lockstep critical path — without any clock shared across processes.
    pub phase_busy: Vec<f64>,
}

impl StepReport {
    /// An all-zero report for a model with `species` species and
    /// `reactions` reaction types.
    pub fn zeroed(species: usize, reactions: usize) -> Self {
        StepReport {
            trials: 0,
            executed: 0,
            deltas: vec![0; species],
            reaction_executed: vec![0; reactions],
            comm: CommStats::default(),
            phase_busy: Vec::new(),
        }
    }

    /// Encode as a frame payload (self-describing lengths).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            28 + 8 * (self.deltas.len() + self.reaction_executed.len() + 8 + self.phase_busy.len()),
        );
        out.extend_from_slice(&self.trials.to_le_bytes());
        out.extend_from_slice(&self.executed.to_le_bytes());
        out.extend_from_slice(&(self.deltas.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.reaction_executed.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.phase_busy.len() as u32).to_le_bytes());
        for d in &self.deltas {
            out.extend_from_slice(&d.to_le_bytes());
        }
        for r in &self.reaction_executed {
            out.extend_from_slice(&r.to_le_bytes());
        }
        for v in [
            self.comm.local_trials,
            self.comm.boundary_trials,
            self.comm.halo_messages,
            self.comm.halo_bytes,
            self.comm.wire_frames,
            self.comm.wire_bytes,
            self.comm.wire_batches,
            self.comm.wire_flushes,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for b in &self.phase_busy {
            out.extend_from_slice(&b.to_bits().to_le_bytes());
        }
        out
    }

    /// Decode a payload produced by [`encode`](Self::encode).
    ///
    /// # Panics
    ///
    /// Panics on a malformed payload.
    pub fn decode(payload: &[u8]) -> Self {
        let trials = u64::from_le_bytes(payload[0..8].try_into().unwrap());
        let executed = u64::from_le_bytes(payload[8..16].try_into().unwrap());
        let species = u32::from_le_bytes(payload[16..20].try_into().unwrap()) as usize;
        let reactions = u32::from_le_bytes(payload[20..24].try_into().unwrap()) as usize;
        let slots = u32::from_le_bytes(payload[24..28].try_into().unwrap()) as usize;
        assert_eq!(
            payload.len(),
            28 + 8 * (species + reactions + 8 + slots),
            "report payload length mismatch"
        );
        let mut at = 28;
        let mut read_u64 = |payload: &[u8]| {
            let v = u64::from_le_bytes(payload[at..at + 8].try_into().unwrap());
            at += 8;
            v
        };
        let deltas = (0..species).map(|_| read_u64(payload) as i64).collect();
        let reaction_executed = (0..reactions).map(|_| read_u64(payload)).collect();
        let comm = CommStats {
            local_trials: read_u64(payload),
            boundary_trials: read_u64(payload),
            halo_messages: read_u64(payload),
            halo_bytes: read_u64(payload),
            wire_frames: read_u64(payload),
            wire_bytes: read_u64(payload),
            wire_batches: read_u64(payload),
            wire_flushes: read_u64(payload),
        };
        let phase_busy = (0..slots)
            .map(|_| f64::from_bits(read_u64(payload)))
            .collect();
        StepReport {
            trials,
            executed,
            deltas,
            reaction_executed,
            comm,
            phase_busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let payload = vec![1u8, 2, 3, 4, 5];
        let bytes = encode(KIND_HALO, 3, 7, 12345, 2, &payload);
        assert_eq!(bytes.len(), HEADER_LEN + 5);
        let (header, body) = decode(&bytes);
        assert_eq!(
            header,
            FrameHeader {
                kind: KIND_HALO,
                dir: 3,
                src: 7,
                step: 12345,
                pos: 2
            }
        );
        assert_eq!(body, &payload[..]);
        assert_eq!(header.key(), (KIND_HALO, 12345, 2, 3, 7));
    }

    #[test]
    fn empty_payload_roundtrip() {
        let bytes = encode(KIND_WRITEBACK, 0, 0, 0, 0, &[]);
        let (header, body) = decode(&bytes);
        assert_eq!(header.kind, KIND_WRITEBACK);
        assert!(body.is_empty());
    }

    #[test]
    fn report_roundtrip_with_negative_deltas() {
        let report = StepReport {
            trials: 400,
            executed: 123,
            deltas: vec![-5, 3, 2],
            reaction_executed: vec![7, 0, 100, 16],
            comm: CommStats {
                local_trials: 350,
                boundary_trials: 50,
                halo_messages: 16,
                halo_bytes: 2048,
                wire_frames: 16,
                wire_bytes: 2400,
                wire_batches: 3,
                wire_flushes: 8,
            },
            phase_busy: vec![0.25, 1e-9, 0.0],
        };
        let decoded = StepReport::decode(&report.encode());
        assert_eq!(decoded, report);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn truncated_payload_rejected() {
        let bytes = encode(KIND_HALO, 0, 0, 0, 0, &[1, 2, 3]);
        decode(&bytes[..bytes.len() - 1]);
    }
}
