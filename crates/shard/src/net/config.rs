//! The CONFIG blob: everything a worker process needs to rebuild the run.
//!
//! A socket worker shares no memory with the hub, so the handshake ships
//! the complete run definition — model (species names, reactions, rates,
//! transforms), partition (explicit per-chunk site lists, preserving the
//! exact sweep order the determinism contract keys RNG streams by), the
//! full starting lattice, the worker grid, seed, selection, step window,
//! and timeouts. The worker compiles its own kernel and scatters its own
//! [`SubLattice`](psr_lattice::SubLattice) from the blob, exactly as the
//! in-process executors do from shared references — which is why the
//! trajectories stay bit-identical across transports.

use crate::domain::ShardGrid;
use psr_ca::partition::Partition;
use psr_ca::pndca::ChunkSelection;
use psr_lattice::{Dims, Lattice, Offset, Site};
use psr_model::{Model, ReactionType, Species, SpeciesSet, Transform};

/// Stable `u8` tag for each [`ChunkSelection`] variant.
fn selection_tag(selection: ChunkSelection) -> u8 {
    match selection {
        ChunkSelection::InOrder => 0,
        ChunkSelection::RandomOrder => 1,
        ChunkSelection::RandomWithReplacement => 2,
        ChunkSelection::WeightedByRates => 3,
    }
}

fn selection_from_tag(tag: u8) -> Result<ChunkSelection, String> {
    Ok(match tag {
        0 => ChunkSelection::InOrder,
        1 => ChunkSelection::RandomOrder,
        2 => ChunkSelection::RandomWithReplacement,
        3 => ChunkSelection::WeightedByRates,
        other => return Err(format!("unknown chunk selection tag {other}")),
    })
}

const MAGIC: u32 = 0x5053_524E; // "PSRN"
const VERSION: u8 = 1;

/// A decoded CONFIG blob — the worker-side owned copy of the run.
pub struct RunConfig {
    /// Worker grid the lattice is tiled over.
    pub grid: ShardGrid,
    /// Run seed (every RNG stream derives from it).
    pub seed: u64,
    /// Chunk-selection strategy.
    pub selection: ChunkSelection,
    /// Absolute first step of this run window.
    pub start_step: u64,
    /// Number of steps to run.
    pub steps: u64,
    /// Per-receive deadline, milliseconds.
    pub recv_timeout_ms: u64,
    /// The reaction model.
    pub model: Model,
    /// The sweep partition, chunk order preserved exactly.
    pub partition: Partition,
    /// The full starting lattice.
    pub lattice: Lattice,
}

/// Encode a CONFIG blob from the hub's borrowed run state.
#[allow(clippy::too_many_arguments)]
pub fn encode_config(
    model: &Model,
    partition: &Partition,
    lattice: &Lattice,
    grid: ShardGrid,
    seed: u64,
    selection: ChunkSelection,
    start_step: u64,
    steps: u64,
    recv_timeout_ms: u64,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + lattice.len() + 4 * partition.num_sites());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.extend_from_slice(&grid.gx().to_le_bytes());
    out.extend_from_slice(&grid.gy().to_le_bytes());
    out.extend_from_slice(&seed.to_le_bytes());
    out.push(selection_tag(selection));
    out.extend_from_slice(&start_step.to_le_bytes());
    out.extend_from_slice(&steps.to_le_bytes());
    out.extend_from_slice(&recv_timeout_ms.to_le_bytes());
    // Model: species names, then reactions.
    let species = model.species();
    out.extend_from_slice(&(species.len() as u32).to_le_bytes());
    for i in 0..species.len() {
        put_str(&mut out, species.name(Species(i as u8)));
    }
    out.extend_from_slice(&(model.num_reactions() as u32).to_le_bytes());
    for r in model.reactions() {
        put_str(&mut out, r.name());
        out.extend_from_slice(&r.rate().to_bits().to_le_bytes());
        out.extend_from_slice(&(r.transforms().len() as u32).to_le_bytes());
        for t in r.transforms() {
            out.extend_from_slice(&t.offset.dx.to_le_bytes());
            out.extend_from_slice(&t.offset.dy.to_le_bytes());
            out.push(t.src.id());
            out.push(t.tgt.id());
        }
    }
    // Partition: explicit ordered chunk site lists.
    out.extend_from_slice(&(partition.num_chunks() as u32).to_le_bytes());
    for chunk in partition.chunks() {
        out.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
        for site in chunk {
            out.extend_from_slice(&site.0.to_le_bytes());
        }
    }
    // Lattice: dims + raw cells.
    let dims = lattice.dims();
    out.extend_from_slice(&dims.width().to_le_bytes());
    out.extend_from_slice(&dims.height().to_le_bytes());
    out.extend_from_slice(&(lattice.len() as u32).to_le_bytes());
    out.extend_from_slice(lattice.cells());
    out
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked little-endian cursor over a CONFIG blob.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("config blob truncated at byte {}", self.at))?;
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> Result<i32, String> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|e| format!("config string: {e}"))
    }
}

impl RunConfig {
    /// Decode a CONFIG payload.
    ///
    /// # Errors
    ///
    /// Reports the structural violation (truncation, bad magic/version,
    /// unknown tags) without panicking — on the wire this is an I/O
    /// condition, not a protocol bug.
    pub fn decode(bytes: &[u8]) -> Result<RunConfig, String> {
        let mut c = Cursor { bytes, at: 0 };
        if c.u32()? != MAGIC {
            return Err("config blob has wrong magic".into());
        }
        let version = c.u8()?;
        if version != VERSION {
            return Err(format!("config blob version {version}, expected {VERSION}"));
        }
        let grid = ShardGrid::new(c.u32()?, c.u32()?);
        let seed = c.u64()?;
        let selection = selection_from_tag(c.u8()?)?;
        let start_step = c.u64()?;
        let steps = c.u64()?;
        let recv_timeout_ms = c.u64()?;
        let num_species = c.u32()? as usize;
        let mut names = Vec::with_capacity(num_species);
        for _ in 0..num_species {
            names.push(c.str()?);
        }
        let species = SpeciesSet::new(&names);
        let num_reactions = c.u32()? as usize;
        let mut reactions = Vec::with_capacity(num_reactions);
        for _ in 0..num_reactions {
            let name = c.str()?;
            let rate = f64::from_bits(c.u64()?);
            let num_transforms = c.u32()? as usize;
            let mut transforms = Vec::with_capacity(num_transforms);
            for _ in 0..num_transforms {
                let dx = c.i32()?;
                let dy = c.i32()?;
                let src = Species(c.u8()?);
                let tgt = Species(c.u8()?);
                transforms.push(Transform {
                    offset: Offset { dx, dy },
                    src,
                    tgt,
                });
            }
            reactions.push(ReactionType::new(name, transforms, rate));
        }
        let model = Model::new(species, reactions);
        let num_chunks = c.u32()? as usize;
        let mut chunks = Vec::with_capacity(num_chunks);
        for _ in 0..num_chunks {
            let len = c.u32()? as usize;
            let mut sites = Vec::with_capacity(len);
            for _ in 0..len {
                sites.push(Site(c.u32()?));
            }
            chunks.push(sites);
        }
        let dims = Dims::new(c.u32()?, c.u32()?);
        let num_cells = c.u32()? as usize;
        let cells = c.take(num_cells)?.to_vec();
        if c.at != bytes.len() {
            return Err(format!(
                "config blob has {} trailing bytes",
                bytes.len() - c.at
            ));
        }
        let partition = Partition::new(dims, chunks);
        let lattice = Lattice::from_cells(dims, cells);
        Ok(RunConfig {
            grid,
            seed,
            selection,
            start_step,
            steps,
            recv_timeout_ms,
            model,
            partition,
            lattice,
        })
    }
}

/// Encode the PEERS payload: the data address of every worker, id order.
pub fn encode_peers(addrs: &[String]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(addrs.len() as u32).to_le_bytes());
    for a in addrs {
        put_str(&mut out, a);
    }
    out
}

/// Decode a PEERS payload.
///
/// # Errors
///
/// Reports truncation or malformed strings.
pub fn decode_peers(bytes: &[u8]) -> Result<Vec<String>, String> {
    let mut c = Cursor { bytes, at: 0 };
    let n = c.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(c.str()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_ca::partition_builder::five_coloring;
    use psr_model::library::zgb::zgb_ziff;

    #[test]
    fn config_roundtrip_preserves_the_run() {
        let model = zgb_ziff(0.515, 3.0);
        let dims = Dims::new(20, 20);
        let partition = five_coloring(dims);
        let mut lattice = Lattice::filled(dims, 0);
        for i in 0..lattice.len() {
            lattice.cells_mut()[i] = (i % 3) as u8;
        }
        let blob = encode_config(
            &model,
            &partition,
            &lattice,
            ShardGrid::new(2, 2),
            42,
            ChunkSelection::WeightedByRates,
            7,
            100,
            5000,
        );
        let cfg = RunConfig::decode(&blob).expect("roundtrip");
        assert_eq!(cfg.grid.workers(), 4);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.selection, ChunkSelection::WeightedByRates);
        assert_eq!((cfg.start_step, cfg.steps), (7, 100));
        assert_eq!(cfg.recv_timeout_ms, 5000);
        assert_eq!(cfg.model.num_reactions(), model.num_reactions());
        for (a, b) in cfg.model.reactions().iter().zip(model.reactions()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.rate().to_bits(), b.rate().to_bits());
            assert_eq!(a.transforms(), b.transforms());
        }
        assert_eq!(cfg.partition.chunks(), partition.chunks());
        assert_eq!(cfg.lattice.cells(), lattice.cells());
    }

    #[test]
    fn truncated_config_rejected() {
        let model = zgb_ziff(0.515, 3.0);
        let dims = Dims::new(10, 10);
        let partition = five_coloring(dims);
        let lattice = Lattice::filled(dims, 0);
        let blob = encode_config(
            &model,
            &partition,
            &lattice,
            ShardGrid::new(1, 1),
            1,
            ChunkSelection::InOrder,
            0,
            10,
            1000,
        );
        assert!(RunConfig::decode(&blob[..blob.len() - 3]).is_err());
        assert!(RunConfig::decode(&blob[1..]).is_err());
    }

    #[test]
    fn peers_roundtrip() {
        let addrs = vec!["/tmp/a.sock".to_string(), "127.0.0.1:4000".to_string()];
        assert_eq!(decode_peers(&encode_peers(&addrs)).unwrap(), addrs);
    }
}
