//! The hub side of the socket transport: process management, handshake,
//! latency probing, and deadline-bounded teardown.
//!
//! Lifecycle of one socket run:
//!
//! 1. bind a control listener (Unix path or loopback port);
//! 2. spawn one `psr-shard-worker` per shard pointing at it;
//! 3. accept one control connection per worker, read its HELLO (worker
//!    id and data address), ping-pong it to measure the transport's
//!    round-trip time, then send CONFIG and the PEERS table;
//! 4. relay step reports and gathers to the executor through reader
//!    threads, each receive carrying a deadline;
//! 5. tear down: on success, wait for every child to exit cleanly (with a
//!    deadline); on any error, kill whatever is still alive. Either way no
//!    orphan processes and no indefinite blocking survive this struct.

use super::{read_frame, write_frame, Conn, Listener, Wire};
use crate::frame::{self, KIND_HELLO, KIND_PING, NO_DIR};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// How long the whole spawn-and-handshake sequence may take.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(30);
/// Ping-pong rounds per worker for the latency estimate.
const PING_ROUNDS: u32 = 16;

static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// Locate the `psr-shard-worker` binary: the `PSR_SHARD_WORKER` override,
/// else next to the current executable (tests run from `target/*/deps/`,
/// one level below the bin).
fn worker_binary() -> Result<PathBuf, String> {
    if let Ok(path) = std::env::var("PSR_SHARD_WORKER") {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Ok(path);
        }
        return Err(format!("PSR_SHARD_WORKER={} is not a file", path.display()));
    }
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    for dir in exe.ancestors().skip(1).take(3) {
        let candidate = dir.join("psr-shard-worker");
        if candidate.is_file() {
            return Ok(candidate);
        }
    }
    Err(
        "psr-shard-worker binary not found near the current executable \
         (set PSR_SHARD_WORKER to override)"
            .to_string(),
    )
}

/// A live fleet of worker processes, handshaken and ready to run.
pub(crate) struct Hub {
    children: Vec<Option<Child>>,
    conns: Vec<Conn>,
    rx: mpsc::Receiver<(u32, Result<Vec<u8>, String>)>,
    /// Measured one-way frame latency of this transport, seconds (the
    /// minimum handshake ping-pong round trip, halved).
    pub(crate) latency: f64,
    dir: Option<PathBuf>,
    recv_timeout: Duration,
}

impl Hub {
    /// Spawn and handshake `workers` processes over `wire`. `config` is
    /// the CONFIG blob every worker receives verbatim.
    pub(crate) fn launch(
        wire: Wire,
        workers: u32,
        config: &[u8],
        recv_timeout: Duration,
    ) -> Result<Hub, String> {
        let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
        let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("psr-net-{}-{seq}", std::process::id()));
        std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        let mut hub = Hub {
            children: Vec::new(),
            conns: Vec::new(),
            rx: mpsc::channel().1,
            latency: 0.0,
            dir: Some(dir.clone()),
            recv_timeout,
        };
        let (listener, hub_addr) = Listener::bind(wire, &dir, "hub")?;
        let bin = worker_binary()?;
        for id in 0..workers {
            let child = Command::new(&bin)
                .arg("--wire")
                .arg(wire.token())
                .arg("--hub")
                .arg(&hub_addr)
                .arg("--id")
                .arg(id.to_string())
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .spawn()
                .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
            hub.children.push(Some(child));
        }
        // Accept every worker's control connection and read its HELLO.
        // Arrival order is arbitrary; index by the id the HELLO carries.
        let mut conns: Vec<Option<Conn>> = (0..workers).map(|_| None).collect();
        let mut addrs: Vec<String> = vec![String::new(); workers as usize];
        for _ in 0..workers {
            let mut conn = listener.accept_deadline(deadline)?;
            conn.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
            let bytes = read_frame(&mut conn)?;
            let (header, payload) = frame::try_decode(&bytes)?;
            if header.kind != KIND_HELLO || header.src >= workers {
                return Err(format!(
                    "bad hello (kind {}, src {})",
                    header.kind, header.src
                ));
            }
            addrs[header.src as usize] = String::from_utf8_lossy(payload).into_owned();
            if conns[header.src as usize].replace(conn).is_some() {
                return Err(format!("duplicate hello from worker {}", header.src));
            }
        }
        let mut conns: Vec<Conn> = conns
            .into_iter()
            .map(|c| c.expect("all accepted"))
            .collect();
        // Measure the transport's round-trip latency on each control
        // connection; the minimum round trip is the standard low-noise
        // latency estimate, and half of it is what one frame exchange
        // costs on the critical path.
        let mut min_rtt = f64::INFINITY;
        for (id, conn) in conns.iter_mut().enumerate() {
            for round in 0..PING_ROUNDS {
                let t = Instant::now();
                write_frame(conn, KIND_PING, NO_DIR, id as u32, round as u64, 0, &[])?;
                let echo = read_frame(conn)?;
                let rtt = t.elapsed().as_secs_f64();
                let (header, _) = frame::try_decode(&echo)?;
                if header.kind != KIND_PING || header.step != round as u64 {
                    return Err(format!("bad ping echo from worker {id}"));
                }
                min_rtt = min_rtt.min(rtt);
            }
        }
        hub.latency = min_rtt / 2.0;
        // Ship the run definition and the mesh address table.
        let peers_payload = super::config::encode_peers(&addrs);
        for (id, conn) in conns.iter_mut().enumerate() {
            write_frame(conn, frame::KIND_CONFIG, NO_DIR, id as u32, 0, 0, config)?;
            write_frame(
                conn,
                frame::KIND_PEERS,
                NO_DIR,
                id as u32,
                0,
                0,
                &peers_payload,
            )?;
        }
        // Reader thread per control connection: reports and gathers flow
        // into one channel tagged with the worker id, so any worker's
        // death is observed as an Err on the very next receive.
        let (tx, rx) = mpsc::channel();
        for (id, conn) in conns.iter().enumerate() {
            conn.set_read_timeout(None)?;
            let mut reader = conn.try_clone()?;
            let tx = tx.clone();
            std::thread::spawn(move || loop {
                match read_frame(&mut reader) {
                    Ok(bytes) => {
                        if tx.send((id as u32, Ok(bytes))).is_err() {
                            return;
                        }
                    }
                    Err(e) => {
                        let _ = tx.send((id as u32, Err(e)));
                        return;
                    }
                }
            });
        }
        hub.conns = conns;
        hub.rx = rx;
        Ok(hub)
    }

    /// Receive the next frame from any worker, with the run's deadline.
    /// `done[id]` marks workers whose final gather already arrived: their
    /// EOF is the *expected* clean exit and is skipped, not an error —
    /// fast workers finish and close while slow ones are still reporting.
    ///
    /// # Errors
    ///
    /// A dead or stuck worker: the error names it. The caller is expected
    /// to drop the hub, which kills the remaining fleet.
    pub(crate) fn recv(&self, done: &[bool]) -> Result<Vec<u8>, String> {
        loop {
            let (id, item) = self
                .rx
                .recv_timeout(self.recv_timeout)
                .map_err(|_| "timed out waiting for worker frames".to_string())?;
            match item {
                Ok(bytes) => return Ok(bytes),
                Err(_) if done.get(id as usize).copied().unwrap_or(false) => continue,
                Err(e) => return Err(format!("worker {id} failed: {e}")),
            }
        }
    }

    /// Graceful end of a completed run: every child must exit cleanly
    /// within the deadline. Connections close afterwards, so the workers'
    /// hub-death monitors never fire on a clean run.
    pub(crate) fn finish(mut self) -> Result<(), String> {
        let deadline = Instant::now() + Duration::from_secs(10);
        for (id, slot) in self.children.iter_mut().enumerate() {
            let Some(child) = slot.as_mut() else { continue };
            loop {
                match child.try_wait() {
                    Ok(Some(status)) => {
                        if !status.success() {
                            return Err(format!("worker {id} exited with {status}"));
                        }
                        *slot = None;
                        break;
                    }
                    Ok(None) => {
                        if Instant::now() >= deadline {
                            return Err(format!("worker {id} did not exit after the run"));
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) => return Err(format!("wait for worker {id}: {e}")),
                }
            }
        }
        Ok(())
    }
}

impl Drop for Hub {
    fn drop(&mut self) {
        // Shut the sockets first so reader threads (ours and the workers')
        // unblock with EOF, then reap with prejudice. `finish` has already
        // cleared the slots of cleanly-exited children.
        for conn in &self.conns {
            conn.shutdown();
        }
        for child in self.children.iter_mut().flatten() {
            let _ = child.kill();
            let _ = child.wait();
        }
        if let Some(dir) = self.dir.take() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}
