//! The body of one `psr-shard-worker` process.
//!
//! Mirrors the threaded worker loop in [`crate::executor`] phase for
//! phase — same schedule, same keyed demux, same determinism contract —
//! but with sockets in place of channels:
//!
//! - outgoing frames are appended to *per-peer coalesced send buffers*
//!   ([`SocketSink`]): every frame bound for one peer within one phase
//!   lands back-to-back in a single buffer (frames are self-delimiting)
//!   and is flushed with a single `write`, so an 8-direction exchange
//!   costs at most one syscall per adjacent peer, not one per frame;
//! - incoming frames are read by one reader thread per peer connection
//!   feeding a shared channel, demuxed by the same `(kind, step, pos,
//!   dir, src)` key with a pending map;
//! - phase busy-times are measured with the scheduler's on-CPU clock
//!   ([`super::BusyClock`]) and shipped to the hub in each step report,
//!   so the critical path stays honest on hosts with fewer cores than
//!   workers;
//! - a monitor thread watches the hub control connection and kills the
//!   process the moment the hub goes away — a SIGKILLed hub leaves no
//!   orphan workers.

use super::config::{decode_peers, RunConfig};
use super::{read_frame, write_frame, BusyClock, Conn, Listener, Wire};
use crate::frame::{
    self, FrameKey, FrameSink, KIND_CONFIG, KIND_COUNTS, KIND_HALO, KIND_HELLO, KIND_PEERS,
    KIND_PING, KIND_WRITEBACK, NO_DIR,
};
use crate::worker::Worker;
use psr_ca::pndca::ChunkSelection;
use psr_kernel::CompiledModel;
use psr_parallel::CommStats;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::Path;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// A [`FrameSink`] that coalesces frames into per-peer send buffers.
/// Frames addressed to the worker itself bypass the wire entirely and are
/// delivered straight into the local pending map.
struct SocketSink {
    id: u32,
    bufs: Vec<Vec<u8>>,
    frames_in_buf: Vec<u64>,
    local: Vec<Vec<u8>>,
}

impl SocketSink {
    fn new(id: u32, peers: usize) -> Self {
        SocketSink {
            id,
            bufs: vec![Vec::new(); peers],
            frames_in_buf: vec![0; peers],
            local: Vec::new(),
        }
    }

    /// Flush every non-empty peer buffer with one write each, recording
    /// the wire-level comm stats (frames, bytes, batches, flushes).
    fn flush(&mut self, conns: &mut [Option<Conn>], comm: &mut CommStats) -> Result<(), String> {
        for (peer, buf) in self.bufs.iter_mut().enumerate() {
            if buf.is_empty() {
                continue;
            }
            let conn = conns[peer]
                .as_mut()
                .ok_or_else(|| format!("no connection to peer {peer}"))?;
            conn.write_all(buf)
                .map_err(|e| format!("flush to peer {peer}: {e}"))?;
            comm.wire_flushes += 1;
            comm.wire_frames += self.frames_in_buf[peer];
            comm.wire_bytes += buf.len() as u64;
            if self.frames_in_buf[peer] > 1 {
                comm.wire_batches += 1;
            }
            buf.clear();
            self.frames_in_buf[peer] = 0;
        }
        Ok(())
    }
}

impl FrameSink for SocketSink {
    fn frame(
        &mut self,
        dest: u32,
        kind: u8,
        dir: u8,
        src: u32,
        step: u64,
        pos: u32,
        payload: &[u8],
    ) {
        if dest == self.id {
            self.local
                .push(frame::encode(kind, dir, src, step, pos, payload));
        } else {
            frame::encode_into(
                &mut self.bufs[dest as usize],
                kind,
                dir,
                src,
                step,
                pos,
                payload,
            );
            self.frames_in_buf[dest as usize] += 1;
        }
    }
}

/// Blocking receive of the frame with exactly `key`, buffering every other
/// frame, with a deadline per receive.
///
/// A peer's EOF is not immediately fatal: a fast peer legitimately
/// finishes its last step and exits while its already-sent frames are
/// still queued here (the socket delivers buffered bytes before EOF, and
/// the channel preserves per-peer order). `closed` records such peers;
/// the receive fails only when the frame it needs would have to come from
/// a peer that has already closed — which is prompt for a genuinely dead
/// peer, since its EOF arrives the moment its sockets close.
fn recv_keyed(
    rx: &mpsc::Receiver<(u32, Result<Vec<u8>, String>)>,
    pending: &mut HashMap<FrameKey, Vec<u8>>,
    closed: &mut [bool],
    key: FrameKey,
    timeout: Duration,
) -> Result<Vec<u8>, String> {
    loop {
        if let Some(bytes) = pending.remove(&key) {
            return Ok(bytes);
        }
        let src = key.4 as usize;
        if closed[src] {
            return Err(format!("peer {src} closed before sending frame {key:?}"));
        }
        let (from, item) = rx
            .recv_timeout(timeout)
            .map_err(|_| format!("timed out waiting for frame {key:?}"))?;
        match item {
            Ok(bytes) => {
                let (header, _) = frame::try_decode(&bytes)?;
                if header.key() == key {
                    return Ok(bytes);
                }
                if pending.insert(header.key(), bytes).is_some() {
                    return Err(format!("duplicate frame for {:?}", header.key()));
                }
            }
            Err(e) => {
                // Order within one peer's stream is preserved, so at this
                // point every frame that peer ever sent is in `pending`.
                closed[from as usize] = true;
                if from as usize == key.4 as usize {
                    return Err(format!("peer {from}: {e}"));
                }
            }
        }
    }
}

/// Drain locally-addressed frames into the pending map.
fn deliver_local(
    sink: &mut SocketSink,
    pending: &mut HashMap<FrameKey, Vec<u8>>,
) -> Result<(), String> {
    for bytes in sink.local.drain(..) {
        let (header, _) = frame::try_decode(&bytes)?;
        if pending.insert(header.key(), bytes).is_some() {
            return Err(format!("duplicate local frame for {:?}", header.key()));
        }
    }
    Ok(())
}

/// Parse `PSR_SHARD_FAIL_AT="id:step"` — the deterministic fault hook the
/// kill tests use to make one worker die mid-step.
fn fail_at_from_env() -> Option<(u32, u64)> {
    let v = std::env::var("PSR_SHARD_FAIL_AT").ok()?;
    let (id, step) = v.split_once(':')?;
    Some((id.parse().ok()?, step.parse().ok()?))
}

/// Run the worker process to completion. Returns the process exit code.
pub fn worker_main(wire: Wire, hub_addr: &str, id: u32) -> i32 {
    match run(wire, hub_addr, id) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("psr-shard-worker {id}: {e}");
            1
        }
    }
}

fn run(wire: Wire, hub_addr: &str, id: u32) -> Result<(), String> {
    let handshake_deadline = Instant::now() + Duration::from_secs(30);
    let mut control = Conn::connect(wire, hub_addr, handshake_deadline)?;
    control.set_read_timeout(Some(Duration::from_secs(30)))?;

    // The data listener lives next to the hub's socket (Unix) or on its
    // own ephemeral loopback port (TCP).
    let dir = Path::new(hub_addr).parent().unwrap_or(Path::new("/tmp"));
    let (listener, data_addr) = Listener::bind(wire, dir, &format!("data-{id}"))?;
    write_frame(
        &mut control,
        KIND_HELLO,
        NO_DIR,
        id,
        0,
        0,
        data_addr.as_bytes(),
    )?;

    // Handshake: echo pings, take the config, stop at the peer table.
    let mut cfg: Option<RunConfig> = None;
    let peers = loop {
        let bytes = read_frame(&mut control)?;
        let (header, payload) = frame::try_decode(&bytes)?;
        match header.kind {
            KIND_PING => {
                control
                    .write_all(&bytes)
                    .map_err(|e| format!("ping echo: {e}"))?;
            }
            KIND_CONFIG => cfg = Some(RunConfig::decode(payload)?),
            KIND_PEERS => break decode_peers(payload)?,
            kind => return Err(format!("unexpected handshake frame kind {kind}")),
        }
    };
    let cfg = cfg.ok_or("hub sent PEERS before CONFIG")?;
    let p = cfg.grid.workers();
    if peers.len() != p as usize {
        return Err(format!(
            "peer table has {} entries for {p} workers",
            peers.len()
        ));
    }

    // Full mesh: dial every lower id (identifying ourselves with a HELLO),
    // accept every higher id (reading its HELLO). The counts all-gather
    // needs every pair connected; self-sends never touch the wire.
    let mut conns: Vec<Option<Conn>> = (0..p).map(|_| None).collect();
    for j in 0..id {
        let mut c = Conn::connect(wire, &peers[j as usize], handshake_deadline)?;
        write_frame(&mut c, KIND_HELLO, NO_DIR, id, 0, 0, &[])?;
        conns[j as usize] = Some(c);
    }
    for _ in id + 1..p {
        let mut c = listener.accept_deadline(handshake_deadline)?;
        c.set_read_timeout(Some(Duration::from_secs(30)))?;
        let bytes = read_frame(&mut c)?;
        let (header, _) = frame::try_decode(&bytes)?;
        if header.kind != KIND_HELLO || header.src <= id || header.src >= p {
            return Err(format!("bad mesh hello from worker {}", header.src));
        }
        if conns[header.src as usize].replace(c).is_some() {
            return Err(format!(
                "duplicate mesh connection from worker {}",
                header.src
            ));
        }
    }
    for c in conns.iter().flatten() {
        c.set_read_timeout(None)?;
    }

    // One reader thread per peer connection feeding a shared channel; the
    // demux below re-orders by key. A dead peer surfaces as an Err here
    // the moment its socket closes.
    let (tx, rx) = mpsc::channel::<(u32, Result<Vec<u8>, String>)>();
    for (j, conn) in conns.iter().enumerate() {
        if let Some(conn) = conn {
            let mut reader = conn.try_clone()?;
            let tx = tx.clone();
            std::thread::spawn(move || loop {
                match read_frame(&mut reader) {
                    Ok(bytes) => {
                        if tx.send((j as u32, Ok(bytes))).is_err() {
                            return;
                        }
                    }
                    Err(e) => {
                        let _ = tx.send((j as u32, Err(e)));
                        return;
                    }
                }
            });
        }
    }
    drop(tx);

    // Monitor the hub: the control socket carries nothing hub→worker after
    // the handshake, so a read completing at all means the hub died (or
    // broke protocol) — exit rather than linger as an orphan.
    {
        let mut monitor = control.try_clone()?;
        monitor.set_read_timeout(None).ok();
        std::thread::spawn(move || {
            let _ = read_frame(&mut monitor);
            std::process::exit(2);
        });
    }

    // Rebuild the run exactly as the in-process executors do.
    let compiled = Arc::new(
        CompiledModel::try_compile(&cfg.model)
            .ok_or("model is not kernel-compilable in the worker process")?,
    );
    let mut worker = Worker::new(
        &cfg.model,
        &cfg.partition,
        compiled,
        &cfg.lattice,
        cfg.grid,
        id,
        cfg.seed,
        cfg.selection,
    );
    let m = cfg.partition.num_chunks();
    let weighted = cfg.selection == ChunkSelection::WeightedByRates;
    let recv_timeout = Duration::from_millis(cfg.recv_timeout_ms.max(1));
    let fail_at = fail_at_from_env();

    let clock = BusyClock::new();
    let mut pending: HashMap<FrameKey, Vec<u8>> = HashMap::new();
    let mut closed = vec![false; p as usize];
    let mut sink = SocketSink::new(id, p as usize);
    for step in cfg.start_step..cfg.start_step + cfg.steps {
        worker.begin_step(step);
        let mut wire_comm = CommStats::default();
        let mut phase_busy: Vec<f64> = Vec::with_capacity(m * if weighted { 5 } else { 4 });
        let order: Vec<usize> = if weighted {
            Vec::new()
        } else {
            worker.chunk_order(step)
        };
        for pos in 0..m as u32 {
            let chunk = if weighted {
                let t0 = clock.now();
                worker.counts_frames(step, pos, &mut sink);
                deliver_local(&mut sink, &mut pending)?;
                sink.flush(&mut conns, &mut wire_comm)?;
                for src in 0..p {
                    let bytes = recv_keyed(
                        &rx,
                        &mut pending,
                        &mut closed,
                        (KIND_COUNTS, step, pos, NO_DIR, src),
                        recv_timeout,
                    )?;
                    worker.accept(&bytes);
                }
                let chunk = worker.weighted_draw();
                phase_busy.push(clock.now() - t0);
                chunk
            } else {
                order[pos as usize]
            };
            let t0 = clock.now();
            worker.sweep(step, pos, chunk);
            let t1 = clock.now();
            phase_busy.push(t1 - t0);
            if fail_at == Some((id, step)) && pos == 0 {
                // Fault hook: die mid-step, after sweeping but before the
                // write-back exchange — peers block on this worker's
                // frames and must unblock via EOF, not a timeout.
                std::process::exit(43);
            }
            for kind in [KIND_WRITEBACK, KIND_HALO] {
                let t0 = clock.now();
                if kind == KIND_WRITEBACK {
                    worker.wb_frames(step, pos, &mut sink);
                } else {
                    worker.halo_frames(step, pos, &mut sink);
                }
                deliver_local(&mut sink, &mut pending)?;
                sink.flush(&mut conns, &mut wire_comm)?;
                for dir in 0..8u8 {
                    let src = worker.neighbor(dir as usize);
                    let bytes = recv_keyed(
                        &rx,
                        &mut pending,
                        &mut closed,
                        (kind, step, pos, dir, src),
                        recv_timeout,
                    )?;
                    worker.accept(&bytes);
                }
                phase_busy.push(clock.now() - t0);
            }
            let t0 = clock.now();
            worker.fold();
            phase_busy.push(clock.now() - t0);
        }
        {
            let report = worker.report_mut();
            report.comm += wire_comm;
            report.phase_busy = phase_busy;
        }
        let bytes = worker.report_frame(step);
        control
            .write_all(&bytes)
            .map_err(|e| format!("send report: {e}"))?;
    }
    let bytes = worker.gather_frame(cfg.start_step + cfg.steps);
    control
        .write_all(&bytes)
        .map_err(|e| format!("send gather: {e}"))?;
    Ok(())
}
