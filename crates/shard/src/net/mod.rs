//! Socket transport for the sharded executor: one OS process per worker.
//!
//! The in-process schedulers ([`crate::executor`]) already move every byte
//! of boundary state through self-delimiting frames, so this module only
//! supplies the plumbing to run the identical protocol across process
//! boundaries:
//!
//! - [`Wire`] — Unix-domain or loopback-TCP, selected per run;
//! - a hub ([`hub`]) that spawns one `psr-shard-worker` process per shard,
//!   handshakes (HELLO → PING×N → CONFIG → PEERS), measures the transport's
//!   round-trip latency, and reaps the children with deadlines so a dead
//!   peer fails the run instead of hanging it;
//! - a worker loop ([`worker_proc`]) that rebuilds the model, partition,
//!   and lattice from the CONFIG blob, dials a full peer mesh (counts
//!   frames are an all-gather), and drives the existing phase protocol
//!   with per-peer *coalesced* send buffers: every frame bound for one
//!   peer within one phase is appended to a single buffer
//!   ([`frame::encode_into`]) and flushed with a single write — no
//!   per-frame syscalls, no re-copy, `TCP_NODELAY` on.
//!
//! Failure model: any worker error or death closes its sockets; peers see
//! EOF immediately, abort their own run, and the hub tears the remaining
//! children down with a bounded timeout. Every blocking receive carries a
//! deadline as a backstop against live-but-stuck peers.

pub mod config;
pub mod hub;
pub mod worker_proc;

use crate::frame::{self, HEADER_LEN, MAX_PAYLOAD};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::time::{Duration, Instant};

/// Which socket family carries the frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Wire {
    /// Unix-domain stream sockets in a per-run temp directory.
    Unix,
    /// Loopback TCP (`127.0.0.1`, ephemeral ports, `TCP_NODELAY`).
    Tcp,
}

impl Wire {
    /// Stable command-line token (`--wire <token>`).
    pub fn token(self) -> &'static str {
        match self {
            Wire::Unix => "unix",
            Wire::Tcp => "tcp",
        }
    }

    /// Parse a [`token`](Self::token).
    pub fn parse(s: &str) -> Result<Wire, String> {
        match s {
            "unix" => Ok(Wire::Unix),
            "tcp" => Ok(Wire::Tcp),
            other => Err(format!("unknown wire {other:?} (expected unix|tcp)")),
        }
    }
}

/// One established stream of either family.
pub(crate) enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    /// Connect to `addr` (a path for Unix, `host:port` for TCP), retrying
    /// until `deadline` — the listener always exists before its address is
    /// published, so retries only paper over transient kernel refusals.
    pub(crate) fn connect(wire: Wire, addr: &str, deadline: Instant) -> Result<Conn, String> {
        loop {
            let attempt = match wire {
                Wire::Unix => UnixStream::connect(addr).map(Conn::Unix),
                Wire::Tcp => TcpStream::connect(addr).map(|s| {
                    let _ = s.set_nodelay(true);
                    Conn::Tcp(s)
                }),
            };
            match attempt {
                Ok(conn) => return Ok(conn),
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(format!("connect to {addr}: {e}")),
            }
        }
    }

    /// A second handle onto the same socket (reader thread + writer).
    pub(crate) fn try_clone(&self) -> Result<Conn, String> {
        match self {
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
        }
        .map_err(|e| format!("clone socket: {e}"))
    }

    pub(crate) fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), String> {
        match self {
            Conn::Unix(s) => s.set_read_timeout(timeout),
            Conn::Tcp(s) => s.set_read_timeout(timeout),
        }
        .map_err(|e| format!("set read timeout: {e}"))
    }

    /// Close both directions: pending reads on every clone return EOF.
    pub(crate) fn shutdown(&self) {
        match self {
            Conn::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Conn::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// A bound listener of either family plus its publishable address.
pub(crate) enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    /// Bind a listener. For Unix the socket lives at `dir/name.sock`; for
    /// TCP an ephemeral loopback port is taken and `dir`/`name` ignored.
    /// Returns the listener and the address peers dial.
    pub(crate) fn bind(wire: Wire, dir: &Path, name: &str) -> Result<(Listener, String), String> {
        match wire {
            Wire::Unix => {
                let path = dir.join(format!("{name}.sock"));
                let l = UnixListener::bind(&path)
                    .map_err(|e| format!("bind {}: {e}", path.display()))?;
                Ok((Listener::Unix(l), path.to_string_lossy().into_owned()))
            }
            Wire::Tcp => {
                let l =
                    TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind loopback: {e}"))?;
                let addr = l
                    .local_addr()
                    .map_err(|e| format!("local addr: {e}"))?
                    .to_string();
                Ok((Listener::Tcp(l), addr))
            }
        }
    }

    /// Accept one connection before `deadline` (polling non-blocking
    /// accepts — std listeners have no native accept timeout).
    pub(crate) fn accept_deadline(&self, deadline: Instant) -> Result<Conn, String> {
        let set_nb = |nb: bool| -> io::Result<()> {
            match self {
                Listener::Unix(l) => l.set_nonblocking(nb),
                Listener::Tcp(l) => l.set_nonblocking(nb),
            }
        };
        set_nb(true).map_err(|e| format!("nonblocking accept: {e}"))?;
        loop {
            let accepted = match self {
                Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
                Listener::Tcp(l) => l.accept().map(|(s, _)| {
                    let _ = s.set_nodelay(true);
                    Conn::Tcp(s)
                }),
            };
            match accepted {
                Ok(conn) => {
                    let _ = set_nb(false);
                    match &conn {
                        Conn::Unix(s) => s
                            .set_nonblocking(false)
                            .map_err(|e| format!("blocking stream: {e}"))?,
                        Conn::Tcp(s) => s
                            .set_nonblocking(false)
                            .map_err(|e| format!("blocking stream: {e}"))?,
                    }
                    return Ok(conn);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        let _ = set_nb(false);
                        return Err("accept deadline exceeded".into());
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => {
                    let _ = set_nb(false);
                    return Err(format!("accept: {e}"));
                }
            }
        }
    }
}

/// Write one frame in a single buffered write.
#[allow(clippy::too_many_arguments)]
pub(crate) fn write_frame(
    w: &mut impl Write,
    kind: u8,
    dir: u8,
    src: u32,
    step: u64,
    pos: u32,
    payload: &[u8],
) -> Result<(), String> {
    let bytes = frame::encode(kind, dir, src, step, pos, payload);
    w.write_all(&bytes)
        .map_err(|e| format!("write frame kind {kind}: {e}"))
}

/// Read exactly one frame off the stream: header, declared length (capped
/// at [`MAX_PAYLOAD`]), payload. Returns the full encoded frame so it can
/// be routed by the existing keyed demux unchanged.
pub(crate) fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, String> {
    let mut buf = vec![0u8; HEADER_LEN];
    r.read_exact(&mut buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            "peer closed the connection".to_string()
        } else {
            format!("read frame header: {e}")
        }
    })?;
    let (_, payload_len) = frame::decode_header(&buf);
    if payload_len > MAX_PAYLOAD {
        return Err(format!(
            "declared payload of {payload_len} bytes exceeds the {MAX_PAYLOAD}-byte cap"
        ));
    }
    buf.resize(HEADER_LEN + payload_len, 0);
    r.read_exact(&mut buf[HEADER_LEN..])
        .map_err(|e| format!("read frame payload: {e}"))?;
    Ok(buf)
}

/// Per-thread busy clock for the socket workers' phase timing.
///
/// This host may have fewer cores than workers, so wall-clock phase times
/// would count time spent preempted by sibling worker processes —
/// inflating every phase by roughly the oversubscription factor. The
/// scheduler's own on-CPU accounting (`/proc/thread-self/schedstat`, first
/// field, nanoseconds) charges each thread only for cycles it actually
/// ran, which is exactly the per-worker cost a fully parallel machine
/// would pay. Falls back to wall time where schedstat is unavailable.
pub(crate) struct BusyClock {
    schedstat: Option<std::fs::File>,
    epoch: Instant,
}

impl BusyClock {
    /// A clock for the calling thread (the handle is thread-specific:
    /// `/proc/thread-self` resolves at open time).
    pub(crate) fn new() -> Self {
        BusyClock {
            schedstat: std::fs::File::open("/proc/thread-self/schedstat").ok(),
            epoch: Instant::now(),
        }
    }

    /// Monotonic busy-seconds of this thread.
    pub(crate) fn now(&self) -> f64 {
        if let Some(f) = &self.schedstat {
            use std::os::unix::fs::FileExt;
            let mut buf = [0u8; 64];
            if let Ok(n) = f.read_at(&mut buf, 0) {
                let text = String::from_utf8_lossy(&buf[..n]);
                if let Some(first) = text.split_ascii_whitespace().next() {
                    if let Ok(ns) = first.parse::<u64>() {
                        return ns as f64 * 1e-9;
                    }
                }
            }
        }
        self.epoch.elapsed().as_secs_f64()
    }
}
