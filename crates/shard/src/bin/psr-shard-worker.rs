//! One shard worker process of the socket transport.
//!
//! Spawned by the hub (see `psr_shard::net::hub`), never by hand:
//!
//! ```text
//! psr-shard-worker --wire unix|tcp --hub <address> --id <worker-id>
//! ```
//!
//! Connects to the hub, handshakes (HELLO → CONFIG → PEERS), dials the
//! peer mesh, and runs the shard phase protocol until the step window is
//! done — or exits the moment the hub or any peer goes away.

use psr_shard::net::{worker_proc, Wire};

fn usage() -> ! {
    eprintln!("usage: psr-shard-worker --wire unix|tcp --hub <address> --id <worker-id>");
    std::process::exit(64);
}

fn main() {
    let mut wire = None;
    let mut hub = None;
    let mut id = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--wire" => {
                wire = Some(Wire::parse(&value()).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                }))
            }
            "--hub" => hub = Some(value()),
            "--id" => id = value().parse::<u32>().ok(),
            _ => usage(),
        }
    }
    let (Some(wire), Some(hub), Some(id)) = (wire, hub, id) else {
        usage()
    };
    std::process::exit(worker_proc::worker_main(wire, &hub, id));
}
