//! One shard worker: a halo-padded sub-lattice, its compiled kernel, its
//! owned propensity counts, and the phase methods of the sweep protocol.
//!
//! A worker advances by the same `(step, position, chunk)` schedule as the
//! shared-lattice executor, but only trials anchored at sites it *owns*.
//! Per sweep it runs the phases, in order:
//!
//! 1. **sweep** — one trial per owned site of the chunk, interior strip
//!    first, then the boundary strip. Reads hit the padded lattice (halo
//!    consistent from the end of the previous sweep); writes to owned cells
//!    land immediately, writes into halo cells are *deferred* into
//!    per-direction write-back buffers (the owner applies them — the local
//!    halo copy is refreshed by the owner's strip in phase 3).
//! 2. **write-backs** — send the 8 buffers, apply the 8 received ones to
//!    owned cells. Within one sweep all write sets are globally disjoint
//!    (the partition restriction), so application order is irrelevant and
//!    the pre-write state read while applying is the true old state.
//! 3. **halo strips** — send the now fully up-to-date owned border in all
//!    8 directions, diff-apply the received strips into the halo ring.
//!    After this phase every copy of every global cell agrees again.
//! 4. **fold** — push the sweep's accumulated change journal (own writes,
//!    applied write-backs, halo diffs) through the compiled kernel's code
//!    tables and the owned propensity counts.
//!
//! For `WeightedByRates` chunk selection a counts exchange precedes each
//! sweep: workers all-gather their owned per-(chunk, reaction) enabled-site
//! counts, sum them (integer adds — order-free), and evaluate the *same*
//! count-times-rate weight formula as `ChunkPropensityCache::chunk_weight`,
//! so every worker draws the identical chunk from its private copy of the
//! per-step draw stream.

use crate::domain::{dir_index, opposite, ShardGrid, DIRS};
use crate::frame::{
    self, FrameSink, StepReport, KIND_COUNTS, KIND_GATHER, KIND_HALO, KIND_REPORT, KIND_WRITEBACK,
    NO_DIR,
};
use psr_ca::partition::Partition;
use psr_ca::pndca::ChunkSelection;
use psr_ca::propensity::draw_weighted;
use psr_kernel::{CompiledModel, SiteKernel};
use psr_lattice::{Change, Lattice, Site, SubLattice};
use psr_model::Model;
use psr_parallel::{draw_stream_id, shuffle_stream_id, trial_stream_base};
use psr_rng::{AliasTable, Pcg32, StreamFactory};
use std::sync::Arc;

/// The `(x0, y0, w, h)` rectangle, in padded-local coordinates, that the
/// halo ring occupies toward direction `dir` — where the strip from the
/// neighbor in that direction lands.
fn halo_rect(bw: u32, bh: u32, r: u32, dir: usize) -> (u32, u32, u32, u32) {
    let (dx, dy) = DIRS[dir];
    let (x0, w) = match dx {
        -1 => (0, r),
        0 => (r, bw),
        _ => (r + bw, r),
    };
    let (y0, h) = match dy {
        -1 => (0, r),
        0 => (r, bh),
        _ => (r + bh, r),
    };
    (x0, y0, w, h)
}

/// The `(x0, y0, w, h)` owned border strip, in padded-local coordinates,
/// facing direction `dir` — what gets packed and sent toward that neighbor.
fn border_rect(bw: u32, bh: u32, r: u32, dir: usize) -> (u32, u32, u32, u32) {
    let (dx, dy) = DIRS[dir];
    let (x0, w) = match dx {
        -1 => (r, r),
        0 => (r, bw),
        _ => (bw, r),
    };
    let (y0, h) = match dy {
        -1 => (r, r),
        0 => (r, bh),
        _ => (bh, r),
    };
    (x0, y0, w, h)
}

/// Per-(chunk, reaction) enabled-site counts over this worker's owned
/// sites: the shard-local summand of `ChunkPropensityCache`'s counts.
///
/// Masks are read from the worker's [`SiteKernel`] (only *owned* anchors
/// are ever queried — halo-cell codes may be wrap-corrupted at the padded
/// edge and are never trusted). Summed across workers the counts equal a
/// shared-lattice cache's, and the weight formula is the same
/// count-times-rate loop, so weighted selection stays bit-identical.
struct OwnedCounts {
    rates: Vec<f64>,
    members: usize,
    /// Per padded-local site: enabled-reaction bitmask (owned sites only).
    enabled: Vec<u64>,
    /// Per padded-local site: global chunk id, `u32::MAX` for halo cells.
    chunk_of: Vec<u32>,
    /// `counts[c * members + m]` over owned sites.
    counts: Vec<u32>,
}

impl OwnedCounts {
    fn new(model: &Model, partition: &Partition, sub: &SubLattice, kernel: &SiteKernel) -> Self {
        let members = model.num_reactions();
        let n = sub.lattice().len();
        let mut counts = vec![0u32; partition.num_chunks() * members];
        let mut enabled = vec![0u64; n];
        let mut chunk_of = vec![u32::MAX; n];
        for i in 0..n {
            let local = Site(i as u32);
            if !sub.is_owned(local) {
                continue;
            }
            chunk_of[i] = partition.chunk_of(sub.to_global(local)) as u32;
            let mask = kernel.enabled_mask(local);
            enabled[i] = mask;
            let base = chunk_of[i] as usize * members;
            let mut bits = mask;
            while bits != 0 {
                let m = bits.trailing_zeros() as usize;
                counts[base + m] += 1;
                bits &= bits - 1;
            }
        }
        OwnedCounts {
            rates: (0..members).map(|m| model.reaction(m).rate()).collect(),
            members,
            enabled,
            chunk_of,
            counts,
        }
    }

    /// Re-evaluate every owned anchor whose pattern can read a changed
    /// cell. The kernel must already reflect `changes`. Idempotent per
    /// anchor, so overlapping stencils across changes are harmless.
    fn fold(&mut self, kernel: &SiteKernel, changes: &[Change]) {
        let cells = kernel.compiled().cells().len();
        for &(site, _, _) in changes {
            for j in 0..cells {
                let anchor = kernel.anchor(site, j);
                if self.chunk_of[anchor.0 as usize] == u32::MAX {
                    continue;
                }
                self.store_mask(anchor, kernel.enabled_mask(anchor));
            }
        }
    }

    fn store_mask(&mut self, site: Site, new_mask: u64) {
        let old_mask = self.enabled[site.0 as usize];
        let mut diff = old_mask ^ new_mask;
        if diff == 0 {
            return;
        }
        self.enabled[site.0 as usize] = new_mask;
        let base = self.chunk_of[site.0 as usize] as usize * self.members;
        while diff != 0 {
            let m = diff.trailing_zeros() as usize;
            if new_mask & (1 << m) != 0 {
                self.counts[base + m] += 1;
            } else {
                self.counts[base + m] -= 1;
            }
            diff &= diff - 1;
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 * self.counts.len());
        for c in &self.counts {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out
    }
}

/// One shard worker. The executor (inline or threaded) drives the phase
/// methods in protocol order; the worker itself never blocks.
pub(crate) struct Worker<'m> {
    id: u32,
    model: &'m Model,
    grid: ShardGrid,
    sub: SubLattice,
    kernel: SiteKernel,
    alias: AliasTable,
    factory: StreamFactory,
    selection: ChunkSelection,
    num_chunks: usize,
    num_sites_global: usize,
    radius: u32,
    bw: u32,
    bh: u32,
    /// Per chunk: owned `(local, global)` sites whose neighborhood stays
    /// inside the owned rectangle.
    chunk_interior: Vec<Vec<(Site, Site)>>,
    /// Per chunk: owned sites within `radius` of the domain border.
    chunk_boundary: Vec<Vec<(Site, Site)>>,
    counts: Option<OwnedCounts>,
    // Per-step / per-sweep scratch.
    draw_rng: Option<Pcg32>,
    journal: Vec<Change>,
    wb_out: Vec<Vec<u8>>,
    counts_total: Vec<u32>,
    weights: Vec<f64>,
    report: StepReport,
}

impl<'m> Worker<'m> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        model: &'m Model,
        partition: &Partition,
        compiled: Arc<CompiledModel>,
        global: &Lattice,
        grid: ShardGrid,
        id: u32,
        seed: u64,
        selection: ChunkSelection,
    ) -> Self {
        let dims = global.dims();
        let radius = model.interaction_radius();
        let (x0, y0, bw, bh) = grid.domain_of(dims, id);
        let sub = SubLattice::scatter(global, x0, y0, bw, bh, radius);
        let kernel = SiteKernel::new(compiled, sub.lattice());
        let m = partition.num_chunks();
        let mut chunk_interior = vec![Vec::new(); m];
        let mut chunk_boundary = vec![Vec::new(); m];
        for c in 0..m {
            for &g in partition.chunk(c) {
                if let Some(local) = sub.owned_local(g) {
                    let pw = sub.padded_w();
                    let lx = local.0 % pw;
                    let ly = local.0 / pw;
                    // Owned coords run [r, r+bw) × [r, r+bh); the boundary
                    // strip is the outer `radius` ring of that rectangle.
                    let interior = lx >= 2 * radius && lx < bw && ly >= 2 * radius && ly < bh;
                    if interior {
                        chunk_interior[c].push((local, g));
                    } else {
                        chunk_boundary[c].push((local, g));
                    }
                }
            }
        }
        let counts = (selection == ChunkSelection::WeightedByRates)
            .then(|| OwnedCounts::new(model, partition, &sub, &kernel));
        let counts_len = counts.as_ref().map_or(0, |c| c.counts.len());
        let species = model.species().len();
        let reactions = model.num_reactions();
        Worker {
            id,
            model,
            grid,
            sub,
            kernel,
            alias: AliasTable::new(&model.rate_weights()),
            factory: StreamFactory::new(seed),
            selection,
            num_chunks: m,
            num_sites_global: partition.num_sites(),
            radius,
            bw,
            bh,
            chunk_interior,
            chunk_boundary,
            counts,
            draw_rng: None,
            journal: Vec::new(),
            wb_out: vec![Vec::new(); 8],
            counts_total: vec![0; counts_len],
            weights: Vec::new(),
            report: StepReport::zeroed(species, reactions),
        }
    }

    pub(crate) fn id(&self) -> u32 {
        self.id
    }

    pub(crate) fn neighbor(&self, dir: usize) -> u32 {
        self.grid.neighbor(self.id, dir)
    }

    /// The step report under construction — the socket worker stamps its
    /// measured per-phase busy times and wire-level comm stats into it
    /// before shipping the report frame.
    pub(crate) fn report_mut(&mut self) -> &mut StepReport {
        &mut self.report
    }

    pub(crate) fn begin_step(&mut self, step: u64) {
        self.report = StepReport::zeroed(self.model.species().len(), self.model.num_reactions());
        self.draw_rng = (self.selection == ChunkSelection::WeightedByRates)
            .then(|| self.factory.stream(draw_stream_id(step)));
    }

    /// The step's chunk schedule for the stateless selections — a pure
    /// function of `(seed, step)`, so every worker computes it locally.
    ///
    /// # Panics
    ///
    /// Panics for `WeightedByRates`, whose draws interleave with sweeps.
    pub(crate) fn chunk_order(&self, step: u64) -> Vec<usize> {
        let m = self.num_chunks;
        match self.selection {
            ChunkSelection::InOrder => (0..m).collect(),
            ChunkSelection::RandomOrder => {
                let mut order: Vec<usize> = (0..m).collect();
                let mut rng = self.factory.stream(shuffle_stream_id(step));
                psr_rng::sample::shuffle(&mut rng, &mut order);
                order
            }
            ChunkSelection::RandomWithReplacement => {
                let mut rng = self.factory.stream(draw_stream_id(step));
                (0..m).map(|_| rng.index(m)).collect()
            }
            ChunkSelection::WeightedByRates => {
                panic!("weighted selection draws per position, not per step")
            }
        }
    }

    /// Counts frames for the pre-sweep all-gather (weighted selection):
    /// one to every worker, own id included for a uniform receive loop.
    pub(crate) fn counts_frames(&mut self, step: u64, pos: u32, sink: &mut impl FrameSink) {
        let payload = self.counts.as_ref().expect("weighted only").payload();
        for dest in 0..self.grid.workers() {
            self.note_sent(dest, frame::HEADER_LEN + payload.len());
            sink.frame(dest, KIND_COUNTS, NO_DIR, self.id, step, pos, &payload);
        }
    }

    /// Draw the next chunk after all counts frames were accepted.
    pub(crate) fn weighted_draw(&mut self) -> usize {
        let counts = self.counts.as_ref().expect("weighted only");
        let members = counts.members;
        self.weights.clear();
        self.weights.extend((0..self.num_chunks).map(|c| {
            let base = c * members;
            // Same loop as ChunkPropensityCache::chunk_weight, fed by the
            // all-worker count sums — bit-identical weights.
            let mut w = 0.0;
            for m in 0..members {
                w += self.counts_total[base + m] as f64 * counts.rates[m];
            }
            w
        }));
        for t in &mut self.counts_total {
            *t = 0;
        }
        let rng = self.draw_rng.as_mut().expect("weighted only");
        draw_weighted(rng, &self.weights)
    }

    /// Phase 1: one trial per owned site of `chunk_idx`, interior first,
    /// then the boundary strip.
    pub(crate) fn sweep(&mut self, step: u64, position: u32, chunk_idx: usize) {
        let base = trial_stream_base(
            step,
            self.num_chunks,
            position as usize,
            self.num_sites_global,
        );
        let dims = self.sub.lattice().dims();
        let model = self.model;
        for boundary in [false, true] {
            // Detach the site list so the trial body can borrow the rest
            // of the worker mutably; restored below.
            let sites = std::mem::take(if boundary {
                &mut self.chunk_boundary[chunk_idx]
            } else {
                &mut self.chunk_interior[chunk_idx]
            });
            for &(local, global) in &sites {
                let mut rng: Pcg32 = self.factory.stream(base + global.0 as u64);
                let reaction = self.alias.sample(&mut rng);
                let rt = model.reaction(reaction);
                self.report.trials += 1;
                if boundary {
                    self.report.comm.boundary_trials += 1;
                } else {
                    self.report.comm.local_trials += 1;
                }
                let enabled = rt
                    .transforms()
                    .iter()
                    .all(|t| self.sub.lattice().get(dims.translate(local, t.offset)) == t.src.id());
                if !enabled {
                    continue;
                }
                for t in rt.transforms() {
                    let target = dims.translate(local, t.offset);
                    if self.sub.is_owned(target) {
                        let old = self.sub.lattice_mut().set(target, t.tgt.id());
                        self.report.deltas[old as usize] -= 1;
                        self.report.deltas[t.tgt.id() as usize] += 1;
                        if old != t.tgt.id() {
                            self.journal.push((target, old, t.tgt.id()));
                        }
                    } else {
                        // Deferred write into a neighbor-owned cell: the
                        // owner applies it (and counts the coverage move);
                        // our halo copy is refreshed by the owner's strip.
                        let d = self.halo_dir_of(target);
                        let g = self.sub.to_global(target);
                        self.wb_out[d].extend_from_slice(&g.0.to_le_bytes());
                        self.wb_out[d].push(t.tgt.id());
                    }
                }
                self.report.executed += 1;
                self.report.reaction_executed[reaction] += 1;
            }
            if boundary {
                self.chunk_boundary[chunk_idx] = sites;
            } else {
                self.chunk_interior[chunk_idx] = sites;
            }
        }
    }

    /// Direction of the halo region containing local site `target`.
    fn halo_dir_of(&self, target: Site) -> usize {
        let pw = self.sub.padded_w();
        let lx = target.0 % pw;
        let ly = target.0 / pw;
        let r = self.radius;
        let dx = if lx < r {
            -1
        } else if lx >= r + self.bw {
            1
        } else {
            0
        };
        let dy = if ly < r {
            -1
        } else if ly >= r + self.bh {
            1
        } else {
            0
        };
        dir_index(dx, dy)
    }

    /// Phase 2a: the write-back frames, one per direction (possibly empty).
    pub(crate) fn wb_frames(&mut self, step: u64, pos: u32, sink: &mut impl FrameSink) {
        for d in 0..8 {
            let payload = std::mem::take(&mut self.wb_out[d]);
            let dest = self.neighbor(d);
            self.note_sent(dest, frame::HEADER_LEN + payload.len());
            sink.frame(
                dest,
                KIND_WRITEBACK,
                opposite(d) as u8,
                self.id,
                step,
                pos,
                &payload,
            );
        }
    }

    /// Phase 3a: the halo-strip frames — the owned border after all
    /// write-backs of the sweep were applied, so receivers see a fully
    /// consistent image of this worker's cells.
    pub(crate) fn halo_frames(&mut self, step: u64, pos: u32, sink: &mut impl FrameSink) {
        let mut payload = Vec::new();
        for d in 0..8 {
            let (x0, y0, w, h) = border_rect(self.bw, self.bh, self.radius, d);
            payload.clear();
            self.sub.pack_rect(x0, y0, w, h, &mut payload);
            let dest = self.neighbor(d);
            self.note_sent(dest, frame::HEADER_LEN + payload.len());
            sink.frame(
                dest,
                KIND_HALO,
                opposite(d) as u8,
                self.id,
                step,
                pos,
                &payload,
            );
        }
    }

    fn note_sent(&mut self, dest: u32, bytes: usize) {
        if dest != self.id {
            self.report.comm.halo_messages += 1;
            self.report.comm.halo_bytes += bytes as u64;
        }
    }

    /// Accept one frame (phases 2b, 3b, and the counts all-gather). The
    /// scheduler is responsible for delivering, per phase, exactly the
    /// frames of that phase — in any order, since write sets are disjoint,
    /// strip rectangles are disjoint, and count sums commute.
    pub(crate) fn accept(&mut self, bytes: &[u8]) {
        let (header, payload) = frame::decode(bytes);
        match header.kind {
            KIND_WRITEBACK => {
                assert_eq!(payload.len() % 5, 0, "torn write-back payload");
                for entry in payload.chunks_exact(5) {
                    let g = Site(u32::from_le_bytes(entry[0..4].try_into().unwrap()));
                    let new = entry[4];
                    let local = self
                        .sub
                        .owned_local(g)
                        .expect("write-back for a cell this worker does not own");
                    let old = self.sub.lattice().get(local);
                    self.report.deltas[old as usize] -= 1;
                    self.report.deltas[new as usize] += 1;
                    if old != new {
                        self.sub.lattice_mut().set(local, new);
                        self.journal.push((local, old, new));
                    }
                }
            }
            KIND_HALO => {
                let (x0, y0, w, h) = halo_rect(self.bw, self.bh, self.radius, header.dir as usize);
                self.sub
                    .unpack_rect_diff(x0, y0, w, h, payload, &mut self.journal);
            }
            KIND_COUNTS => {
                assert_eq!(payload.len(), 4 * self.counts_total.len());
                for (t, chunk) in self.counts_total.iter_mut().zip(payload.chunks_exact(4)) {
                    *t += u32::from_le_bytes(chunk.try_into().unwrap());
                }
            }
            kind => panic!("worker cannot accept frame kind {kind}"),
        }
    }

    /// Phase 4: fold the sweep's change journal into the kernel codes and
    /// the owned propensity counts. After this the worker is ready for the
    /// next draw/sweep.
    pub(crate) fn fold(&mut self) {
        let changes = std::mem::take(&mut self.journal);
        self.kernel.apply_changes(self.sub.lattice(), &changes);
        if let Some(counts) = &mut self.counts {
            counts.fold(&self.kernel, &changes);
        }
        self.journal = changes;
        self.journal.clear();
    }

    /// The step's report frame for the hub.
    pub(crate) fn report_frame(&mut self, step: u64) -> Vec<u8> {
        frame::encode(KIND_REPORT, NO_DIR, self.id, step, 0, &self.report.encode())
    }

    /// The final owned-rectangle frame for the hub's gather.
    pub(crate) fn gather_frame(&self, step: u64) -> Vec<u8> {
        let r = self.radius;
        let mut payload = Vec::with_capacity((self.bw * self.bh) as usize);
        self.sub.pack_rect(r, r, self.bw, self.bh, &mut payload);
        frame::encode(KIND_GATHER, NO_DIR, self.id, step, 0, &payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halo_and_border_rects_mirror_each_other() {
        // The strip packed toward `d` must have the shape the receiver
        // unpacks for its halo toward `opposite(d)` — that is the protocol
        // invariant that makes payload sizes line up.
        let (bw, bh, r) = (10, 6, 2);
        for d in 0..8 {
            let (_, _, sw, sh) = border_rect(bw, bh, r, d);
            let (_, _, hw, hh) = halo_rect(bw, bh, r, opposite(d));
            assert_eq!((sw, sh), (hw, hh), "direction {d}");
        }
    }

    #[test]
    fn rects_cover_expected_regions() {
        let (bw, bh, r) = (8, 8, 1);
        // East halo sits just right of the owned columns.
        assert_eq!(halo_rect(bw, bh, r, dir_index(1, 0)), (9, 1, 1, 8));
        // East border is the right-most owned column.
        assert_eq!(border_rect(bw, bh, r, dir_index(1, 0)), (8, 1, 1, 8));
        // North-west corner halo.
        assert_eq!(halo_rect(bw, bh, r, dir_index(-1, -1)), (0, 0, 1, 1));
        // Zero radius: all strips are empty.
        for d in 0..8 {
            let (_, _, w, h) = halo_rect(bw, bh, 0, d);
            assert_eq!(w.min(h), 0);
        }
    }
}
