//! Sharded PNDCA: per-worker lattice domains with a halo-exchange message
//! protocol.
//!
//! The shared-lattice executor in `psr-parallel` splits each chunk sweep
//! over threads of one address space. This crate is the distributed
//! counterpart the paper's §3/§6 machinery points at: the torus is tiled
//! into rectangular domains, each worker owns a private halo-padded copy
//! of its domain ([`SubLattice`](psr_lattice::SubLattice)), its own
//! compiled-kernel code tables, and its own deterministic RNG streams —
//! and *all* boundary state moves through serializable byte frames
//! ([`frame`]), never shared memory, so the in-process transport is one
//! swap away from sockets.
//!
//! Determinism contract: every trial draws from a stream keyed by
//! `(step, sweep position, global site)` — the same
//! [`trial_stream_base`](psr_parallel::trial_stream_base) scheme as the
//! shared-lattice executor — and weighted chunk draws are replicated on
//! every worker from integer count sums. Trajectories are therefore a pure
//! function of `(seed, partition)`: invariant to thread count, scheduler
//! choice, and the shard grid, which the differential tests pin.
//!
//! Modules:
//!
//! - [`domain`] — the worker grid and direction algebra;
//! - [`frame`] — the wire format (halo strips, write-backs, counts,
//!   reports, gathers, socket handshake);
//! - [`executor`] — [`ShardedPndca`] with the lockstep inline scheduler
//!   (critical-path timed), the threaded channel scheduler, and the
//!   multi-process socket scheduler;
//! - [`net`] — the socket transport: hub, worker-process loop, coalesced
//!   per-peer frame batching, and the CONFIG/PEERS handshake codec.

#![warn(missing_docs)]

pub mod domain;
pub mod executor;
pub mod frame;
pub mod net;
mod worker;

pub use domain::{dir_index, opposite, ShardGrid, DIRS};
pub use executor::{ScheduleMode, ShardedPndca};
pub use frame::{FrameHeader, StepReport};
pub use net::Wire;
pub use psr_parallel::CommStats;
