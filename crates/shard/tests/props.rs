//! Property tests for the frame wire format.
//!
//! Frames face raw socket bytes, so the contract mirrors the HTTP parser's
//! (`crates/serve/tests/props.rs`): `try_decode` never panics on byte soup,
//! any truncation or suffix garbage is an `Err` (never a mis-framed `Ok`),
//! `decode ∘ encode` is the identity over every frame kind, coalesced
//! batches re-split into exactly the frames that went in, and the step
//! report payload survives its own round trip bit-for-bit.

use proptest::prelude::*;
use psr_parallel::CommStats;
use psr_shard::frame::{
    self, decode_header, encode, encode_into, try_decode, StepReport, HEADER_LEN, KIND_CONFIG,
    KIND_COUNTS, KIND_GATHER, KIND_HALO, KIND_HELLO, KIND_PEERS, KIND_PING, KIND_REPORT,
    KIND_WRITEBACK,
};

const ALL_KINDS: [u8; 9] = [
    KIND_HALO,
    KIND_WRITEBACK,
    KIND_COUNTS,
    KIND_REPORT,
    KIND_GATHER,
    KIND_HELLO,
    KIND_CONFIG,
    KIND_PEERS,
    KIND_PING,
];

proptest! {
    #[test]
    fn try_decode_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(0u8..=255, 0..512usize),
    ) {
        let _ = try_decode(&bytes); // Ok or Err — never a panic
    }

    // decode ∘ encode is the identity on every field, over every kind.
    #[test]
    fn encode_decode_roundtrip(
        kind_idx in 0usize..ALL_KINDS.len(),
        dir in 0u8..=255,
        src in 0u32..u32::MAX,
        step in 0u64..u64::MAX,
        pos in 0u32..u32::MAX,
        payload in prop::collection::vec(0u8..=255, 0..256usize),
    ) {
        let kind = ALL_KINDS[kind_idx];
        let bytes = encode(kind, dir, src, step, pos, &payload);
        prop_assert_eq!(bytes.len(), HEADER_LEN + payload.len());
        let (header, body) = try_decode(&bytes).expect("encoded frame must decode");
        prop_assert_eq!(header.kind, kind);
        prop_assert_eq!(header.dir, dir);
        prop_assert_eq!(header.src, src);
        prop_assert_eq!(header.step, step);
        prop_assert_eq!(header.pos, pos);
        prop_assert_eq!(body, &payload[..]);
    }

    // Any strict prefix of a valid frame is an error, and so is any
    // suffix of trailing garbage: a declared length must match exactly.
    #[test]
    fn truncation_and_garbage_suffix_are_rejected(
        payload in prop::collection::vec(0u8..=255, 0..64usize),
        cut in 0usize..1024,
        garbage in prop::collection::vec(0u8..=255, 1..32usize),
    ) {
        let bytes = encode(KIND_HALO, 2, 1, 9, 3, &payload);
        let cut = cut % bytes.len(); // strictly shorter
        prop_assert!(try_decode(&bytes[..cut]).is_err(), "truncation at {} accepted", cut);
        let mut extended = bytes.clone();
        extended.extend_from_slice(&garbage);
        prop_assert!(try_decode(&extended).is_err(), "trailing garbage accepted");
    }

    // A payload length beyond the cap is refused before any allocation —
    // the socket receive path trusts this to bound a malicious header.
    #[test]
    fn oversized_declared_payloads_are_refused(excess in 1u32..1_000_000) {
        let mut bytes = encode(KIND_HALO, 0, 0, 0, 0, &[]);
        let declared = (frame::MAX_PAYLOAD as u32).saturating_add(excess);
        bytes[18..22].copy_from_slice(&declared.to_le_bytes());
        prop_assert!(try_decode(&bytes).is_err());
    }

    // The coalescing property the socket sink relies on: frames appended
    // back-to-back into one buffer re-split into exactly the originals,
    // because every frame is self-delimiting.
    #[test]
    fn coalesced_batches_resplit_into_the_original_frames(
        frames in prop::collection::vec(
            (0usize..ALL_KINDS.len(), 0u8..8, 0u32..16, 0u64..1000, 0u32..32,
             prop::collection::vec(0u8..=255, 0..48usize)),
            1..12usize,
        ),
    ) {
        let mut batch = Vec::new();
        for (kind_idx, dir, src, step, pos, payload) in &frames {
            encode_into(&mut batch, ALL_KINDS[*kind_idx], *dir, *src, *step, *pos, payload);
        }
        let mut at = 0;
        let mut recovered = 0usize;
        while at < batch.len() {
            prop_assert!(batch.len() - at >= HEADER_LEN, "dangling partial header");
            let (header, payload_len) = decode_header(&batch[at..]);
            let (kind_idx, dir, src, step, pos, payload) = &frames[recovered];
            prop_assert_eq!(header.kind, ALL_KINDS[*kind_idx]);
            prop_assert_eq!(header.dir, *dir);
            prop_assert_eq!(header.src, *src);
            prop_assert_eq!(header.step, *step);
            prop_assert_eq!(header.pos, *pos);
            prop_assert_eq!(payload_len, payload.len());
            let body = &batch[at + HEADER_LEN..at + HEADER_LEN + payload_len];
            prop_assert_eq!(body, &payload[..]);
            at += HEADER_LEN + payload_len;
            recovered += 1;
        }
        prop_assert_eq!(recovered, frames.len());
    }

    // The step-report payload is self-describing and bit-exact across its
    // round trip, including the f64 phase times (encoded as raw bits).
    #[test]
    fn step_report_roundtrip(
        trials in 0u64..u64::MAX,
        executed in 0u64..u64::MAX,
        deltas in prop::collection::vec(i64::MIN..i64::MAX, 0..8usize),
        reaction_executed in prop::collection::vec(0u64..u64::MAX, 0..8usize),
        comm_fields in prop::collection::vec(0u64..u64::MAX, 8usize..9),
        phase_busy in prop::collection::vec(0.0f64..1e6, 0..6usize),
    ) {
        let report = StepReport {
            trials,
            executed,
            deltas,
            reaction_executed,
            comm: CommStats {
                local_trials: comm_fields[0],
                boundary_trials: comm_fields[1],
                halo_messages: comm_fields[2],
                halo_bytes: comm_fields[3],
                wire_frames: comm_fields[4],
                wire_bytes: comm_fields[5],
                wire_batches: comm_fields[6],
                wire_flushes: comm_fields[7],
            },
            phase_busy,
        };
        let payload = report.encode();
        prop_assert_eq!(StepReport::decode(&payload), report);
    }
}
