//! The determinism contract of the sharded executor, pinned differentially:
//! on the same `(seed, partition)`, sharding the lattice over any worker
//! grid — with either scheduler — produces the *bit-identical* trajectory
//! of the shared-lattice `ParallelPndca`.

use proptest::prelude::*;
use psr_ca::partition_builder::{five_coloring, greedy_coloring, seven_coloring};
use psr_ca::pndca::ChunkSelection;
use psr_ca::Partition;
use psr_dmc::sim::SimState;
use psr_lattice::{Dims, Lattice, Site};
use psr_model::library::zgb::zgb_ziff;
use psr_model::{Model, ModelBuilder};
use psr_parallel::ParallelPndca;
use psr_shard::{ScheduleMode, ShardGrid, ShardedPndca, Wire};

/// Run the shared-lattice reference executor.
fn run_shared(
    model: &Model,
    partition: &Partition,
    lattice: &Lattice,
    selection: ChunkSelection,
    seed: u64,
    steps: u64,
) -> (SimState, u64, u64) {
    let mut exec = ParallelPndca::new(model, partition, 2, seed).with_selection(selection);
    let mut state = SimState::new(lattice.clone(), model);
    let stats = exec.run_steps(&mut state, steps, None);
    (state, stats.trials, stats.executed)
}

/// Run the sharded executor on `grid` with the given scheduler.
#[allow(clippy::too_many_arguments)]
fn run_sharded(
    model: &Model,
    partition: &Partition,
    lattice: &Lattice,
    selection: ChunkSelection,
    seed: u64,
    steps: u64,
    grid: ShardGrid,
    mode: ScheduleMode,
) -> (SimState, u64, u64) {
    let mut exec = ShardedPndca::new(model, partition, grid, seed)
        .with_selection(selection)
        .with_mode(mode);
    let mut state = SimState::new(lattice.clone(), model);
    let stats = exec.run_steps(&mut state, steps, None);
    assert!(state.coverage.matches(&state.lattice));
    (state, stats.trials, stats.executed)
}

fn assert_identical(
    reference: &(SimState, u64, u64),
    sharded: &(SimState, u64, u64),
    context: &str,
) {
    assert_eq!(
        reference.0.lattice, sharded.0.lattice,
        "lattice diverged: {context}"
    );
    assert_eq!(reference.1, sharded.1, "trials diverged: {context}");
    assert_eq!(reference.2, sharded.2, "executed diverged: {context}");
    assert!(
        (reference.0.time - sharded.0.time).abs() < 1e-12,
        "time diverged: {context}"
    );
}

const ALL_SELECTIONS: [ChunkSelection; 4] = [
    ChunkSelection::InOrder,
    ChunkSelection::RandomOrder,
    ChunkSelection::RandomWithReplacement,
    ChunkSelection::WeightedByRates,
];

/// The headline acceptance test: a long ZGB run (1000 steps = 400k trials)
/// on a 2×2 shard grid, for every chunk-selection strategy, both schedulers.
#[test]
fn zgb_1000_steps_matches_shared_lattice() {
    let model = zgb_ziff(0.5, 2.0);
    let d = Dims::square(20);
    let partition = five_coloring(d);
    let lattice = Lattice::filled(d, 0);
    for selection in ALL_SELECTIONS {
        let reference = run_shared(&model, &partition, &lattice, selection, 2024, 1000);
        assert!(reference.2 > 0, "reference run executed nothing");
        for mode in [ScheduleMode::Inline, ScheduleMode::Threaded] {
            let sharded = run_sharded(
                &model,
                &partition,
                &lattice,
                selection,
                2024,
                1000,
                ShardGrid::new(2, 2),
                mode,
            );
            assert_identical(&reference, &sharded, &format!("{selection:?} / {mode:?}"));
        }
    }
}

/// Degenerate and wrapping grids: 1×1 (every direction a self-send), 1×N
/// and N×1 (double wrap on one axis), 2×2.
#[test]
fn trajectories_invariant_of_shard_grid() {
    let model = zgb_ziff(0.55, 3.0);
    let d = Dims::new(20, 10);
    let partition = five_coloring(d);
    let lattice = Lattice::filled(d, 0);
    for selection in ALL_SELECTIONS {
        let reference = run_shared(&model, &partition, &lattice, selection, 7, 60);
        for (gx, gy) in [(1, 1), (1, 2), (2, 1), (4, 1), (2, 2), (4, 2)] {
            let sharded = run_sharded(
                &model,
                &partition,
                &lattice,
                selection,
                7,
                60,
                ShardGrid::new(gx, gy),
                ScheduleMode::Inline,
            );
            assert_identical(&reference, &sharded, &format!("{selection:?} on {gx}x{gy}"));
        }
    }
}

/// Resuming at the recorded absolute step reproduces the uninterrupted
/// trajectory (the engine's checkpoint path).
#[test]
fn split_run_matches_uninterrupted() {
    let model = zgb_ziff(0.5, 2.0);
    let d = Dims::square(20);
    let partition = five_coloring(d);
    let lattice = Lattice::filled(d, 0);
    let grid = ShardGrid::new(2, 2);
    let full = run_sharded(
        &model,
        &partition,
        &lattice,
        ChunkSelection::InOrder,
        5,
        40,
        grid,
        ScheduleMode::Inline,
    );
    let mut exec = ShardedPndca::new(&model, &partition, grid, 5);
    let mut state = SimState::new(lattice.clone(), &model);
    exec.run_steps(&mut state, 15, None);
    let mut resumed = ShardedPndca::new(&model, &partition, grid, 5);
    resumed.set_start_step(15);
    resumed.run_steps(&mut state, 25, None);
    assert_eq!(state.lattice, full.0.lattice);
}

/// Measured communication: trials split interior/boundary, frames counted
/// only between distinct workers, and a 1×1 grid (self-sends only) pays no
/// messages at all.
#[test]
fn comm_stats_are_measured() {
    let model = zgb_ziff(0.5, 2.0);
    let d = Dims::square(20);
    let partition = five_coloring(d);
    let lattice = Lattice::filled(d, 0);
    let mut solo = ShardedPndca::new(&model, &partition, ShardGrid::new(1, 1), 3)
        .with_mode(ScheduleMode::Inline);
    let mut state = SimState::new(lattice.clone(), &model);
    solo.run_steps(&mut state, 10, None);
    let comm = solo.comm_stats();
    assert_eq!(comm.halo_messages, 0, "self-sends must not count");
    assert_eq!(comm.halo_bytes, 0);
    assert_eq!(comm.local_trials + comm.boundary_trials, 10 * 400);

    let mut sharded = ShardedPndca::new(&model, &partition, ShardGrid::new(2, 2), 3)
        .with_mode(ScheduleMode::Inline);
    let mut state = SimState::new(lattice.clone(), &model);
    sharded.run_steps(&mut state, 10, None);
    let comm = sharded.comm_stats();
    // 2×2 blocks of 10×10, radius 1: the static boundary fraction is
    // 1 − (8/10)² = 0.36 of all trials, exactly (sweeps visit every site).
    assert_eq!(comm.local_trials + comm.boundary_trials, 10 * 400);
    assert_eq!(comm.boundary_trials, (10.0f64 * 400.0 * 0.36) as u64);
    // 4 workers × 8 directions × 2 frame kinds × 5 sweeps × 10 steps, all
    // between distinct workers on a 2×2 grid.
    assert_eq!(comm.halo_messages, 4 * 8 * 2 * 5 * 10);
    assert!(
        comm.halo_bytes > comm.halo_messages * 22,
        "headers + payload"
    );
    // Per-reaction execution counts are surfaced and sum to `executed`.
    let per_reaction: u64 = sharded.reaction_executions().iter().sum();
    assert!(per_reaction > 0);
}

/// A radius-0 model (single-site patterns only): empty halo strips, no
/// write-backs, still identical to the shared executor.
#[test]
fn radius_zero_model_needs_no_halo() {
    let model = ModelBuilder::new(&["*", "A"])
        .reaction("ads", 1.0, |r| {
            r.site((0, 0), "*", "A");
        })
        .reaction("des", 0.5, |r| {
            r.site((0, 0), "A", "*");
        })
        .build();
    let d = Dims::square(12);
    let partition = greedy_coloring(d, &model);
    let lattice = Lattice::filled(d, 0);
    for selection in [ChunkSelection::InOrder, ChunkSelection::WeightedByRates] {
        let reference = run_shared(&model, &partition, &lattice, selection, 11, 50);
        let sharded = run_sharded(
            &model,
            &partition,
            &lattice,
            selection,
            11,
            50,
            ShardGrid::new(3, 2),
            ScheduleMode::Inline,
        );
        assert_identical(&reference, &sharded, &format!("radius 0, {selection:?}"));
    }
}

/// A toy model family with tunable rates for the property test.
fn random_model(ads: f64, des: f64, pair: f64) -> Model {
    ModelBuilder::new(&["*", "A", "B"])
        .reaction("adsA", ads, |r| {
            r.site((0, 0), "*", "A");
        })
        .reaction("adsB", 1.0, |r| {
            r.site((0, 0), "*", "B");
        })
        .reaction("desA", des, |r| {
            r.site((0, 0), "A", "*");
        })
        .reaction("react", pair, |r| {
            r.site((0, 0), "A", "*");
            r.site((1, 0), "B", "*");
        })
        .reaction("swap", 0.7, |r| {
            r.site((0, 0), "B", "A");
            r.site((0, 1), "*", "B");
        })
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Random models, lattice sizes, occupancies, grids (including 1×1,
    // 1×N, N×M), selections, and seeds: the sharded trajectory always
    // equals the shared-lattice one.
    #[test]
    fn sharded_matches_shared_on_random_runs(
        seed in 0u64..1_000_000,
        ads in 0.3f64..3.0,
        des in 0.1f64..1.0,
        pair in 0.5f64..5.0,
        use_zgb in proptest::bool::ANY,
        seven in proptest::bool::ANY,
        geometry_idx in 0usize..6,
        fill in 0u8..3,
        selection_idx in 0usize..4,
        steps in 5u64..20,
    ) {
        // Lattice sides divisible by 5 (the coloring) and by the grid with
        // blocks wider than 2r: degenerate 1×1, strip 1×N / N×1, and
        // general N×M grids. The 35-side entry is also divisible by 7 so
        // the 7-coloring can exercise it.
        const GEOMETRIES: [(u32, u32, u32); 6] = [
            (20, 1, 1),
            (20, 1, 2),
            (20, 4, 1),
            (20, 2, 2),
            (20, 4, 2),
            (35, 5, 7),
        ];
        let (side, gx, gy) = GEOMETRIES[geometry_idx];
        let model = if use_zgb {
            zgb_ziff(0.4 + ads / 10.0, pair)
        } else {
            random_model(ads, des, pair)
        };
        let d = Dims::square(side);
        let partition = if seven && side % 7 == 0 {
            seven_coloring(d)
        } else {
            five_coloring(d)
        };
        // A mixed starting surface so pair reactions fire early.
        let mut lattice = Lattice::filled(d, 0);
        let species = model.species().len() as u32;
        for i in 0..lattice.len() {
            let s = ((i as u32)
                .wrapping_mul(2654435761)
                .wrapping_add(seed as u32)
                >> 7)
                % (species + 1);
            lattice.set(Site(i as u32), (s % species).min(fill as u32) as u8);
        }
        let selection = ALL_SELECTIONS[selection_idx];
        let reference = run_shared(&model, &partition, &lattice, selection, seed, steps);
        let sharded = run_sharded(
            &model, &partition, &lattice, selection, seed, steps,
            ShardGrid::new(gx, gy), ScheduleMode::Inline,
        );
        assert_identical(&reference, &sharded, &format!("{selection:?} {gx}x{gy} side {side}"));
        // Spot-check the threaded scheduler on a subset (it is slower).
        if seed % 5 == 0 {
            let threaded = run_sharded(
                &model, &partition, &lattice, selection, seed, steps,
                ShardGrid::new(gx, gy), ScheduleMode::Threaded,
            );
            assert_identical(&reference, &threaded, "threaded");
        }
        // And the socket transport on a sparser subset (process spawns
        // per case): random models must survive the CONFIG round trip.
        if seed % 11 == 0 {
            let socket = run_sharded(
                &model, &partition, &lattice, selection, seed, steps,
                ShardGrid::new(gx, gy), ScheduleMode::Socket(Wire::Unix),
            );
            assert_identical(&reference, &socket, "socket");
        }
    }
}
