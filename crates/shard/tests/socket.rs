//! The socket transport against the same oracle as the in-process
//! schedulers: bit-identical trajectories on the same `(seed, partition)`,
//! over both wire families, plus the failure model (a killed worker fails
//! the run promptly and leaves no orphan processes).
//!
//! Tests in this file serialize on a lock: the fault-injection hook is an
//! environment variable inherited by spawned workers, so concurrent socket
//! runs inside one test process would cross-contaminate.

use psr_ca::partition_builder::five_coloring;
use psr_ca::pndca::ChunkSelection;
use psr_ca::Partition;
use psr_dmc::sim::SimState;
use psr_lattice::{Dims, Lattice};
use psr_model::library::zgb::zgb_ziff;
use psr_model::Model;
use psr_shard::{ScheduleMode, ShardGrid, ShardedPndca, Wire};
use std::sync::Mutex;
use std::time::Duration;

static SOCKET_LOCK: Mutex<()> = Mutex::new(());

const ALL_SELECTIONS: [ChunkSelection; 4] = [
    ChunkSelection::InOrder,
    ChunkSelection::RandomOrder,
    ChunkSelection::RandomWithReplacement,
    ChunkSelection::WeightedByRates,
];

#[allow(clippy::too_many_arguments)]
fn run_mode(
    model: &Model,
    partition: &Partition,
    lattice: &Lattice,
    selection: ChunkSelection,
    seed: u64,
    steps: u64,
    grid: ShardGrid,
    mode: ScheduleMode,
) -> (SimState, u64, u64) {
    let mut exec = ShardedPndca::new(model, partition, grid, seed)
        .with_selection(selection)
        .with_mode(mode);
    let mut state = SimState::new(lattice.clone(), model);
    let stats = exec.run_steps(&mut state, steps, None);
    assert!(state.coverage.matches(&state.lattice));
    (state, stats.trials, stats.executed)
}

fn assert_identical(
    reference: &(SimState, u64, u64),
    socket: &(SimState, u64, u64),
    context: &str,
) {
    assert_eq!(
        reference.0.lattice, socket.0.lattice,
        "lattice diverged: {context}"
    );
    assert_eq!(reference.1, socket.1, "trials diverged: {context}");
    assert_eq!(reference.2, socket.2, "executed diverged: {context}");
    assert!(
        (reference.0.time - socket.0.time).abs() < 1e-12,
        "time diverged: {context}"
    );
}

/// The headline acceptance test: 1000 ZGB steps on a 2×2 grid over Unix
/// sockets, every chunk-selection strategy, against the inline oracle.
#[test]
fn zgb_1000_steps_unix_matches_inline() {
    let _guard = SOCKET_LOCK.lock().unwrap();
    let model = zgb_ziff(0.5, 2.0);
    let d = Dims::square(20);
    let partition = five_coloring(d);
    let lattice = Lattice::filled(d, 0);
    for selection in ALL_SELECTIONS {
        let reference = run_mode(
            &model,
            &partition,
            &lattice,
            selection,
            2024,
            1000,
            ShardGrid::new(2, 2),
            ScheduleMode::Inline,
        );
        assert!(reference.2 > 0, "reference run executed nothing");
        let socket = run_mode(
            &model,
            &partition,
            &lattice,
            selection,
            2024,
            1000,
            ShardGrid::new(2, 2),
            ScheduleMode::Socket(Wire::Unix),
        );
        assert_identical(&reference, &socket, &format!("{selection:?} / unix"));
    }
}

/// Loopback TCP carries the identical trajectory too (the wire family only
/// changes latency, never bytes). The weighted strategy exercises the
/// counts all-gather over the mesh.
#[test]
fn zgb_1000_steps_tcp_matches_inline() {
    let _guard = SOCKET_LOCK.lock().unwrap();
    let model = zgb_ziff(0.5, 2.0);
    let d = Dims::square(20);
    let partition = five_coloring(d);
    let lattice = Lattice::filled(d, 0);
    for selection in [ChunkSelection::RandomOrder, ChunkSelection::WeightedByRates] {
        let reference = run_mode(
            &model,
            &partition,
            &lattice,
            selection,
            2024,
            1000,
            ShardGrid::new(2, 2),
            ScheduleMode::Inline,
        );
        let socket = run_mode(
            &model,
            &partition,
            &lattice,
            selection,
            2024,
            1000,
            ShardGrid::new(2, 2),
            ScheduleMode::Socket(Wire::Tcp),
        );
        assert_identical(&reference, &socket, &format!("{selection:?} / tcp"));
    }
}

/// Degenerate grids over sockets: 1×1 (every frame a self-send, no wire at
/// all), 4×1 (double torus wrap on one axis), 2×2.
#[test]
fn socket_trajectories_invariant_of_grid() {
    let _guard = SOCKET_LOCK.lock().unwrap();
    let model = zgb_ziff(0.55, 3.0);
    let d = Dims::new(20, 10);
    let partition = five_coloring(d);
    let lattice = Lattice::filled(d, 0);
    let reference = run_mode(
        &model,
        &partition,
        &lattice,
        ChunkSelection::RandomOrder,
        7,
        60,
        ShardGrid::new(2, 2),
        ScheduleMode::Inline,
    );
    for (gx, gy) in [(1, 1), (4, 1), (2, 2)] {
        let socket = run_mode(
            &model,
            &partition,
            &lattice,
            ChunkSelection::RandomOrder,
            7,
            60,
            ShardGrid::new(gx, gy),
            ScheduleMode::Socket(Wire::Unix),
        );
        assert_identical(&reference, &socket, &format!("unix on {gx}x{gy}"));
    }
}

/// Kill-resume over the socket transport: stopping after 12 steps and
/// resuming with `set_start_step` reproduces the uninterrupted run — each
/// socket session is a complete spawn/handshake/run/teardown cycle.
#[test]
fn socket_split_run_matches_uninterrupted() {
    let _guard = SOCKET_LOCK.lock().unwrap();
    let model = zgb_ziff(0.5, 2.0);
    let d = Dims::square(20);
    let partition = five_coloring(d);
    let lattice = Lattice::filled(d, 0);
    let grid = ShardGrid::new(2, 2);
    let full = run_mode(
        &model,
        &partition,
        &lattice,
        ChunkSelection::InOrder,
        11,
        30,
        grid,
        ScheduleMode::Socket(Wire::Unix),
    );
    let mut exec = ShardedPndca::new(&model, &partition, grid, 11)
        .with_selection(ChunkSelection::InOrder)
        .with_mode(ScheduleMode::Socket(Wire::Unix));
    let mut state = SimState::new(lattice.clone(), &model);
    exec.run_steps(&mut state, 12, None);
    let mut resumed = ShardedPndca::new(&model, &partition, grid, 11)
        .with_selection(ChunkSelection::InOrder)
        .with_mode(ScheduleMode::Socket(Wire::Unix));
    resumed.set_start_step(12);
    resumed.run_steps(&mut state, 18, None);
    assert_eq!(full.0.lattice, state.lattice, "split socket run diverged");
}

/// The socket path measures its wire traffic: frames, bytes, flushes, and
/// coalesced batches, all zero on the in-process transports and non-zero
/// whenever frames actually cross a socket.
#[test]
fn socket_comm_stats_are_measured() {
    let _guard = SOCKET_LOCK.lock().unwrap();
    let model = zgb_ziff(0.5, 2.0);
    let d = Dims::square(20);
    let partition = five_coloring(d);
    let lattice = Lattice::filled(d, 0);
    let steps = 10;
    let mut exec = ShardedPndca::new(&model, &partition, ShardGrid::new(2, 2), 5)
        .with_mode(ScheduleMode::Socket(Wire::Unix));
    let mut state = SimState::new(lattice.clone(), &model);
    exec.run_steps(&mut state, steps, None);
    let comm = exec.comm_stats();
    // Every frame that crossed a worker boundary crossed a socket: the
    // wire counters must agree with the protocol-level halo counters.
    assert_eq!(comm.wire_frames, comm.halo_messages, "frame count mismatch");
    assert_eq!(comm.wire_bytes, comm.halo_bytes, "byte count mismatch");
    assert!(comm.wire_flushes > 0, "no flushes recorded");
    // On a 2×2 torus each worker's 8 directional frames go to 3 distinct
    // peers — every flush carries at least two frames, so every flush is
    // a coalesced batch.
    assert_eq!(
        comm.wire_batches, comm.wire_flushes,
        "batching not in effect"
    );
    // And batching must beat one-write-per-frame by a wide margin.
    assert!(
        comm.wire_flushes * 2 <= comm.wire_frames,
        "flushes {} vs frames {}: coalescing ineffective",
        comm.wire_flushes,
        comm.wire_frames
    );
    assert!(
        exec.wire_latency_seconds().is_some_and(|l| l > 0.0),
        "no wire latency measured"
    );
    // Inline mode on the same run pays no wire cost at all.
    let mut inline = ShardedPndca::new(&model, &partition, ShardGrid::new(2, 2), 5)
        .with_mode(ScheduleMode::Inline);
    let mut state2 = SimState::new(lattice.clone(), &model);
    inline.run_steps(&mut state2, steps, None);
    let icomm = inline.comm_stats();
    assert_eq!(icomm.wire_frames, 0);
    assert_eq!(icomm.wire_flushes, 0);
    assert_eq!(state.lattice, state2.lattice);
}

/// Count live `psr-shard-worker` processes parented by this process.
fn orphan_workers() -> usize {
    let mut n = 0;
    let me = std::process::id().to_string();
    for entry in std::fs::read_dir("/proc").into_iter().flatten().flatten() {
        let pid = entry.file_name();
        let Some(pid) = pid.to_str() else { continue };
        if !pid.bytes().all(|b| b.is_ascii_digit()) {
            continue;
        }
        let Ok(status) = std::fs::read_to_string(format!("/proc/{pid}/status")) else {
            continue;
        };
        let name_match = status
            .lines()
            .any(|l| l.starts_with("Name:") && l.contains("psr-shard-work"));
        let parent_match = status
            .lines()
            .any(|l| l.starts_with("PPid:") && l.split_whitespace().nth(1) == Some(me.as_str()));
        // A kernel zombie still counts as unreaped.
        if name_match && parent_match {
            n += 1;
        }
    }
    n
}

/// The shutdown-hygiene acceptance test: one worker dies mid-step (after
/// its sweep, before its write-back exchange). Peers must unblock via EOF
/// — not a timeout — the run must fail with a clear error, and no worker
/// process may survive the teardown.
#[test]
fn killed_worker_fails_the_run_cleanly() {
    let _guard = SOCKET_LOCK.lock().unwrap();
    let model = zgb_ziff(0.5, 2.0);
    let d = Dims::square(20);
    let partition = five_coloring(d);
    let lattice = Lattice::filled(d, 0);
    std::env::set_var("PSR_SHARD_FAIL_AT", "1:5");
    let started = std::time::Instant::now();
    let result = {
        let mut exec = ShardedPndca::new(&model, &partition, ShardGrid::new(2, 2), 5)
            .with_mode(ScheduleMode::Socket(Wire::Unix))
            .with_recv_timeout(Duration::from_secs(60));
        let mut state = SimState::new(lattice.clone(), &model);
        exec.try_run_steps(&mut state, 50, None)
    };
    std::env::remove_var("PSR_SHARD_FAIL_AT");
    let err = result.expect_err("run must fail when a worker dies");
    assert!(
        err.contains("worker"),
        "error does not name the failed worker: {err}"
    );
    // EOF propagation, not the 60 s receive deadline.
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "failure took {:?} — teardown relied on a timeout",
        started.elapsed()
    );
    assert_eq!(orphan_workers(), 0, "orphan worker processes left behind");
    // The executor is still usable for a clean run afterwards.
    let reference = run_mode(
        &model,
        &partition,
        &lattice,
        ChunkSelection::InOrder,
        5,
        20,
        ShardGrid::new(2, 2),
        ScheduleMode::Inline,
    );
    let retry = run_mode(
        &model,
        &partition,
        &lattice,
        ChunkSelection::InOrder,
        5,
        20,
        ShardGrid::new(2, 2),
        ScheduleMode::Socket(Wire::Unix),
    );
    assert_identical(&reference, &retry, "clean run after a failed one");
}
