//! Durable job queue with per-tenant fair scheduling.
//!
//! Every state change is one JSONL event appended (and flushed) to
//! `queue.jsonl` *before* the caller observes it — in particular a
//! submission is journaled before its ACK is sent, so a job the client saw
//! accepted survives `kill -9`. Restart replays the journal: submissions
//! without a matching `done`/`failed` come back as pending (a job that was
//! mid-flight resumes from its engine checkpoint; the runner makes that
//! bit-identical).
//!
//! Scheduling is round-robin over tenants with runnable work, oldest job
//! first within a tenant, so one tenant's burst cannot starve another.
//! Jobs are identified by submission id but *executed* by cache key: two
//! pending submissions of the same spec are satisfied by one run, and a key
//! is never dispatched to two workers at once (they would race on the
//! shared checkpoint files).

use crate::json;
use crate::request::JobRequest;
use psr_engine::JsonLine;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::{Condvar, Mutex};

/// Lifecycle of one submission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Pending,
    /// A worker is executing (or resuming) its key.
    Running,
    /// Result is in the cache.
    Done,
    /// Execution failed (the message says why).
    Failed(String),
}

impl JobState {
    /// API-facing name.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Pending => "pending",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

/// One accepted submission.
#[derive(Clone, Debug)]
pub struct Job {
    /// Submission id (monotonic across restarts).
    pub id: u64,
    /// Submitting tenant (scheduling unit).
    pub tenant: String,
    /// Cache key — the canonical spec digest.
    pub key: String,
    /// The parsed request.
    pub req: JobRequest,
    /// Current state.
    pub state: JobState,
}

struct State {
    jobs: Vec<Job>,
    next_id: u64,
    /// Keys currently held by a worker.
    running_keys: HashSet<String>,
    /// Round-robin cursor over tenants with runnable work.
    rr: usize,
    draining: bool,
}

/// The queue handle (thread-safe).
pub struct Queue {
    log: Mutex<BufWriter<File>>,
    inner: Mutex<State>,
    cv: Condvar,
}

impl Queue {
    /// Open the queue, replaying `path` if it exists.
    ///
    /// # Errors
    ///
    /// I/O errors, or a corrupt journal line (torn trailing lines from a
    /// crash mid-append are tolerated and dropped).
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let mut state = State {
            jobs: Vec::new(),
            next_id: 1,
            running_keys: HashSet::new(),
            rr: 0,
            draining: false,
        };
        if let Ok(text) = std::fs::read_to_string(path) {
            for line in text.lines() {
                // A torn final line (crash mid-append) parses as garbage;
                // everything before it was flushed line-at-a-time, so
                // skipping is safe only for unparseable lines.
                let Ok(v) = json::parse(line) else { continue };
                let ev = v.get("ev").and_then(json::Value::as_str).unwrap_or("");
                let id = v.get("id").and_then(json::Value::as_u64).unwrap_or(0);
                match ev {
                    "submit" => {
                        let (Some(tenant), Some(key), Some(spec)) = (
                            v.get("tenant").and_then(json::Value::as_str),
                            v.get("key").and_then(json::Value::as_str),
                            v.get("spec").and_then(json::Value::as_str),
                        ) else {
                            continue;
                        };
                        let Ok(req) = JobRequest::parse(spec) else {
                            continue;
                        };
                        state.jobs.push(Job {
                            id,
                            tenant: tenant.to_owned(),
                            key: key.to_owned(),
                            req,
                            state: JobState::Pending,
                        });
                        state.next_id = state.next_id.max(id + 1);
                    }
                    "done" => {
                        if let Some(j) = state.jobs.iter_mut().find(|j| j.id == id) {
                            j.state = JobState::Done;
                        }
                    }
                    "failed" => {
                        let msg = v
                            .get("error")
                            .and_then(json::Value::as_str)
                            .unwrap_or("unknown")
                            .to_owned();
                        if let Some(j) = state.jobs.iter_mut().find(|j| j.id == id) {
                            j.state = JobState::Failed(msg);
                        }
                    }
                    _ => {}
                }
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Queue {
            log: Mutex::new(BufWriter::new(file)),
            inner: Mutex::new(state),
            cv: Condvar::new(),
        })
    }

    fn log_line(&self, line: JsonLine) -> std::io::Result<()> {
        let mut w = self.log.lock().expect("queue log lock");
        writeln!(w, "{}", line.finish())?;
        w.flush()
    }

    /// Accept a submission: journal it, then make it pending. Returns the
    /// id only after the journal write succeeded (the durability ACK).
    ///
    /// # Errors
    ///
    /// Journal I/O errors (the job is then *not* accepted).
    pub fn submit(&self, tenant: &str, req: &JobRequest) -> std::io::Result<u64> {
        self.submit_in(tenant, req, JobState::Pending)
    }

    /// Accept a submission already satisfied by the cache: journal
    /// `submit` + `done` and record it as done (uniform status lookups).
    ///
    /// # Errors
    ///
    /// Journal I/O errors.
    pub fn submit_done(&self, tenant: &str, req: &JobRequest) -> std::io::Result<u64> {
        self.submit_in(tenant, req, JobState::Done)
    }

    fn submit_in(&self, tenant: &str, req: &JobRequest, state: JobState) -> std::io::Result<u64> {
        let key = req.cache_key();
        let mut inner = self.inner.lock().expect("queue lock");
        let id = inner.next_id;
        inner.next_id += 1;
        self.log_line(
            JsonLine::event("submit")
                .u64("id", id)
                .str("tenant", tenant)
                .str("key", &key)
                .str("spec", &req.canonical_text()),
        )?;
        if state == JobState::Done {
            self.log_line(JsonLine::event("done").u64("id", id))?;
        }
        inner.jobs.push(Job {
            id,
            tenant: tenant.to_owned(),
            key,
            req: req.clone(),
            state,
        });
        drop(inner);
        self.cv.notify_all();
        Ok(id)
    }

    /// Indices of pending jobs whose key no worker holds, in id order.
    fn runnable(state: &State) -> Vec<usize> {
        state
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.state == JobState::Pending && !state.running_keys.contains(&j.key))
            .map(|(i, _)| i)
            .collect()
    }

    /// Block until a job is available (tenant-fair) or the queue drains.
    /// Returns `None` when draining — the worker should exit.
    pub fn take(&self) -> Option<Job> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if inner.draining {
                return None;
            }
            let runnable = Self::runnable(&inner);
            if !runnable.is_empty() {
                // Distinct tenants with runnable work, in first-submission
                // order; the cursor rotates among them.
                let mut tenants: Vec<&str> = Vec::new();
                for &i in &runnable {
                    let t = inner.jobs[i].tenant.as_str();
                    if !tenants.contains(&t) {
                        tenants.push(t);
                    }
                }
                let tenant = tenants[inner.rr % tenants.len()].to_owned();
                inner.rr += 1;
                let idx = runnable
                    .into_iter()
                    .find(|&i| inner.jobs[i].tenant == tenant)
                    .expect("tenant has runnable work");
                inner.jobs[idx].state = JobState::Running;
                let key = inner.jobs[idx].key.clone();
                inner.running_keys.insert(key);
                return Some(inner.jobs[idx].clone());
            }
            inner = self.cv.wait(inner).expect("queue lock");
        }
    }

    fn finish_key(&self, key: &str, result: Result<(), &str>) -> std::io::Result<()> {
        let mut inner = self.inner.lock().expect("queue lock");
        for i in 0..inner.jobs.len() {
            if inner.jobs[i].key != key
                || !matches!(inner.jobs[i].state, JobState::Pending | JobState::Running)
            {
                continue;
            }
            let id = inner.jobs[i].id;
            match result {
                Ok(()) => {
                    self.log_line(JsonLine::event("done").u64("id", id))?;
                    inner.jobs[i].state = JobState::Done;
                }
                Err(msg) => {
                    self.log_line(JsonLine::event("failed").u64("id", id).str("error", msg))?;
                    inner.jobs[i].state = JobState::Failed(msg.to_owned());
                }
            }
        }
        inner.running_keys.remove(key);
        drop(inner);
        self.cv.notify_all();
        Ok(())
    }

    /// Mark every submission of `key` done (its result is cached).
    ///
    /// # Errors
    ///
    /// Journal I/O errors.
    pub fn complete_key(&self, key: &str) -> std::io::Result<()> {
        self.finish_key(key, Ok(()))
    }

    /// Mark every submission of `key` failed.
    ///
    /// # Errors
    ///
    /// Journal I/O errors.
    pub fn fail_key(&self, key: &str, error: &str) -> std::io::Result<()> {
        self.finish_key(key, Err(error))
    }

    /// Return a running job to pending (graceful drain: the job
    /// checkpointed and will resume after restart). Not journaled — the
    /// submission is still outstanding.
    pub fn release(&self, id: u64) {
        let mut inner = self.inner.lock().expect("queue lock");
        if let Some(j) = inner.jobs.iter_mut().find(|j| j.id == id) {
            j.state = JobState::Pending;
            let key = j.key.clone();
            inner.running_keys.remove(&key);
        }
        drop(inner);
        self.cv.notify_all();
    }

    /// Snapshot of one submission.
    pub fn status(&self, id: u64) -> Option<Job> {
        self.inner
            .lock()
            .expect("queue lock")
            .jobs
            .iter()
            .find(|j| j.id == id)
            .cloned()
    }

    /// Pending + running submissions (the load-shedding watermark).
    pub fn in_flight(&self) -> usize {
        self.inner
            .lock()
            .expect("queue lock")
            .jobs
            .iter()
            .filter(|j| matches!(j.state, JobState::Pending | JobState::Running))
            .count()
    }

    /// Begin draining: `take` returns `None` once current picks are done.
    pub fn drain(&self) {
        self.inner.lock().expect("queue lock").draining = true;
        self.cv.notify_all();
    }

    /// Whether draining has begun.
    pub fn is_draining(&self) -> bool {
        self.inner.lock().expect("queue lock").draining
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("psr_serve_queue_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join("queue.jsonl")
    }

    fn req(seed: u64) -> JobRequest {
        JobRequest::parse(&format!(
            "model = zgb 0.5 5\nalgorithm = ndca\nside = 10\nseed = {seed}\nsteps = 20"
        ))
        .expect("req")
    }

    #[test]
    fn submit_take_complete_roundtrip() {
        let q = Queue::open(&temp_path("roundtrip")).expect("open");
        let id = q.submit("acme", &req(1)).expect("submit");
        assert_eq!(q.status(id).expect("status").state, JobState::Pending);
        assert_eq!(q.in_flight(), 1);
        let job = q.take().expect("take");
        assert_eq!(job.id, id);
        assert_eq!(q.status(id).expect("status").state, JobState::Running);
        q.complete_key(&job.key).expect("complete");
        assert_eq!(q.status(id).expect("status").state, JobState::Done);
        assert_eq!(q.in_flight(), 0);
    }

    #[test]
    fn restart_replays_acked_but_unfinished_jobs() {
        let path = temp_path("replay");
        let key;
        {
            let q = Queue::open(&path).expect("open");
            q.submit("a", &req(1)).expect("submit 1");
            q.submit("a", &req(2)).expect("submit 2");
            let job = q.take().expect("take");
            key = job.key.clone();
            q.complete_key(&key).expect("complete");
            // Job 2 is still pending when the "process dies".
        }
        let q2 = Queue::open(&path).expect("reopen");
        assert_eq!(q2.status(1).expect("job 1").state, JobState::Done);
        assert_eq!(q2.status(2).expect("job 2").state, JobState::Pending);
        assert_eq!(q2.in_flight(), 1);
        // A job that was *running* at the kill replays as pending too.
        let j = q2.take().expect("take");
        assert_eq!(j.id, 2);
    }

    #[test]
    fn tenant_round_robin_prevents_starvation() {
        let q = Queue::open(&temp_path("fair")).expect("open");
        q.submit("a", &req(1)).expect("a1");
        q.submit("a", &req(2)).expect("a2");
        q.submit("a", &req(3)).expect("a3");
        q.submit("b", &req(4)).expect("b1");
        let order: Vec<String> = (0..4)
            .map(|_| {
                let j = q.take().expect("take");
                q.complete_key(&j.key).expect("complete");
                j.tenant
            })
            .collect();
        // b's single job is served second, not after all of a's burst.
        assert_eq!(order, vec!["a", "b", "a", "a"]);
    }

    #[test]
    fn duplicate_keys_are_never_dispatched_concurrently_and_finish_together() {
        let q = Queue::open(&temp_path("dup")).expect("open");
        let id1 = q.submit("a", &req(7)).expect("submit");
        let id2 = q.submit("b", &req(7)).expect("same spec, other tenant");
        let job = q.take().expect("take");
        // The duplicate key is not runnable while the first is held.
        assert_eq!(q.in_flight(), 2);
        q.drain();
        assert!(q.take().is_none(), "same key must not dispatch twice");
        q.complete_key(&job.key).expect("complete");
        assert_eq!(q.status(id1).expect("1").state, JobState::Done);
        assert_eq!(q.status(id2).expect("2").state, JobState::Done);
    }

    #[test]
    fn failed_jobs_record_the_error() {
        let path = temp_path("fail");
        let q = Queue::open(&path).expect("open");
        let id = q.submit("a", &req(1)).expect("submit");
        let job = q.take().expect("take");
        q.fail_key(&job.key, "boom").expect("fail");
        assert_eq!(
            q.status(id).expect("status").state,
            JobState::Failed("boom".to_owned())
        );
        let q2 = Queue::open(&path).expect("reopen");
        assert!(matches!(
            q2.status(id).expect("status").state,
            JobState::Failed(ref m) if m == "boom"
        ));
    }

    #[test]
    fn release_returns_a_running_job_to_pending() {
        let q = Queue::open(&temp_path("release")).expect("open");
        let id = q.submit("a", &req(1)).expect("submit");
        let job = q.take().expect("take");
        q.release(job.id);
        assert_eq!(q.status(id).expect("status").state, JobState::Pending);
        // And it can be taken again.
        assert_eq!(q.take().expect("retake").id, id);
    }

    #[test]
    fn cached_submissions_are_journaled_done() {
        let path = temp_path("cached");
        let q = Queue::open(&path).expect("open");
        let id = q.submit_done("a", &req(1)).expect("submit");
        assert_eq!(q.status(id).expect("status").state, JobState::Done);
        assert_eq!(q.in_flight(), 0);
        let q2 = Queue::open(&path).expect("reopen");
        assert_eq!(q2.status(id).expect("status").state, JobState::Done);
    }
}
