//! Observable streams derived from durable checkpoints.
//!
//! A job's observables are one JSONL line per checkpoint —
//! `{"step":N,"time":T,"counts":[…]}` with per-species occupation counts
//! from the lattice histogram — appended to a *partial* file as the engine's
//! `BlockObserver` fires. The observer fires only after a checkpoint is on
//! disk, so the partial never runs ahead of resumable state; and checkpoint
//! placement is deterministic, so the finished file is a pure function of
//! the job spec. That file, verbatim, becomes the cached result.
//!
//! Crashes leave two kinds of damage the writer must repair on resume:
//! a torn trailing line (killed mid-append) and a missing line for the
//! resume checkpoint (killed between the checkpoint write and the append).
//! [`Partial::reconcile`] handles both by truncating to the lines at or
//! before the resume step and re-deriving the resume line from the loaded
//! checkpoint itself.

use crate::json;
use psr_core::SessionCheckpoint;
use psr_engine::JsonLine;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Render the observable line for one checkpoint.
pub fn line(num_states: usize, ck: &SessionCheckpoint) -> String {
    let counts = ck.lattice.histogram(num_states);
    let mut arr = String::from("[");
    for (i, c) in counts.iter().enumerate() {
        if i > 0 {
            arr.push(',');
        }
        arr.push_str(&c.to_string());
    }
    arr.push(']');
    JsonLine::object()
        .u64("step", ck.steps)
        .f64("time", ck.time)
        .raw("counts", &arr)
        .finish()
}

/// Step number of a parsed observable line, if the line is well-formed.
fn line_step(text: &str) -> Option<u64> {
    json::parse(text).ok()?.get("step")?.as_u64()
}

/// The in-progress observable file for one job key.
#[derive(Clone, Debug)]
pub struct Partial {
    path: PathBuf,
}

impl Partial {
    /// The partial for `key` under `dir`.
    pub fn new(dir: &Path, key: &str) -> Self {
        Partial {
            path: dir.join(format!("{key}.jsonl")),
        }
    }

    /// Where the partial lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one observable line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append(&self, line: &str) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        f.write_all(line.as_bytes())?;
        f.write_all(b"\n")?;
        Ok(())
    }

    /// Current contents (empty if the file does not exist yet).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than "not found".
    pub fn read(&self) -> std::io::Result<Vec<u8>> {
        match std::fs::read(&self.path) {
            Ok(b) => Ok(b),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    /// Remove the partial (after its contents moved into the result cache).
    pub fn remove(&self) {
        let _ = std::fs::remove_file(&self.path);
    }

    /// Repair the partial before (re)running the job.
    ///
    /// With no resume checkpoint the job restarts from step 0, so the
    /// partial is reset to empty. With one, keep the well-formed prefix of
    /// lines up to the resume step (dropping a torn trailing line and
    /// anything the lost attempt wrote past the checkpoint), and append the
    /// resume step's line — derived from the checkpoint itself — if the
    /// crash ate it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn reconcile(
        &self,
        num_states: usize,
        resume: Option<&SessionCheckpoint>,
    ) -> std::io::Result<()> {
        let Some(ck) = resume else {
            self.remove();
            return Ok(());
        };
        let text = String::from_utf8_lossy(&self.read()?).into_owned();
        let mut kept = String::new();
        let mut last_step = None;
        for l in text.lines() {
            match line_step(l) {
                Some(step) if step <= ck.steps && last_step.is_none_or(|p| step > p) => {
                    kept.push_str(l);
                    kept.push('\n');
                    last_step = Some(step);
                }
                // Torn, out-of-order or post-checkpoint line: everything
                // from here on is untrustworthy.
                _ => break,
            }
        }
        if last_step != Some(ck.steps) {
            kept.push_str(&line(num_states, ck));
            kept.push('\n');
        }
        let tmp = self.path.with_extension("tmp");
        std::fs::write(&tmp, kept)?;
        std::fs::rename(&tmp, &self.path)
    }

    /// Append the final observable line if it is not already the last line
    /// (the crash window between the `.done` snapshot and the append).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn ensure_final(&self, num_states: usize, done: &SessionCheckpoint) -> std::io::Result<()> {
        let text = String::from_utf8_lossy(&self.read()?).into_owned();
        if text.lines().last().and_then(line_step) == Some(done.steps) {
            return Ok(());
        }
        self.append(&line(num_states, done))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_lattice::{Dims, Lattice};

    fn ck(steps: u64, fill: u8) -> SessionCheckpoint {
        SessionCheckpoint {
            lattice: Lattice::filled(Dims::square(4), fill),
            time: steps as f64 * 0.5,
            steps,
            rng: [1, 2],
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("psr_serve_observe_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn line_counts_the_lattice() {
        let l = line(3, &ck(6, 2));
        assert_eq!(l, "{\"step\":6,\"time\":3,\"counts\":[0,0,16]}");
        let v = json::parse(&l).expect("parse");
        assert_eq!(v.get("step").and_then(json::Value::as_u64), Some(6));
    }

    #[test]
    fn reconcile_without_checkpoint_resets() {
        let dir = temp_dir("reset");
        let p = Partial::new(&dir, "k");
        p.append(&line(3, &ck(6, 1))).expect("append");
        p.reconcile(3, None).expect("reconcile");
        assert!(p.read().expect("read").is_empty());
    }

    #[test]
    fn reconcile_drops_torn_and_future_lines() {
        let dir = temp_dir("torn");
        let p = Partial::new(&dir, "k");
        p.append(&line(3, &ck(6, 1))).expect("append");
        p.append(&line(3, &ck(12, 1))).expect("append");
        p.append(&line(3, &ck(18, 1))).expect("append"); // past the resume point
        p.append("{\"step\":24,\"ti").expect("torn"); // killed mid-write
        p.reconcile(3, Some(&ck(12, 1))).expect("reconcile");
        let text = String::from_utf8(p.read().expect("read")).expect("utf8");
        let steps: Vec<_> = text.lines().map(|l| line_step(l).expect("step")).collect();
        assert_eq!(steps, vec![6, 12]);
    }

    #[test]
    fn reconcile_rederives_a_missing_resume_line() {
        let dir = temp_dir("missing");
        let p = Partial::new(&dir, "k");
        p.append(&line(3, &ck(6, 1))).expect("append");
        // Crash between the step-12 checkpoint write and the append: the
        // reconcile must produce exactly the line the append would have.
        p.reconcile(3, Some(&ck(12, 2))).expect("reconcile");
        let text = String::from_utf8(p.read().expect("read")).expect("utf8");
        assert_eq!(text.lines().count(), 2);
        assert_eq!(text.lines().last(), Some(line(3, &ck(12, 2)).as_str()));
    }

    #[test]
    fn ensure_final_is_idempotent() {
        let dir = temp_dir("final");
        let p = Partial::new(&dir, "k");
        p.append(&line(3, &ck(6, 1))).expect("append");
        p.ensure_final(3, &ck(10, 1)).expect("ensure");
        p.ensure_final(3, &ck(10, 1)).expect("ensure again");
        let text = String::from_utf8(p.read().expect("read")).expect("utf8");
        assert_eq!(text.lines().count(), 2);
    }
}
