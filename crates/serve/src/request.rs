//! Job submissions and their canonical, content-addressed form.
//!
//! A submission is the body of `POST /v1/jobs`: `key = value` lines naming
//! a model, algorithm, lattice side, seed, steps — the single-job subset of
//! the engine's batch format. Two submissions that mean the same job must
//! be served from the same cache entry, so the cache key is not a hash of
//! the raw text but of a *canonical* rendering: keys sorted, whitespace and
//! comments gone, defaults resolved, numbers re-rendered from their parsed
//! values (so `0.50` and `0.5` agree) — then SHA-256. Trajectories are a
//! pure function of the canonical fields, which is what makes the cache
//! semantically lossless.
//!
//! `checkpoint_every` is part of the key: observables are sampled on the
//! checkpoint grid, so the grid shapes the result bytes. The tenant is
//! deliberately *not* part of the key — identical physics is shared across
//! tenants; only scheduling is per-tenant.

use crate::sha256::sha256_hex;
use psr_core::Algorithm;
use psr_engine::spec::{parse_algorithm, ModelSpec};
use psr_engine::JobSpec;

/// A parsed, validated job submission.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRequest {
    /// Reaction model.
    pub model: ModelSpec,
    /// Algorithm (the step-resumable subset).
    pub algorithm: Algorithm,
    /// Square lattice side.
    pub side: u32,
    /// Master RNG seed.
    pub seed: u64,
    /// Whole algorithm steps.
    pub steps: u64,
    /// Checkpoint / observable-sampling interval.
    pub checkpoint_every: u64,
    /// Sharded-executor workers (1 = in-process session).
    pub shards: u32,
}

fn model_canonical(model: &ModelSpec) -> String {
    match model {
        // `{y}`/`{k}` use Rust's shortest-round-trip Display: one spelling
        // per f64 value.
        ModelSpec::Zgb { y, k } => format!("zgb {y} {k}"),
        ModelSpec::Kuzovkov => "kuzovkov".to_owned(),
    }
}

fn algorithm_canonical(algorithm: &Algorithm) -> String {
    match algorithm {
        Algorithm::Rsm => "rsm".to_owned(),
        Algorithm::RsmDiscretized => "rsm-discretized".to_owned(),
        Algorithm::Ndca { shuffled: false } => "ndca".to_owned(),
        Algorithm::Ndca { shuffled: true } => "ndca-shuffled".to_owned(),
        Algorithm::TPndca => "tpndca".to_owned(),
        Algorithm::Pndca {
            partition,
            selection,
        } => format!("pndca {partition} {selection}"),
        Algorithm::LPndca {
            partition,
            l,
            visit,
        } => format!("lpndca {partition} {l} {visit}"),
        other => unreachable!("{other:?} is rejected by parse_algorithm"),
    }
}

impl JobRequest {
    /// Parse a submission body.
    ///
    /// # Errors
    ///
    /// Reports the first problem with its line number (server clients need
    /// a position to fix a rejected spec).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut model = None;
        let mut algorithm = None;
        let mut side: Option<u32> = None;
        let mut seed = 0u64;
        let mut steps: Option<u64> = None;
        let mut checkpoint_every: Option<u64> = None;
        let mut shards = 1u32;
        let mut seen: Vec<String> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let lineno = lineno + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or(format!("line {lineno}: expected `key = value`"))?;
            let (key, value) = (key.trim(), value.trim());
            if seen.iter().any(|k| k == key) {
                return Err(format!("line {lineno}: duplicate key `{key}`"));
            }
            seen.push(key.to_owned());
            let err = |e: String| format!("line {lineno}: {e}");
            match key {
                "model" => model = Some(ModelSpec::parse(value).map_err(err)?),
                "algorithm" => algorithm = Some(parse_algorithm(value).map_err(err)?),
                "side" => side = Some(value.parse().map_err(|e| err(format!("side: {e}")))?),
                "seed" => seed = value.parse().map_err(|e| err(format!("seed: {e}")))?,
                "steps" => steps = Some(value.parse().map_err(|e| err(format!("steps: {e}")))?),
                "checkpoint_every" => {
                    checkpoint_every = Some(
                        value
                            .parse()
                            .map_err(|e| err(format!("checkpoint_every: {e}")))?,
                    )
                }
                "shards" => shards = value.parse().map_err(|e| err(format!("shards: {e}")))?,
                other => return Err(err(format!("unknown key `{other}`"))),
            }
        }
        let steps = steps.ok_or("missing steps")?;
        let req = JobRequest {
            model: model.ok_or("missing model")?,
            algorithm: algorithm.ok_or("missing algorithm")?,
            side: side.ok_or("missing side")?,
            seed,
            steps,
            // The engine's default grid; resolved here so a spelled-out
            // default and an omitted one canonicalise identically.
            checkpoint_every: checkpoint_every.unwrap_or((steps / 10).max(1)),
            shards,
        };
        req.to_job_spec("probe").validate()?;
        Ok(req)
    }

    /// The canonical rendering: sorted keys, one spelling per value, every
    /// default resolved. Equal canonical text ⇔ same cache entry.
    pub fn canonical_text(&self) -> String {
        format!(
            "algorithm = {}\ncheckpoint_every = {}\nmodel = {}\nseed = {}\nshards = {}\nside = {}\nsteps = {}\n",
            algorithm_canonical(&self.algorithm),
            self.checkpoint_every,
            model_canonical(&self.model),
            self.seed,
            self.shards,
            self.side,
            self.steps,
        )
    }

    /// Content address: SHA-256 of the canonical text, lowercase hex.
    pub fn cache_key(&self) -> String {
        sha256_hex(self.canonical_text().as_bytes())
    }

    /// Materialise the engine job spec this request describes.
    pub fn to_job_spec(&self, name: &str) -> JobSpec {
        let mut spec = JobSpec::new(
            name,
            self.model.clone(),
            self.algorithm.clone(),
            self.side,
            self.seed,
            self.steps,
        );
        spec.checkpoint_every = self.checkpoint_every;
        spec.shards = self.shards;
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BODY: &str = "
model = zgb 0.51 5
algorithm = pndca five random-order
side = 20
seed = 7
steps = 200
checkpoint_every = 50
";

    #[test]
    fn parses_and_canonicalises() {
        let req = JobRequest::parse(BODY).expect("parse");
        assert_eq!(req.side, 20);
        assert_eq!(req.seed, 7);
        assert_eq!(
            req.canonical_text(),
            "algorithm = pndca five random-order\ncheckpoint_every = 50\nmodel = zgb 0.51 5\nseed = 7\nshards = 1\nside = 20\nsteps = 200\n"
        );
        assert_eq!(req.cache_key().len(), 64);
    }

    #[test]
    fn semantically_identical_specs_share_a_key() {
        let base = JobRequest::parse(BODY).expect("parse");
        for variant in [
            // Reordered keys, noise whitespace, comments.
            "steps=200\nseed = 7\n# hi\nside =20\ncheckpoint_every= 50\nalgorithm = pndca five random-order\nmodel = zgb 0.51 5",
            // Different float spelling of the same value.
            "model = zgb 0.510 5.0\nalgorithm = pndca five random-order\nside = 20\nseed = 7\nsteps = 200\ncheckpoint_every = 50",
            // Default shards spelled out.
            "shards = 1\nmodel = zgb 0.51 5\nalgorithm = pndca five random-order\nside = 20\nseed = 7\nsteps = 200\ncheckpoint_every = 50",
        ] {
            let req = JobRequest::parse(variant).expect(variant);
            assert_eq!(req.cache_key(), base.cache_key(), "{variant}");
        }
        // Omitted checkpoint_every resolves to the default grid — same key
        // as the default spelled out.
        let defaulted =
            JobRequest::parse("model = kuzovkov\nalgorithm = ndca\nside = 30\nsteps = 40")
                .expect("parse");
        let spelled = JobRequest::parse(
            "model = kuzovkov\nalgorithm = ndca\nside = 30\nsteps = 40\ncheckpoint_every = 4",
        )
        .expect("parse");
        assert_eq!(defaulted.cache_key(), spelled.cache_key());
    }

    #[test]
    fn differing_fields_change_the_key() {
        let base = JobRequest::parse(BODY).expect("parse");
        for (variant, what) in [
            (BODY.replace("seed = 7", "seed = 8"), "seed"),
            (BODY.replace("steps = 200", "steps = 201"), "steps"),
            (BODY.replace("side = 20", "side = 40"), "side"),
            (
                BODY.replace("checkpoint_every = 50", "checkpoint_every = 25"),
                "checkpoint grid",
            ),
            (BODY.replace("zgb 0.51 5", "zgb 0.52 5"), "model params"),
            (
                BODY.replace("pndca five random-order", "pndca five in-order"),
                "selection",
            ),
        ] {
            let req = JobRequest::parse(&variant).expect(&variant);
            assert_ne!(req.cache_key(), base.cache_key(), "{what} must change key");
        }
    }

    #[test]
    fn rejects_bad_submissions_with_line_numbers() {
        for (body, needle) in [
            ("model = zgb 0.5 5", "missing steps"),
            ("steps = 5\nside = 10\nalgorithm = rsm", "missing model"),
            ("model = warp\nsteps = 5", "line 1: unknown model"),
            (
                "model = kuzovkov\nalgorithm = bogus\nside = 10\nsteps = 5",
                "line 2: unknown algorithm",
            ),
            (
                "model = kuzovkov\nalgorithm = rsm\nside = 10\nsteps = 5\nside = 11",
                "line 5: duplicate key",
            ),
            (
                "model = kuzovkov\nalgorithm = rsm\nside = 10\nsteps = 5\nfrobnicate = 1",
                "line 5: unknown key",
            ),
            (
                "model = kuzovkov\nalgorithm = rsm\nside
= 10\nsteps = 5",
                "line 3: expected `key = value`",
            ),
            (
                "model = kuzovkov\nalgorithm = rsm\nside = 0\nsteps = 5",
                "side must be positive",
            ),
            (
                "model = kuzovkov\nalgorithm = ndca\nside = 10\nsteps = 5\nshards = 4",
                "requires a pndca algorithm",
            ),
        ] {
            let err = JobRequest::parse(body).expect_err(body);
            assert!(err.contains(needle), "{body:?}: {err:?} missing {needle:?}");
        }
    }

    #[test]
    fn canonical_text_reparses_to_the_same_request() {
        let req = JobRequest::parse(BODY).expect("parse");
        let back = JobRequest::parse(&req.canonical_text()).expect("reparse");
        assert_eq!(back, req);
        assert_eq!(back.cache_key(), req.cache_key());
    }
}
