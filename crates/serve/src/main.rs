//! `psr-serve`: simulation-as-a-service CLI.
//!
//! ```text
//! psr-serve serve  --addr 127.0.0.1:8080 --state-dir serve-state [--workers N]
//!                  [--queue-cap N] [--cache-bytes N] [--max-side N] [--max-steps N]
//! psr-serve submit --addr HOST:PORT [--tenant T] <spec-file|->
//! psr-serve wait   --addr HOST:PORT <id> [--timeout-ms N]
//! psr-serve result --addr HOST:PORT <id>
//! psr-serve observe <spec-file> <done-snapshot>
//! ```
//!
//! Exit codes: 0 success, 1 usage, 2 failure, 4 throttled (429) — scripts
//! branch on them.

use psr_serve::request::JobRequest;
use psr_serve::server::{start, ServerConfig};
use psr_serve::{client, json, observe};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Set by the signal handler; the serve loop polls it.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    // No libc crate is vendored; `signal` comes straight from the C
    // runtime, which is always linked on this target. SIGINT = 2,
    // SIGTERM = 15.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(2, on_signal as *const () as usize);
        signal(15, on_signal as *const () as usize);
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: psr-serve serve --addr A --state-dir D [--workers N] [--queue-cap N] \
         [--cache-bytes N] [--max-side N] [--max-steps N]\n\
         \x20      psr-serve submit --addr A [--tenant T] <spec-file|->\n\
         \x20      psr-serve wait --addr A <id> [--timeout-ms N]\n\
         \x20      psr-serve result --addr A <id>\n\
         \x20      psr-serve observe <spec-file> <done-snapshot>"
    );
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("wait") => cmd_wait(&args[1..]),
        Some("result") => cmd_result(&args[1..]),
        Some("observe") => cmd_observe(&args[1..]),
        _ => usage(),
    }
}

/// `--flag value` pairs collected by [`parse_flags`].
type Flags = Vec<(String, String)>;

/// Split `args` into `--flag value` pairs and positionals.
fn parse_flags(args: &[String]) -> Result<(Flags, Vec<String>), String> {
    let mut flags = Vec::new();
    let mut pos = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let v = it.next().ok_or(format!("--{name} needs a value"))?;
            flags.push((name.to_owned(), v.clone()));
        } else {
            pos.push(a.clone());
        }
    }
    Ok((flags, pos))
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let (flags, pos) = match parse_flags(args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("psr-serve: {e}");
            return usage();
        }
    };
    if !pos.is_empty() {
        return usage();
    }
    let mut cfg = ServerConfig::default();
    if let Some(a) = flag(&flags, "addr") {
        cfg.addr = a.to_owned();
    }
    if let Some(d) = flag(&flags, "state-dir") {
        cfg.state_dir = PathBuf::from(d);
    }
    macro_rules! num_flag {
        ($name:literal, $field:ident) => {
            if let Some(v) = flag(&flags, $name) {
                match v.parse() {
                    Ok(n) => cfg.$field = n,
                    Err(e) => {
                        eprintln!("psr-serve: --{}: {e}", $name);
                        return ExitCode::from(1);
                    }
                }
            }
        };
    }
    num_flag!("workers", workers);
    num_flag!("queue-cap", queue_cap);
    num_flag!("cache-bytes", cache_bytes);
    num_flag!("max-side", max_side);
    num_flag!("max-steps", max_steps);
    num_flag!("max-connections", max_connections);

    install_signal_handlers();
    let external = Arc::new(AtomicBool::new(false));
    let handle = match start(cfg, Arc::clone(&external)) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("psr-serve: {e}");
            return ExitCode::from(2);
        }
    };
    println!("psr-serve listening on {}", handle.addr);
    while !SIGNALLED.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("psr-serve: draining (checkpointing in-flight jobs)");
    external.store(true, Ordering::SeqCst);
    handle.join();
    ExitCode::SUCCESS
}

fn read_spec(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut s = String::new();
        std::io::Read::read_to_string(&mut std::io::stdin(), &mut s)
            .map_err(|e| format!("stdin: {e}"))?;
        Ok(s)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    }
}

fn cmd_submit(args: &[String]) -> ExitCode {
    let (flags, pos) = match parse_flags(args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("psr-serve: {e}");
            return usage();
        }
    };
    let (Some(addr), [spec_path]) = (flag(&flags, "addr"), pos.as_slice()) else {
        return usage();
    };
    let tenant = flag(&flags, "tenant").unwrap_or("anon");
    let spec = match read_spec(spec_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("psr-serve: {e}");
            return ExitCode::from(2);
        }
    };
    match client::post(
        addr,
        "/v1/jobs",
        &[("x-tenant", tenant)],
        spec.as_bytes(),
        Duration::from_secs(10),
    ) {
        Ok(resp) => {
            print!("{}", resp.text());
            match resp.status {
                200 | 202 => ExitCode::SUCCESS,
                429 => ExitCode::from(4),
                _ => ExitCode::from(2),
            }
        }
        Err(e) => {
            eprintln!("psr-serve: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_wait(args: &[String]) -> ExitCode {
    let (flags, pos) = match parse_flags(args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("psr-serve: {e}");
            return usage();
        }
    };
    let (Some(addr), [id]) = (flag(&flags, "addr"), pos.as_slice()) else {
        return usage();
    };
    let timeout_ms: u64 = flag(&flags, "timeout-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(120_000);
    let deadline = Instant::now() + Duration::from_millis(timeout_ms);
    // One pooled keep-alive connection carries the whole polling loop and
    // the final result fetch — no per-poll TCP handshake.
    let pool = client::Pool::new(addr, Duration::from_secs(10));
    loop {
        match pool.get(&format!("/v1/jobs/{id}")) {
            Ok(resp) => {
                let status = json::parse(resp.text().trim())
                    .ok()
                    .and_then(|v| {
                        v.get("status")
                            .and_then(json::Value::as_str)
                            .map(String::from)
                    })
                    .unwrap_or_default();
                match status.as_str() {
                    "done" => {
                        print!("{}", resp.text());
                        return ExitCode::SUCCESS;
                    }
                    "failed" => {
                        eprint!("{}", resp.text());
                        return ExitCode::from(2);
                    }
                    _ => {}
                }
            }
            Err(e) => eprintln!("psr-serve: {e}"),
        }
        if Instant::now() > deadline {
            eprintln!("psr-serve: timed out waiting for job {id}");
            return ExitCode::from(2);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn cmd_result(args: &[String]) -> ExitCode {
    let (flags, pos) = match parse_flags(args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("psr-serve: {e}");
            return usage();
        }
    };
    let (Some(addr), [id]) = (flag(&flags, "addr"), pos.as_slice()) else {
        return usage();
    };
    match client::get(
        addr,
        &format!("/v1/jobs/{id}/result"),
        Duration::from_secs(10),
    ) {
        Ok(resp) if resp.status == 200 => {
            use std::io::Write as _;
            let _ = std::io::stdout().write_all(&resp.body);
            ExitCode::SUCCESS
        }
        Ok(resp) => {
            eprint!("psr-serve: {} {}", resp.status, resp.text());
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("psr-serve: {e}");
            ExitCode::from(2)
        }
    }
}

/// Derive the final observable line a serving run would emit for `spec`
/// from a `.done` snapshot produced by a direct `psr-engine` run — the CI
/// cross-check that the serving layer adds no drift.
fn cmd_observe(args: &[String]) -> ExitCode {
    let [spec_path, done_path] = args else {
        return usage();
    };
    let spec = match read_spec(spec_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("psr-serve: {e}");
            return ExitCode::from(2);
        }
    };
    let req = match JobRequest::parse(&spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("psr-serve: {e}");
            return ExitCode::from(2);
        }
    };
    let (lattice, meta) = match psr_lattice::io::load_v2(std::path::Path::new(done_path)) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("psr-serve: {done_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let ck = psr_core::SessionCheckpoint {
        lattice,
        time: meta.time,
        steps: meta.steps,
        rng: meta.rng,
    };
    let num_states = req.model.build().species().len();
    println!("{}", observe::line(num_states, &ck));
    ExitCode::SUCCESS
}
