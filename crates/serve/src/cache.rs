//! Content-addressed result cache with bounded size and LRU eviction.
//!
//! Results live as `<dir>/<key>.jsonl` where the key is the canonical spec
//! digest ([`crate::request`]), so the filesystem *is* the index: a restart
//! rescans the directory and seeds recency from file mtimes. Entries are
//! whole observable files written atomically (temp + rename), and because a
//! trajectory is a pure function of its spec, a hit returns bytes identical
//! to what a fresh run would produce — the bit-identity tests pin this.
//!
//! The total footprint is bounded: inserting past `max_bytes` evicts
//! least-recently-used entries (never the one just inserted, so a single
//! oversized result still lands and ages out later).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::UNIX_EPOCH;

struct Entry {
    bytes: u64,
    /// Logical clock value of the last touch (larger = more recent).
    used: u64,
}

struct State {
    entries: HashMap<String, Entry>,
    clock: u64,
    total: u64,
}

/// The cache handle (thread-safe).
pub struct ResultCache {
    dir: PathBuf,
    max_bytes: u64,
    inner: Mutex<State>,
}

impl ResultCache {
    /// Open (creating if needed) the cache directory, rescanning existing
    /// entries and seeding recency from their mtimes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the scan.
    pub fn open(dir: &Path, max_bytes: u64) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut found: Vec<(String, u64, u128)> = Vec::new();
        for e in std::fs::read_dir(dir)? {
            let e = e?;
            let name = e.file_name();
            let Some(key) = name.to_str().and_then(|n| n.strip_suffix(".jsonl")) else {
                continue;
            };
            let meta = e.metadata()?;
            let mtime = meta
                .modified()
                .ok()
                .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
                .map_or(0, |d| d.as_nanos());
            found.push((key.to_owned(), meta.len(), mtime));
        }
        found.sort_by_key(|(_, _, mtime)| *mtime);
        let mut state = State {
            entries: HashMap::new(),
            clock: 0,
            total: 0,
        };
        for (key, bytes, _) in found {
            state.clock += 1;
            state.total += bytes;
            state.entries.insert(
                key,
                Entry {
                    bytes,
                    used: state.clock,
                },
            );
        }
        Ok(ResultCache {
            dir: dir.to_owned(),
            max_bytes,
            inner: Mutex::new(state),
        })
    }

    fn path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.jsonl"))
    }

    /// Whether `key` is cached (does not touch recency).
    pub fn contains(&self, key: &str) -> bool {
        self.inner
            .lock()
            .expect("cache lock")
            .entries
            .contains_key(key)
    }

    /// The cached bytes for `key`, bumping its recency; `None` on a miss.
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        let mut state = self.inner.lock().expect("cache lock");
        if !state.entries.contains_key(key) {
            return None;
        }
        match std::fs::read(self.path(key)) {
            Ok(bytes) => {
                state.clock += 1;
                let clock = state.clock;
                state.entries.get_mut(key).expect("present").used = clock;
                Some(bytes)
            }
            Err(_) => {
                // The file vanished underneath us (manual deletion): drop
                // the index entry and report a miss.
                if let Some(e) = state.entries.remove(key) {
                    state.total -= e.bytes;
                }
                None
            }
        }
    }

    /// Insert (or replace) `key`, evicting LRU entries past `max_bytes`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the atomic write.
    pub fn put(&self, key: &str, bytes: &[u8]) -> std::io::Result<()> {
        let path = self.path(key);
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, &path)?;
        let mut state = self.inner.lock().expect("cache lock");
        state.clock += 1;
        let clock = state.clock;
        if let Some(old) = state.entries.insert(
            key.to_owned(),
            Entry {
                bytes: bytes.len() as u64,
                used: clock,
            },
        ) {
            state.total -= old.bytes;
        }
        state.total += bytes.len() as u64;
        while state.total > self.max_bytes {
            let victim = state
                .entries
                .iter()
                .filter(|(k, _)| k.as_str() != key)
                .min_by_key(|(_, e)| e.used)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else {
                break; // only the fresh insert remains; keep it
            };
            if let Some(e) = state.entries.remove(&victim) {
                state.total -= e.bytes;
            }
            let _ = std::fs::remove_file(self.path(&victim));
        }
        Ok(())
    }

    /// `(entry count, total bytes)` — for metrics and tests.
    pub fn stats(&self) -> (usize, u64) {
        let state = self.inner.lock().expect("cache lock");
        (state.entries.len(), state.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cache(tag: &str, max_bytes: u64) -> ResultCache {
        let dir = std::env::temp_dir().join(format!("psr_serve_cache_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        ResultCache::open(&dir, max_bytes).expect("open")
    }

    #[test]
    fn put_get_roundtrip() {
        let cache = temp_cache("roundtrip", 1024);
        assert_eq!(cache.get("k"), None);
        cache.put("k", b"line1\nline2\n").expect("put");
        assert!(cache.contains("k"));
        assert_eq!(cache.get("k").as_deref(), Some(&b"line1\nline2\n"[..]));
        assert_eq!(cache.stats(), (1, 12));
    }

    #[test]
    fn lru_eviction_spares_recently_used() {
        let cache = temp_cache("lru", 25);
        cache.put("a", &[1u8; 10]).expect("a");
        cache.put("b", &[2u8; 10]).expect("b");
        assert!(cache.get("a").is_some()); // a is now more recent than b
        cache.put("c", &[3u8; 10]).expect("c"); // 30 > 25: evict LRU = b
        assert!(cache.contains("a"));
        assert!(!cache.contains("b"));
        assert!(cache.contains("c"));
        assert_eq!(cache.stats(), (2, 20));
    }

    #[test]
    fn oversized_insert_survives_alone() {
        let cache = temp_cache("oversized", 5);
        cache.put("big", &[0u8; 100]).expect("put");
        assert!(cache.contains("big"));
        cache.put("next", &[0u8; 100]).expect("put");
        assert!(!cache.contains("big"));
        assert!(cache.contains("next"));
    }

    #[test]
    fn restart_rescans_the_directory() {
        let dir = std::env::temp_dir().join("psr_serve_cache_rescan");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = ResultCache::open(&dir, 1024).expect("open");
            cache.put("persist", b"data\n").expect("put");
        }
        let reopened = ResultCache::open(&dir, 1024).expect("reopen");
        assert_eq!(reopened.get("persist").as_deref(), Some(&b"data\n"[..]));
        assert_eq!(reopened.stats(), (1, 5));
    }

    #[test]
    fn replacing_an_entry_updates_accounting() {
        let cache = temp_cache("replace", 1024);
        cache.put("k", &[0u8; 10]).expect("put");
        cache.put("k", &[0u8; 4]).expect("replace");
        assert_eq!(cache.stats(), (1, 4));
    }
}
