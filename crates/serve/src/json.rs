//! Minimal JSON reader for the service's own documents.
//!
//! The repo's vendoring stance rules out serde, and the writer side
//! (`psr-engine::journal::JsonLine`) is already hand-rolled; this is the
//! matching reader. It handles exactly what the service emits and accepts —
//! objects, arrays, strings with the escapes `JsonLine` produces, numbers,
//! booleans, null — and keeps number tokens as raw text so `u64` ids and
//! bit-exact `f64`s round-trip without a detour through lossy conversions.

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// String (unescaped).
    Str(String),
    /// Number, kept as its raw token text.
    Num(String),
    /// Boolean.
    Bool(bool),
    /// Null.
    Null,
    /// Array.
    Arr(Vec<Value>),
    /// Object, fields in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number as `u64`, if this is an unsigned integer token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Field `key` of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        raw.parse::<f64>()
            .map_err(|_| format!("bad number {raw:?} at byte {start}"))?;
        Ok(Value::Num(raw.to_owned()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(
                                char::from_u32(code).ok_or("surrogate \\u escape unsupported")?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the head is validated as
                    // UTF-8 before parsing).
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "string is not UTF-8".to_owned())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected , or ] in array, found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => return Err(format!("expected , or }} in object, found {other:?}")),
            }
        }
    }
}

/// Parse one JSON document (the service only exchanges whole documents).
///
/// # Errors
///
/// Describes the first syntax problem with its byte offset.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes after document at {}", p.pos));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_engine::JsonLine;

    #[test]
    fn reads_what_jsonline_writes() {
        let line = JsonLine::event("submit")
            .str("tenant", "a\"b\\c\nd")
            .u64("id", 18446744073709551615)
            .f64("time", 1.5)
            .bool("cached", true)
            .finish();
        let v = parse(&line).expect("parse");
        assert_eq!(v.get("ev").and_then(Value::as_str), Some("submit"));
        assert_eq!(v.get("tenant").and_then(Value::as_str), Some("a\"b\\c\nd"));
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(u64::MAX));
        assert_eq!(v.get("time").and_then(Value::as_f64), Some(1.5));
        assert_eq!(v.get("cached").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn u64_precision_survives_as_raw_token() {
        // 2^53 + 1 is not representable as f64; the raw token keeps it.
        let v = parse("{\"n\":9007199254740993}").expect("parse");
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(9007199254740993));
    }

    #[test]
    fn arrays_and_nesting() {
        let v = parse(r#"{"counts":[400,0,0],"inner":{"x":null},"e":[]}"#).expect("parse");
        let Some(Value::Arr(counts)) = v.get("counts") else {
            panic!("counts must be an array");
        };
        assert_eq!(counts[0].as_u64(), Some(400));
        assert_eq!(v.get("inner").and_then(|i| i.get("x")), Some(&Value::Null));
        assert_eq!(v.get("e"), Some(&Value::Arr(vec![])));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1} x", "nul", "\"\\q\""] {
            assert!(parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn unicode_escapes_and_raw_unicode() {
        let v = parse("{\"s\":\"\\u0041é\"}").expect("parse");
        assert_eq!(v.get("s").and_then(Value::as_str), Some("Aé"));
    }
}
