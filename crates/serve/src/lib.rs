//! psr-serve: simulation-as-a-service in front of `psr-engine`.
//!
//! A long-running server that accepts simulation jobs over a hand-rolled
//! HTTP/1.1 + JSON API ([`http`], [`json`]) and executes them on a bounded
//! worker pool. Three properties define the design:
//!
//! - **Durability** ([`queue`]): every accepted job is journaled to
//!   `queue.jsonl` *before* the ACK leaves the socket; a killed server
//!   replays the journal on restart and resumes in-flight jobs from their
//!   engine checkpoints, bit-identically.
//! - **Content addressing** ([`request`], [`sha256`], [`cache`]): a job's
//!   identity is the SHA-256 of its canonical spec text. Trajectories are
//!   pure functions of that spec, so the result cache is semantically
//!   lossless — a cached response is byte-identical to a fresh run — and
//!   results are shared across tenants.
//! - **Bounded everything** ([`server`]): request head/body sizes, the
//!   accept path (429 + `Retry-After` past the high-water mark, cache hits
//!   exempt), the connection count (503), and the cache footprint (LRU
//!   eviction). SIGTERM drains gracefully: workers checkpoint in-flight
//!   jobs and exit.
//!
//! Observables ([`observe`]) are derived from the durable checkpoint stream
//! (`psr-engine`'s `BlockObserver` seam), so a streamed line is never ahead
//! of the state a crash would resume from.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod http;
pub mod json;
pub mod observe;
pub mod queue;
pub mod request;
pub mod server;
pub mod sha256;
pub mod worker;
