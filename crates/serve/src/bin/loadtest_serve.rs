//! Load-test driver: N concurrent clients against an in-process server.
//!
//! Clients submit a mix of *hot* specs (a small set repeated, so they hit
//! the content-addressed cache after the first completion) and *cold* specs
//! (unique seeds, every one a real simulation), then poll to completion and
//! fetch the result. Per-request end-to-end latencies are recorded
//! client-side and reported as exact p50/p99 over the sorted samples — no
//! histogram buckets — because the acceptance gate compares hit p99 against
//! cold p99.
//!
//! Output (JSON, for `scripts/check_bench.sh`):
//!
//! ```json
//! {"clients":8,"requests":240,"throughput_rps":…,"cache_hit_rate":…,
//!  "hit_p50_us":…,"hit_p99_us":…,"cold_p50_us":…,"cold_p99_us":…,
//!  "hit_speedup_p99":…,
//!  "fresh_conn_p50_us":…,"pooled_conn_p50_us":…,"keepalive_speedup_p50":…}
//! ```
//!
//! The `*_conn_p50_us` pair isolates what HTTP keep-alive saves: p50 of
//! `/healthz` round trips over a fresh TCP connection each vs one pooled
//! connection.

use psr_serve::client;
use psr_serve::json;
use psr_serve::server::{start, ServerConfig};
use std::io::Write as _;
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Args {
    clients: usize,
    requests: usize,
    hot_frac: f64,
    side: u32,
    steps: u64,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        clients: 8,
        requests: 30,
        hot_frac: 0.5,
        side: 40,
        steps: 400,
        out: "BENCH_serve.json".to_owned(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut val = || it.next().ok_or(format!("{arg} needs a value"));
        match arg.as_str() {
            "--clients" => a.clients = val()?.parse().map_err(|e| format!("clients: {e}"))?,
            "--requests" => a.requests = val()?.parse().map_err(|e| format!("requests: {e}"))?,
            "--hot-frac" => a.hot_frac = val()?.parse().map_err(|e| format!("hot-frac: {e}"))?,
            "--side" => a.side = val()?.parse().map_err(|e| format!("side: {e}"))?,
            "--steps" => a.steps = val()?.parse().map_err(|e| format!("steps: {e}"))?,
            "--out" => a.out = val()?.clone(),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(a)
}

fn spec(side: u32, steps: u64, seed: u64) -> String {
    format!("model = zgb 0.51 5\nalgorithm = ndca\nside = {side}\nseed = {seed}\nsteps = {steps}\n")
}

struct Sample {
    us: u64,
    hit: bool,
}

/// Submit → wait → fetch one spec over one pooled keep-alive connection;
/// returns the e2e latency and whether the submission was served from the
/// cache.
fn run_one(pool: &client::Pool, tenant: &str, body: &str) -> Result<Sample, String> {
    let t0 = Instant::now();
    let timeout = Duration::from_secs(60);
    let resp = loop {
        let r = pool.post("/v1/jobs", &[("x-tenant", tenant)], body.as_bytes())?;
        if r.status == 429 {
            // Honour Retry-After: the server is telling us to back off.
            std::thread::sleep(Duration::from_millis(100));
            continue;
        }
        if r.status != 200 && r.status != 202 {
            return Err(format!("submit: {} {}", r.status, r.text()));
        }
        break r;
    };
    let v = json::parse(resp.text().trim()).map_err(|e| format!("submit body: {e}"))?;
    let id = v
        .get("id")
        .and_then(json::Value::as_u64)
        .ok_or("submit body lacks id")?;
    let hit = v.get("cached").and_then(json::Value::as_bool) == Some(true);
    let deadline = Instant::now() + timeout;
    loop {
        let st = pool.get(&format!("/v1/jobs/{id}"))?;
        let status = json::parse(st.text().trim())
            .ok()
            .and_then(|v| {
                v.get("status")
                    .and_then(json::Value::as_str)
                    .map(String::from)
            })
            .unwrap_or_default();
        match status.as_str() {
            "done" => break,
            "failed" => return Err(format!("job {id} failed: {}", st.text())),
            _ if Instant::now() > deadline => return Err(format!("job {id} timed out")),
            _ => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    let result = pool.get(&format!("/v1/jobs/{id}/result"))?;
    if result.status != 200 || result.body.is_empty() {
        return Err(format!("result: {}", result.status));
    }
    Ok(Sample {
        us: t0.elapsed().as_micros() as u64,
        hit,
    })
}

/// Isolate the connection cost keep-alive removes: `n` `/healthz` round
/// trips on a fresh connection each vs through one pooled connection.
/// Job latencies are dominated by simulation time, so this is where the
/// keep-alive win is visible.
fn ping_bench(addr: &str, n: usize) -> Result<(Vec<u64>, Vec<u64>), String> {
    let timeout = Duration::from_secs(10);
    let mut fresh = Vec::with_capacity(n);
    for _ in 0..n {
        let t0 = Instant::now();
        let r = client::get(addr, "/healthz", timeout)?;
        if r.status != 200 {
            return Err(format!("healthz: {}", r.status));
        }
        fresh.push(t0.elapsed().as_micros() as u64);
    }
    let pool = client::Pool::new(addr, timeout);
    let mut pooled = Vec::with_capacity(n);
    for _ in 0..n {
        let t0 = Instant::now();
        let r = pool.get("/healthz")?;
        if r.status != 200 {
            return Err(format!("healthz: {}", r.status));
        }
        pooled.push(t0.elapsed().as_micros() as u64);
    }
    fresh.sort_unstable();
    pooled.sort_unstable();
    Ok((fresh, pooled))
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadtest_serve: {e}");
            return ExitCode::from(1);
        }
    };
    let state_dir = std::env::temp_dir().join(format!("psr_loadtest_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        state_dir: state_dir.clone(),
        workers: 4,
        queue_cap: 4096,
        max_connections: 256,
        ..ServerConfig::default()
    };
    let handle = match start(cfg, Arc::new(AtomicBool::new(false))) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("loadtest_serve: start: {e}");
            return ExitCode::from(2);
        }
    };
    let addr = handle.addr.to_string();
    eprintln!(
        "loadtest_serve: {} clients x {} requests (hot fraction {}) against {}",
        args.clients, args.requests, args.hot_frac, addr
    );

    // Warm the hot set so hot requests measure the cache path, not the
    // first computation of it.
    let hot_specs: Vec<String> = (0..4)
        .map(|i| spec(args.side, args.steps, 1000 + i))
        .collect();
    let warm_pool = client::Pool::new(&addr, Duration::from_secs(60));
    for s in &hot_specs {
        if let Err(e) = run_one(&warm_pool, "warmup", s) {
            eprintln!("loadtest_serve: warmup: {e}");
            return ExitCode::from(2);
        }
    }
    drop(warm_pool);

    // Fresh-vs-pooled connection cost, measured before the load phase so
    // the numbers aren't polluted by worker contention.
    let (fresh_ping, pooled_ping) = match ping_bench(&addr, 200) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("loadtest_serve: ping bench: {e}");
            return ExitCode::from(2);
        }
    };

    let samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::new()));
    let errors: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let t_start = Instant::now();
    let mut threads = Vec::new();
    for c in 0..args.clients {
        let addr = addr.clone();
        let hot_specs = hot_specs.clone();
        let samples = Arc::clone(&samples);
        let errors = Arc::clone(&errors);
        let (requests, hot_frac, side, steps) =
            (args.requests, args.hot_frac, args.side, args.steps);
        threads.push(std::thread::spawn(move || {
            let tenant = format!("tenant-{c}");
            // One pool per client: submit → poll → result for every request
            // this thread issues share a small set of kept-alive sockets.
            let pool = client::Pool::new(&addr, Duration::from_secs(60));
            for r in 0..requests {
                // Deterministic hot/cold interleave per client: the first
                // `hot_frac` of each window of 100 indices is hot.
                let hot = ((r * 7919 + c * 104729) % 100) as f64 / 100.0 < hot_frac;
                let body = if hot {
                    hot_specs[(r + c) % hot_specs.len()].clone()
                } else {
                    // Unique seed: never cached before this run.
                    spec(side, steps, 1_000_000 + (c * requests + r) as u64)
                };
                match run_one(&pool, &tenant, &body) {
                    Ok(s) => samples.lock().expect("samples").push(s),
                    Err(e) => errors.lock().expect("errors").push(e),
                }
            }
        }));
    }
    for t in threads {
        let _ = t.join();
    }
    let wall = t_start.elapsed();
    handle.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&state_dir);

    let errors = errors.lock().expect("errors");
    if !errors.is_empty() {
        eprintln!(
            "loadtest_serve: {} request(s) failed: {}",
            errors.len(),
            errors[0]
        );
        return ExitCode::from(2);
    }
    let samples = samples.lock().expect("samples");
    let mut hits: Vec<u64> = samples.iter().filter(|s| s.hit).map(|s| s.us).collect();
    let mut colds: Vec<u64> = samples.iter().filter(|s| !s.hit).map(|s| s.us).collect();
    hits.sort_unstable();
    colds.sort_unstable();
    let total = samples.len();
    let hit_p99 = percentile(&hits, 0.99);
    let cold_p99 = percentile(&colds, 0.99);
    let speedup = if hit_p99 > 0 {
        cold_p99 as f64 / hit_p99 as f64
    } else {
        0.0
    };
    let fresh_p50 = percentile(&fresh_ping, 0.5);
    let pooled_p50 = percentile(&pooled_ping, 0.5);
    let keepalive_speedup = if pooled_p50 > 0 {
        fresh_p50 as f64 / pooled_p50 as f64
    } else {
        0.0
    };
    let report = format!(
        "{{\"clients\":{},\"requests\":{},\"wall_s\":{:.3},\"throughput_rps\":{:.2},\
         \"hits\":{},\"colds\":{},\"cache_hit_rate\":{:.4},\
         \"hit_p50_us\":{},\"hit_p99_us\":{},\"cold_p50_us\":{},\"cold_p99_us\":{},\
         \"hit_speedup_p99\":{:.2},\
         \"fresh_conn_p50_us\":{},\"pooled_conn_p50_us\":{},\"keepalive_speedup_p50\":{:.2}}}",
        args.clients,
        total,
        wall.as_secs_f64(),
        total as f64 / wall.as_secs_f64(),
        hits.len(),
        colds.len(),
        hits.len() as f64 / total.max(1) as f64,
        percentile(&hits, 0.5),
        hit_p99,
        percentile(&colds, 0.5),
        cold_p99,
        speedup,
        fresh_p50,
        pooled_p50,
        keepalive_speedup,
    );
    println!("{report}");
    match std::fs::File::create(&args.out).and_then(|mut f| writeln!(f, "{report}")) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("loadtest_serve: writing {}: {e}", args.out);
            ExitCode::from(2)
        }
    }
}
