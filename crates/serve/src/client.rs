//! Minimal blocking HTTP client for the service's own API.
//!
//! Responses are parsed *incrementally* — the reader stops as soon as the
//! framing says the body is complete (`Content-Length` or the terminating
//! chunk), never waiting for EOF — which is what makes connection reuse
//! possible against the keep-alive server. Two entry points:
//!
//! - the free functions ([`send`], [`get`], [`post`]) open a fresh
//!   connection per request (one-shot CLI calls, error-path tests);
//! - a [`Pool`] keeps a handful of idle connections and reuses them
//!   across requests, retrying once on a fresh connection when a reused
//!   one turns out to have been closed by the server in the meantime.
//!
//! All of the callers need *exact* bytes back, so the body is returned
//! untouched.

use crate::http::Request;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

/// Idle connections a [`Pool`] keeps per target address.
const POOL_CAP: usize = 4;

/// One parsed HTTP response.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Decoded body bytes (chunked framing removed).
    pub body: Vec<u8>,
}

impl Response {
    /// First value of header `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Whether the connection that carried this response can take another
    /// request: length-delimited framing and no `Connection: close`.
    fn reusable(&self, eof_framed: bool) -> bool {
        !eof_framed
            && !self
                .header("connection")
                .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Status line + headers parsed off the front of a buffer.
struct Head {
    status: u16,
    headers: Vec<(String, String)>,
    end: usize,
}

fn parse_head(raw: &[u8]) -> Result<Option<Head>, String> {
    let Some(end) = raw.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4) else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&raw[..end]).map_err(|_| "response head is not UTF-8")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if let Some((k, v)) = line.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_owned()));
        }
    }
    Ok(Some(Head {
        status,
        headers,
        end,
    }))
}

/// How the response body is delimited.
enum Framing {
    Length(usize),
    Chunked,
    /// Neither header: the body runs to connection close.
    Eof,
}

fn framing(headers: &[(String, String)]) -> Framing {
    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.contains("chunked"))
    {
        return Framing::Chunked;
    }
    match headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        Some(n) => Framing::Length(n),
        None => Framing::Eof,
    }
}

/// Decode a chunked body from the front of `rest`. `Ok(None)` means more
/// bytes are needed; `Ok(Some((body, consumed)))` is a complete body.
fn decode_chunked(rest: &[u8]) -> Result<Option<(Vec<u8>, usize)>, String> {
    let mut body = Vec::new();
    let mut at = 0usize;
    loop {
        let Some(line_end) = rest[at..].windows(2).position(|w| w == b"\r\n") else {
            return Ok(None);
        };
        let size_text = std::str::from_utf8(&rest[at..at + line_end])
            .map_err(|_| "chunk size is not UTF-8")?
            .trim();
        let size = usize::from_str_radix(size_text, 16)
            .map_err(|_| format!("bad chunk size {size_text:?}"))?;
        at += line_end + 2;
        if size == 0 {
            // The terminating chunk ends with its own blank line.
            if rest.len() < at + 2 {
                return Ok(None);
            }
            return Ok(Some((body, at + 2)));
        }
        if rest.len() < at + size + 2 {
            return Ok(None);
        }
        body.extend_from_slice(&rest[at..at + size]);
        at += size + 2;
    }
}

/// Try to parse one complete response off the front of `raw`. `Ok(None)`
/// means the framing needs more bytes — including the EOF-delimited case,
/// which only [`parse_at_eof`] can finish.
fn try_parse(raw: &[u8]) -> Result<Option<(Response, usize)>, String> {
    let Some(head) = parse_head(raw)? else {
        return Ok(None);
    };
    let rest = &raw[head.end..];
    let (body, consumed) = match framing(&head.headers) {
        Framing::Length(n) => {
            if rest.len() < n {
                return Ok(None);
            }
            (rest[..n].to_vec(), head.end + n)
        }
        Framing::Chunked => match decode_chunked(rest)? {
            Some((body, used)) => (body, head.end + used),
            None => return Ok(None),
        },
        Framing::Eof => return Ok(None),
    };
    Ok(Some((
        Response {
            status: head.status,
            headers: head.headers,
            body,
        },
        consumed,
    )))
}

/// Finish parsing once the peer closed the connection: an EOF-delimited
/// body completes here; any other framing still incomplete is truncation.
fn parse_at_eof(raw: &[u8]) -> Result<Response, String> {
    let head = parse_head(raw)?.ok_or("response head never terminated")?;
    let rest = &raw[head.end..];
    let body = match framing(&head.headers) {
        Framing::Eof => rest.to_vec(),
        Framing::Length(n) => {
            return Err(format!("body truncated: {} of {n} bytes", rest.len()));
        }
        Framing::Chunked => return Err("chunked body truncated".to_owned()),
    };
    Ok(Response {
        status: head.status,
        headers: head.headers,
        body,
    })
}

/// Read exactly one response off the stream, stopping at the framing
/// boundary. Returns the response and whether the connection can be
/// reused for another request.
fn read_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> Result<(Response, bool), String> {
    let mut chunk = [0u8; 8192];
    loop {
        if let Some((resp, consumed)) = try_parse(buf)? {
            buf.drain(..consumed);
            let reusable = resp.reusable(false) && buf.is_empty();
            return Ok((resp, reusable));
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                let resp = parse_at_eof(buf)?;
                buf.clear();
                return Ok((resp, false));
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(format!("read: {e}")),
        }
    }
}

fn connect(addr: &str, timeout: Duration) -> Result<TcpStream, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let _ = stream.set_nodelay(true);
    Ok(stream)
}

/// Write one request and read its response. Returns the stream too when
/// it is still good for another request.
fn send_on(mut stream: TcpStream, req: &Request) -> Result<(Response, Option<TcpStream>), String> {
    stream
        .write_all(&req.render())
        .map_err(|e| format!("write: {e}"))?;
    let mut buf = Vec::new();
    let (resp, reusable) = read_response(&mut stream, &mut buf)?;
    Ok((resp, reusable.then_some(stream)))
}

/// Send `req` to `addr` on a fresh connection and read the full response.
///
/// # Errors
///
/// Connection, timeout, and malformed-response errors.
pub fn send(addr: &str, req: &Request, timeout: Duration) -> Result<Response, String> {
    let stream = connect(addr, timeout)?;
    let (resp, _) = send_on(stream, req)?;
    Ok(resp)
}

/// A small keep-alive connection pool for one target address.
///
/// Reuse is opportunistic: requests borrow an idle connection when one
/// exists and return it after a reusable response. A reused connection the
/// server has since closed fails the write or read — the request is
/// retried once on a fresh connection, which is always correct here
/// because every API endpoint is idempotent or journaled by content key.
pub struct Pool {
    addr: String,
    timeout: Duration,
    idle: Mutex<Vec<TcpStream>>,
}

impl Pool {
    /// A pool for `addr` with a per-request I/O `timeout`.
    pub fn new(addr: &str, timeout: Duration) -> Pool {
        Pool {
            addr: addr.to_owned(),
            timeout,
            idle: Mutex::new(Vec::new()),
        }
    }

    fn park(&self, stream: TcpStream) {
        let mut idle = self.idle.lock().expect("pool lock");
        if idle.len() < POOL_CAP {
            idle.push(stream);
        }
    }

    /// Send `req`, reusing an idle connection when possible.
    ///
    /// # Errors
    ///
    /// See [`send`]; errors on a *reused* connection are retried once on a
    /// fresh one before surfacing.
    pub fn send(&self, req: &Request) -> Result<Response, String> {
        let pooled = self.idle.lock().expect("pool lock").pop();
        if let Some(stream) = pooled {
            // On error the pooled connection was stale: fall through and
            // retry once on a fresh one.
            if let Ok((resp, keep)) = send_on(stream, req) {
                if let Some(stream) = keep {
                    self.park(stream);
                }
                return Ok(resp);
            }
        }
        let stream = connect(&self.addr, self.timeout)?;
        let (resp, keep) = send_on(stream, req)?;
        if let Some(stream) = keep {
            self.park(stream);
        }
        Ok(resp)
    }

    /// GET `path` through the pool.
    ///
    /// # Errors
    ///
    /// See [`Pool::send`].
    pub fn get(&self, path: &str) -> Result<Response, String> {
        self.send(&Request {
            method: "GET".to_owned(),
            target: path.to_owned(),
            headers: vec![("host".to_owned(), self.addr.clone())],
            body: Vec::new(),
        })
    }

    /// POST `body` to `path` through the pool.
    ///
    /// # Errors
    ///
    /// See [`Pool::send`].
    pub fn post(
        &self,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> Result<Response, String> {
        let mut hs = vec![("host".to_owned(), self.addr.clone())];
        for (k, v) in headers {
            hs.push(((*k).to_owned(), (*v).to_owned()));
        }
        self.send(&Request {
            method: "POST".to_owned(),
            target: path.to_owned(),
            headers: hs,
            body: body.to_vec(),
        })
    }
}

/// GET `path` from `addr`.
///
/// # Errors
///
/// See [`send`].
pub fn get(addr: &str, path: &str, timeout: Duration) -> Result<Response, String> {
    send(
        addr,
        &Request {
            method: "GET".to_owned(),
            target: path.to_owned(),
            headers: vec![("host".to_owned(), addr.to_owned())],
            body: Vec::new(),
        },
        timeout,
    )
}

/// POST `body` to `path` at `addr` with extra headers.
///
/// # Errors
///
/// See [`send`].
pub fn post(
    addr: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
) -> Result<Response, String> {
    let mut hs = vec![("host".to_owned(), addr.to_owned())];
    for (k, v) in headers {
        hs.push(((*k).to_owned(), (*v).to_owned()));
    }
    send(
        addr,
        &Request {
            method: "POST".to_owned(),
            target: path.to_owned(),
            headers: hs,
            body: body.to_vec(),
        },
        timeout,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_content_length_responses() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 5\r\n\r\nhello";
        let (r, consumed) = try_parse(raw).expect("parse").expect("complete");
        assert_eq!(consumed, raw.len());
        assert_eq!(r.status, 200);
        assert_eq!(r.header("content-type"), Some("text/plain"));
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn decodes_chunked_bodies() {
        let raw =
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
        let (r, consumed) = try_parse(raw).expect("parse").expect("complete");
        assert_eq!(consumed, raw.len());
        assert_eq!(r.body, b"hello world");
    }

    #[test]
    fn incomplete_framing_asks_for_more() {
        // Truncated length-delimited body: not an error, just incomplete.
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort";
        assert!(try_parse(raw).expect("no error").is_none());
        // Truncated chunked body likewise.
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhel";
        assert!(try_parse(raw).expect("no error").is_none());
        // At EOF both become hard errors.
        assert!(parse_at_eof(b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort").is_err());
        assert!(
            parse_at_eof(b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nff\r\nnope")
                .is_err()
        );
    }

    #[test]
    fn eof_framed_bodies_complete_only_at_eof() {
        let raw = b"HTTP/1.1 200 OK\r\n\r\neverything until close";
        assert!(try_parse(raw).expect("no error").is_none());
        let r = parse_at_eof(raw).expect("parse at eof");
        assert_eq!(r.body, b"everything until close");
    }

    #[test]
    fn keep_alive_responses_are_reusable() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\nok";
        let (r, _) = try_parse(raw).expect("parse").expect("complete");
        assert!(r.reusable(false));
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok";
        let (r, _) = try_parse(raw).expect("parse").expect("complete");
        assert!(!r.reusable(false));
        assert!(!r.reusable(true), "EOF-framed is never reusable");
    }
}
