//! Minimal blocking HTTP client for the service's own API.
//!
//! One request per connection (the server always answers
//! `Connection: close`), `Content-Length` and chunked response bodies, hard
//! timeouts. Used by the CLI subcommands, the load-test driver, and the
//! integration tests — all of which need *exact* bytes back, so the body is
//! returned untouched.

use crate::http::Request;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed HTTP response.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Decoded body bytes (chunked framing removed).
    pub body: Vec<u8>,
}

impl Response {
    /// First value of header `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn parse_response(raw: &[u8]) -> Result<Response, String> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .ok_or("response head never terminated")?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| "response head is not UTF-8")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if let Some((k, v)) = line.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_owned()));
        }
    }
    let rest = &raw[head_end..];
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.contains("chunked"));
    let body = if chunked {
        decode_chunked(rest)?
    } else {
        // Content-Length if present, else read-to-EOF semantics (the
        // caller already read until close).
        match headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
        {
            Some(n) if rest.len() >= n => rest[..n].to_vec(),
            Some(n) => return Err(format!("body truncated: {} of {n} bytes", rest.len())),
            None => rest.to_vec(),
        }
    };
    Ok(Response {
        status,
        headers,
        body,
    })
}

fn decode_chunked(mut rest: &[u8]) -> Result<Vec<u8>, String> {
    let mut body = Vec::new();
    loop {
        let line_end = rest
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or("chunk size line never terminated")?;
        let size_text = std::str::from_utf8(&rest[..line_end])
            .map_err(|_| "chunk size is not UTF-8")?
            .trim();
        let size = usize::from_str_radix(size_text, 16)
            .map_err(|_| format!("bad chunk size {size_text:?}"))?;
        rest = &rest[line_end + 2..];
        if size == 0 {
            return Ok(body);
        }
        if rest.len() < size + 2 {
            return Err("chunk truncated".to_owned());
        }
        body.extend_from_slice(&rest[..size]);
        rest = &rest[size + 2..];
    }
}

/// Send `req` to `addr` and read the full response.
///
/// # Errors
///
/// Connection, timeout, and malformed-response errors.
pub fn send(addr: &str, req: &Request, timeout: Duration) -> Result<Response, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    stream
        .write_all(&req.render())
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(format!("read: {e}")),
        }
    }
    parse_response(&raw)
}

/// GET `path` from `addr`.
///
/// # Errors
///
/// See [`send`].
pub fn get(addr: &str, path: &str, timeout: Duration) -> Result<Response, String> {
    send(
        addr,
        &Request {
            method: "GET".to_owned(),
            target: path.to_owned(),
            headers: vec![("host".to_owned(), addr.to_owned())],
            body: Vec::new(),
        },
        timeout,
    )
}

/// POST `body` to `path` at `addr` with extra headers.
///
/// # Errors
///
/// See [`send`].
pub fn post(
    addr: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
) -> Result<Response, String> {
    let mut hs = vec![("host".to_owned(), addr.to_owned())];
    for (k, v) in headers {
        hs.push(((*k).to_owned(), (*v).to_owned()));
    }
    send(
        addr,
        &Request {
            method: "POST".to_owned(),
            target: path.to_owned(),
            headers: hs,
            body: body.to_vec(),
        },
        timeout,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_content_length_responses() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 5\r\n\r\nhello";
        let r = parse_response(raw).expect("parse");
        assert_eq!(r.status, 200);
        assert_eq!(r.header("content-type"), Some("text/plain"));
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn decodes_chunked_bodies() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
        let r = parse_response(raw).expect("parse");
        assert_eq!(r.body, b"hello world");
    }

    #[test]
    fn rejects_truncated_bodies() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort";
        assert!(parse_response(raw).is_err());
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nff\r\nnope";
        assert!(parse_response(raw).is_err());
    }
}
