//! The bounded worker pool: queue → engine → cache.
//!
//! Each worker loops on [`Queue::take`], first checking the result cache
//! (a submission queued behind an identical spec is satisfied without a
//! run), then executing the job through `psr-engine`'s checkpointed
//! [`JobRun`] with an observer that appends one observable line per durable
//! checkpoint. Completion order matters for crash recovery:
//!
//! 1. the engine writes the `.done` snapshot,
//! 2. the partial observable file gains its final line,
//! 3. the file moves into the content-addressed cache,
//! 4. the queue journals `done`.
//!
//! A crash between any two steps is repaired on the next pickup: a job
//! whose key already has a `.done` snapshot skips straight to steps 2–4,
//! and [`Partial::reconcile`]/[`Partial::ensure_final`] heal the
//! observable file. A graceful drain (the cancel flag) interrupts the run
//! at the next checkpoint and releases the job back to pending, un-acked
//! work intact.

use crate::cache::ResultCache;
use crate::observe::{self, Partial};
use crate::queue::{Job, Queue};
use psr_core::SessionCheckpoint;
use psr_engine::{BlockObserver, CheckpointStore, JobRun, Journal, JsonLine, Registry, RunOutcome};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Everything the serving layer shares between the accept loop and the
/// worker pool.
pub struct Ctx {
    /// The durable queue.
    pub queue: Queue,
    /// The content-addressed result cache.
    pub cache: ResultCache,
    /// Engine checkpoints, keyed by cache key.
    pub store: CheckpointStore,
    /// Service event journal.
    pub journal: Journal,
    /// Metrics registry (served at `/metrics`).
    pub metrics: Registry,
    /// Raised to drain: running jobs checkpoint and stop.
    pub cancel: AtomicBool,
    /// Directory of in-progress observable files.
    pub partials: PathBuf,
}

impl Ctx {
    /// The partial observable file for `key`.
    pub fn partial(&self, key: &str) -> Partial {
        Partial::new(&self.partials, key)
    }
}

/// Observer appending one observable line per durable checkpoint. Append
/// failures are stashed rather than panicking mid-run (the checkpoint
/// itself already landed; the worker surfaces the error after the run).
struct PartialObserver<'a> {
    partial: &'a Partial,
    num_states: usize,
    error: Mutex<Option<String>>,
}

impl BlockObserver for PartialObserver<'_> {
    fn on_checkpoint(&self, _job: &str, ck: &SessionCheckpoint, _done: bool) {
        let line = observe::line(self.num_states, ck);
        if let Err(e) = self.partial.append(&line) {
            *self.error.lock().expect("observer lock") = Some(format!("appending observable: {e}"));
        }
    }
}

/// Execute one job to a cached result. `Ok(false)` means the run was
/// interrupted by the drain flag (checkpointed, still pending).
fn execute(ctx: &Ctx, job: &Job) -> Result<bool, String> {
    let key = &job.key;
    let num_states = job.req.model.build().species().len();
    let partial = ctx.partial(key);
    if !ctx.store.is_done(key) {
        let resume = ctx
            .store
            .load(key)
            .map_err(|e| format!("loading checkpoint: {e}"))?;
        partial
            .reconcile(num_states, resume.as_ref())
            .map_err(|e| format!("reconciling partial: {e}"))?;
        let observer = PartialObserver {
            partial: &partial,
            num_states,
            error: Mutex::new(None),
        };
        let spec = job.req.to_job_spec(key);
        let run = JobRun {
            spec: &spec,
            store: &ctx.store,
            journal: &ctx.journal,
            metrics: &ctx.metrics,
            cancel: &ctx.cancel,
            deadline: None,
            ignore_faults: true,
            attempt: 0,
            observer: &observer,
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run.run()))
            .map_err(|p| {
                let msg = p
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| p.downcast_ref::<&str>().copied())
                    .unwrap_or("panic");
                format!("job panicked: {msg}")
            })??;
        if let Some(e) = observer.error.into_inner().expect("observer lock") {
            return Err(e);
        }
        if let RunOutcome::Interrupted { .. } = outcome {
            return Ok(false);
        }
    }
    // The `.done` snapshot is durable; heal the observable file (the final
    // line is missing when the job completed in a previous life) and
    // promote it into the cache.
    let (lattice, meta) = psr_lattice::io::load_v2(&ctx.store.done_path(key))
        .map_err(|e| format!("loading final snapshot: {e}"))?;
    let done = SessionCheckpoint {
        lattice,
        time: meta.time,
        steps: meta.steps,
        rng: meta.rng,
    };
    partial
        .ensure_final(num_states, &done)
        .map_err(|e| format!("finalising observables: {e}"))?;
    let bytes = partial
        .read()
        .map_err(|e| format!("reading observables: {e}"))?;
    ctx.cache
        .put(key, &bytes)
        .map_err(|e| format!("caching result: {e}"))?;
    partial.remove();
    Ok(true)
}

fn work_loop(ctx: &Ctx) {
    while let Some(job) = ctx.queue.take() {
        let t0 = Instant::now();
        if ctx.cache.get(&job.key).is_some() {
            // Queued behind an identical spec that finished first.
            let _ = ctx.queue.complete_key(&job.key);
            ctx.metrics.counter("serve.worker_hits").add(1);
            continue;
        }
        match execute(ctx, &job) {
            Ok(true) => {
                if let Err(e) = ctx.queue.complete_key(&job.key) {
                    ctx.journal.log(
                        JsonLine::event("queue_error")
                            .str("key", &job.key)
                            .str("error", &e.to_string()),
                    );
                }
                ctx.metrics.counter("serve.completed").add(1);
                ctx.metrics
                    .histogram("serve.cold_us")
                    .record(t0.elapsed().as_micros() as u64);
            }
            Ok(false) => ctx.queue.release(job.id),
            Err(e) => {
                ctx.journal.log(
                    JsonLine::event("job_failed")
                        .str("key", &job.key)
                        .str("error", &e),
                );
                let _ = ctx.queue.fail_key(&job.key, &e);
                ctx.metrics.counter("serve.failed").add(1);
            }
        }
        ctx.metrics
            .gauge("serve.queue_depth")
            .set(ctx.queue.in_flight() as f64);
    }
}

/// Spawn `n` workers over the shared context.
pub fn spawn_workers(n: usize, ctx: &Arc<Ctx>) -> Vec<JoinHandle<()>> {
    (0..n)
        .map(|i| {
            let ctx = Arc::clone(ctx);
            std::thread::Builder::new()
                .name(format!("psr-serve-worker-{i}"))
                .spawn(move || work_loop(&ctx))
                .expect("spawn worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::JobRequest;

    fn test_ctx(tag: &str) -> Arc<Ctx> {
        let dir = std::env::temp_dir().join(format!("psr_serve_worker_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("partials")).expect("mkdir");
        Arc::new(Ctx {
            queue: Queue::open(&dir.join("queue.jsonl")).expect("queue"),
            cache: ResultCache::open(&dir.join("cache"), 1 << 20).expect("cache"),
            store: CheckpointStore::open(&dir.join("ckpts")).expect("store"),
            journal: Journal::create(&dir.join("serve.jsonl")).expect("journal"),
            metrics: Registry::new(),
            cancel: AtomicBool::new(false),
            partials: dir.join("partials"),
        })
    }

    fn req(seed: u64) -> JobRequest {
        JobRequest::parse(&format!(
            "model = zgb 0.5 5\nalgorithm = ndca\nside = 10\nseed = {seed}\nsteps = 30\ncheckpoint_every = 10"
        ))
        .expect("req")
    }

    #[test]
    fn executes_a_job_into_the_cache() {
        let ctx = test_ctx("exec");
        let r = req(3);
        let id = ctx.queue.submit("t", &r).expect("submit");
        let job = ctx.queue.take().expect("take");
        assert!(execute(&ctx, &job).expect("execute"));
        ctx.queue.complete_key(&job.key).expect("complete");
        let bytes = ctx.cache.get(&r.cache_key()).expect("cached");
        // One line per checkpoint (10, 20) plus the final step 30.
        let text = String::from_utf8(bytes).expect("utf8");
        assert_eq!(text.lines().count(), 3);
        assert!(text.lines().last().expect("line").contains("\"step\":30"));
        assert_eq!(ctx.queue.status(id).expect("status").state.as_str(), "done");
        // The partial was promoted, not left behind.
        assert!(ctx.partial(&job.key).read().expect("read").is_empty());
    }

    #[test]
    fn cached_result_is_byte_identical_to_a_fresh_run() {
        let ctx_a = test_ctx("bits_a");
        let ctx_b = test_ctx("bits_b");
        let r = req(9);
        for ctx in [&ctx_a, &ctx_b] {
            ctx.queue.submit("t", &r).expect("submit");
            let job = ctx.queue.take().expect("take");
            assert!(execute(ctx, &job).expect("execute"));
        }
        assert_eq!(
            ctx_a.cache.get(&r.cache_key()).expect("a"),
            ctx_b.cache.get(&r.cache_key()).expect("b"),
            "two independent servers must produce identical result bytes"
        );
    }

    #[test]
    fn drain_interrupts_resumably_and_resume_matches_clean_bits() {
        use std::sync::atomic::Ordering;
        let ctx = test_ctx("drain");
        let r = req(5);
        ctx.queue.submit("t", &r).expect("submit");
        let job = ctx.queue.take().expect("take");
        ctx.cancel.store(true, Ordering::SeqCst);
        assert!(
            !execute(&ctx, &job).expect("interrupted"),
            "drain must stop the run"
        );
        ctx.queue.release(job.id);
        assert!(ctx.store.load(&job.key).expect("load").is_some());
        // "Restart": clear the flag, pick the job up again.
        ctx.cancel.store(false, Ordering::SeqCst);
        let job = ctx.queue.take().expect("retake");
        assert!(execute(&ctx, &job).expect("resumed"));
        let resumed = ctx.cache.get(&r.cache_key()).expect("cached");
        let clean = test_ctx("drain_clean");
        clean.queue.submit("t", &r).expect("submit");
        let job = clean.queue.take().expect("take");
        assert!(execute(&clean, &job).expect("clean"));
        assert_eq!(resumed, clean.cache.get(&r.cache_key()).expect("cached"));
    }
}
