//! Hand-rolled HTTP/1.1: request parsing and response rendering.
//!
//! The service speaks just enough HTTP for its JSON API — request line,
//! headers, `Content-Length` bodies, chunked *responses* for streaming —
//! with hard size caps so a hostile peer cannot balloon memory. No TLS, no
//! chunked request bodies, no multipart: every endpoint is plain text or
//! JSON. The parser is a pure function over a byte buffer (feed it the
//! bytes read so far; it answers *complete*, *partial*, or an error), which
//! is what makes it property-testable without sockets.

/// Maximum bytes of request line + headers.
pub const MAX_HEAD: usize = 16 * 1024;
/// Maximum request body bytes.
pub const MAX_BODY: usize = 1024 * 1024;

/// One parsed HTTP request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Request target (path plus optional `?query`), as sent.
    pub target: String,
    /// Headers in arrival order, names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Request body (`Content-Length` bytes; empty without the header).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (case-insensitive lookup).
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }

    /// The target's path component (before any `?`).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The target's query string (after the first `?`), if any.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// One value from a `k=v&k2=v2` query string.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query()?
            .split('&')
            .filter_map(|kv| kv.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }

    /// Render as wire bytes (the client side of the parser; `parse_request`
    /// inverts it — pinned by proptest).
    pub fn render(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(self.method.as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.target.as_bytes());
        out.extend_from_slice(b" HTTP/1.1\r\n");
        for (k, v) in &self.headers {
            out.extend_from_slice(k.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(v.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        if !self.body.is_empty() {
            out.extend_from_slice(format!("content-length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

/// Outcome of feeding the bytes received so far to the parser.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Parse {
    /// A full request, plus how many buffer bytes it consumed.
    Complete(Request, usize),
    /// Valid so far but incomplete — read more bytes and call again.
    Partial,
}

fn is_token_char(b: u8) -> bool {
    // RFC 7230 token characters.
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// Parse one request from the front of `buf`.
///
/// # Errors
///
/// Malformed requests (bad request line, oversized head/body, non-numeric
/// `Content-Length`, control bytes in headers) — the connection should
/// answer 400 and close.
pub fn parse_request(buf: &[u8]) -> Result<Parse, String> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD {
            return Err(format!("header section exceeds {MAX_HEAD} bytes"));
        }
        return Ok(Parse::Partial);
    };
    if head_end > MAX_HEAD {
        return Err(format!("header section exceeds {MAX_HEAD} bytes"));
    }
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| "head is not UTF-8".to_owned())?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(format!("malformed request line {request_line:?}")),
    };
    if !method.bytes().all(is_token_char) {
        return Err(format!("malformed method {method:?}"));
    }
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(format!("unsupported version {version:?}"));
    }
    if target.bytes().any(|b| b.is_ascii_control()) {
        return Err("control bytes in request target".to_owned());
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // the blank line terminating the head
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed header line {line:?}"))?;
        if name.is_empty() || !name.bytes().all(is_token_char) {
            return Err(format!("malformed header name {name:?}"));
        }
        let value = value.trim();
        if value.bytes().any(|b| b.is_ascii_control()) {
            return Err(format!("control bytes in header {name:?}"));
        }
        headers.push((name.to_ascii_lowercase(), value.to_owned()));
    }

    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err("chunked request bodies are not supported".to_owned());
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0usize,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| format!("bad content-length {v:?}"))?,
    };
    if content_length > MAX_BODY {
        return Err(format!("body of {content_length} bytes exceeds {MAX_BODY}"));
    }
    let total = head_end + content_length;
    if buf.len() < total {
        return Ok(Parse::Partial);
    }
    Ok(Parse::Complete(
        Request {
            method: method.to_owned(),
            target: target.to_owned(),
            headers,
            body: buf[head_end..total].to_vec(),
        },
        total,
    ))
}

/// Index just past the `\r\n\r\n` ending the head, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Canonical reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        410 => "Gone",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Render a complete response with `Content-Length` and
/// `Connection: keep-alive` — the body is length-delimited, so the
/// connection can carry the next request (the server's per-connection
/// loop honours it; clients that close anyway cost one extra FIN).
pub fn response(status: u16, headers: &[(&str, &str)], body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 128);
    out.extend_from_slice(format!("HTTP/1.1 {status} {}\r\n", reason(status)).as_bytes());
    for (k, v) in headers {
        out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
    }
    out.extend_from_slice(
        format!(
            "content-length: {}\r\nconnection: keep-alive\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    );
    out.extend_from_slice(body);
    out
}

/// Render the head of a chunked streaming response (chunks follow via
/// [`chunk`] and [`last_chunk`]).
pub fn chunked_head(status: u16, headers: &[(&str, &str)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    out.extend_from_slice(format!("HTTP/1.1 {status} {}\r\n", reason(status)).as_bytes());
    for (k, v) in headers {
        out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
    }
    out.extend_from_slice(b"transfer-encoding: chunked\r\nconnection: close\r\n\r\n");
    out
}

/// Render one non-empty chunk.
pub fn chunk(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + 16);
    out.extend_from_slice(format!("{:x}\r\n", data.len()).as_bytes());
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
    out
}

/// Render the terminating zero-length chunk.
pub fn last_chunk() -> &'static [u8] {
    b"0\r\n\r\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let wire = b"POST /v1/jobs?tenant=a HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let Parse::Complete(req, consumed) = parse_request(wire).expect("parse") else {
            panic!("expected complete");
        };
        assert_eq!(consumed, wire.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/v1/jobs");
        assert_eq!(req.query_param("tenant"), Some("a"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn partial_reads_ask_for_more() {
        let wire = b"GET / HTTP/1.1\r\nHost: x\r\n\r\n";
        for cut in 0..wire.len() {
            match parse_request(&wire[..cut]).expect("no error on any prefix") {
                Parse::Partial => {}
                Parse::Complete(..) => panic!("prefix of {cut} bytes cannot be complete"),
            }
        }
        assert!(matches!(
            parse_request(wire).expect("full"),
            Parse::Complete(..)
        ));
        // Body still outstanding: partial too.
        let wire = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert_eq!(parse_request(wire).expect("ok"), Parse::Partial);
    }

    #[test]
    fn rejects_malformed_requests() {
        for (wire, needle) in [
            (&b"GET\r\n\r\n"[..], "request line"),
            (b"GET / HTTP/2\r\n\r\n", "version"),
            (b"GET / HTTP/1.1\r\nbad header\r\n\r\n", "header line"),
            (b"G T / HTTP/1.1\r\n\r\n", "request line"),
            (
                b"POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n",
                "content-length",
            ),
            (
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                "chunked",
            ),
            (
                b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
                "exceeds",
            ),
        ] {
            let err = parse_request(wire).expect_err(&format!("{wire:?} must fail"));
            assert!(err.contains(needle), "{wire:?}: {err:?} missing {needle:?}");
        }
    }

    #[test]
    fn oversized_head_is_rejected_even_unterminated() {
        let wire = vec![b'A'; MAX_HEAD + 1];
        assert!(parse_request(&wire).is_err());
    }

    #[test]
    fn render_roundtrips() {
        let req = Request {
            method: "POST".into(),
            target: "/v1/jobs".into(),
            headers: vec![("x-tenant".into(), "acme".into())],
            body: b"side = 20".to_vec(),
        };
        let wire = req.render();
        let Parse::Complete(back, consumed) = parse_request(&wire).expect("parse") else {
            panic!("expected complete");
        };
        assert_eq!(consumed, wire.len());
        assert_eq!(back.method, req.method);
        assert_eq!(back.target, req.target);
        assert_eq!(back.header("x-tenant"), Some("acme"));
        assert_eq!(back.body, req.body);
    }

    #[test]
    fn response_and_chunk_rendering() {
        let r = response(429, &[("retry-after", "1")], b"busy");
        let text = String::from_utf8(r).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("content-length: 4\r\n"));
        assert!(text.ends_with("\r\n\r\nbusy"));
        assert_eq!(chunk(b"abc"), b"3\r\nabc\r\n");
        assert_eq!(last_chunk(), b"0\r\n\r\n");
    }
}
